//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's
//! microbenchmarks use — `Criterion::bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock median reporter
//! instead of criterion's statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints (accepted for API compatibility; batching is always
/// per-iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark harness: runs closures and prints median timings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        samples.sort_unstable();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "{id:<40} median {median:>12.3?} ({} samples)",
            samples.len()
        );
        self
    }
}

/// Passed to each benchmark closure; collects timing samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),*);
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(
        name = group;
        config = Criterion::default().sample_size(3);
        targets = quick
    );

    #[test]
    fn harness_runs() {
        group();
    }
}
