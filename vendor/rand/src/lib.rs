//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the (small) API surface the workspace actually
//! uses: a seedable `StdRng`, `Rng::gen_range` / `Rng::gen_bool`, and the
//! `Uniform` distribution. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically strong and fully deterministic, though the
//! stream differs from upstream `rand`'s ChaCha-based `StdRng` (nothing in
//! this workspace depends on the exact upstream stream, only on
//! determinism given a seed).

pub mod distributions;
pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A 53-bit uniform sample in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                loop {
                    let u = unit_f64(rng.next_u64());
                    let v = self.start + (self.end - self.start) * u as $t;
                    // Guard the half-open bound against rounding at the top.
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = unit_f64(rng.next_u64());
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
