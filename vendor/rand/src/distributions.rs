//! Distribution types (the `Uniform` subset the workspace uses).

use crate::{RngCore, SampleRange};

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// A uniform distribution over the half-open range `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// A uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Uniform { lo, hi }
    }
}

macro_rules! uniform_distribution {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Uniform<$t> {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                (self.lo..self.hi).sample_single(rng)
            }
        }
    )*};
}

uniform_distribution!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Uniform::new(-2.0f32, 3.0);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
