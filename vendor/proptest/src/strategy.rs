//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Produces values of `Self::Value` from the deterministic test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                loop {
                    let v = self.start + (self.end - self.start) * rng.unit() as $t;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}
