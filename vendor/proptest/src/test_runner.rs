//! Test configuration and the deterministic case RNG.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator behind case sampling (xoshiro256++ seeded
/// from a hash of the test name, so every run explores the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator keyed to `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
