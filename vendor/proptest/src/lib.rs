//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, numeric range
//! strategies, tuple strategies and `collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways: case generation
//! is *deterministic* (seeded from the test name, so failures reproduce
//! without a regressions file), and there is no shrinking — a failing case
//! reports its inputs via the panic message instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import used by every test module: strategies, config and the
/// assertion macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn my_property(x in 0u64..100, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __inputs = format!(concat!("case {}", $(concat!(", ", stringify!($arg), " = {:?}")),*), __case $(, &$arg)*);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = __outcome {
                    eprintln!("proptest {} failed on {}", stringify!($name), __inputs);
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.0f64..1.0, k in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u32..10, 0i32..5), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 5);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let s = 0u64..1000;
        for _ in 0..64 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
