//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
