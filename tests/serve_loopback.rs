//! End-to-end loopback tests for the job service: a real server on an
//! ephemeral port, real HTTP, a real cache directory.
//!
//! The two properties the PR promises are exercised directly:
//!
//! * identical job specs return byte-identical bodies, the second from
//!   the disk cache (`X-Cache: hit`) — including across a full server
//!   restart on the same cache directory;
//! * a full admission queue answers `429` with a `Retry-After` hint
//!   while the in-flight job still completes.

use std::path::{Path, PathBuf};
use std::time::Duration;

use tbstc_serve::http::request;
use tbstc_serve::{ServeConfig, Server};

const GCN_JOB: &str = r#"{"type":"simulate","arch":"tb-stc",
    "model":{"kind":"gcn","nodes":64,"features":16},"sparsity":0.5}"#;

/// The same job with fields shuffled and defaults spelled out — must hit
/// the same cache entry because the key hashes the canonicalized spec.
const GCN_JOB_SHUFFLED: &str = r#"{"seed":0,"sparsity":0.5,"bandwidth_gbps":64.0,
    "model":{"features":16,"kind":"gcn","nodes":64},
    "arch":"tb-stc","type":"simulate"}"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tbstc-loopback-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: dir.to_path_buf(),
        quiet: true,
        ..ServeConfig::default()
    }
}

#[test]
fn identical_jobs_hit_the_cache_across_restarts() {
    let dir = tmp_dir("restart");

    // First server lifetime: miss, then hit, then a canonicalization hit.
    let running = Server::bind(cfg(&dir)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();

    let first = request(&addr, "POST", "/v1/jobs", Some(GCN_JOB)).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let key = first.header("x-job-key").unwrap().to_string();
    assert_eq!(key.len(), 32);

    let second = request(&addr, "POST", "/v1/jobs", Some(GCN_JOB)).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "cached body is byte-identical");

    let shuffled = request(&addr, "POST", "/v1/jobs", Some(GCN_JOB_SHUFFLED)).unwrap();
    assert_eq!(
        shuffled.header("x-cache"),
        Some("hit"),
        "field order and explicit defaults do not change the cache key"
    );
    assert_eq!(shuffled.body, first.body);

    // The result is also addressable by key.
    let by_key = request(&addr, "GET", &format!("/v1/jobs/{key}"), None).unwrap();
    assert_eq!(by_key.status, 200);
    assert_eq!(by_key.body, first.body);

    running.shutdown_and_join();

    // Second server lifetime, same cache dir: the very first submission
    // is already a byte-identical hit served from disk.
    let running = Server::bind(cfg(&dir)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();
    let after_restart = request(&addr, "POST", "/v1/jobs", Some(GCN_JOB)).unwrap();
    assert_eq!(after_restart.status, 200);
    assert_eq!(after_restart.header("x-cache"), Some("hit"));
    assert_eq!(
        after_restart.body, first.body,
        "restart preserves bit-identical responses"
    );
    running.shutdown_and_join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_rejects_with_429_without_dropping_in_flight_work() {
    let dir = tmp_dir("backpressure");
    let running = Server::bind(ServeConfig {
        queue_capacity: 1,
        job_workers: 1,
        hold_ms: 700, // keep the admitted job in flight deterministically
        ..cfg(&dir)
    })
    .unwrap()
    .spawn()
    .unwrap();
    let addr = running.addr.to_string();

    let slow_addr = addr.clone();
    let slow =
        std::thread::spawn(move || request(&slow_addr, "POST", "/v1/jobs", Some(GCN_JOB)).unwrap());
    // Let the slow job get admitted (it holds its slot for hold_ms).
    std::thread::sleep(Duration::from_millis(200));

    let other_job = r#"{"type":"simulate","arch":"stc",
        "model":{"kind":"gcn","nodes":64,"features":16},"sparsity":0.75}"#;
    let rejected = request(&addr, "POST", "/v1/jobs", Some(other_job)).unwrap();
    assert_eq!(
        rejected.status, 429,
        "queue of 1 is full: {}",
        rejected.body
    );
    let retry_after: u64 = rejected
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!((1..=60).contains(&retry_after));

    let done = slow.join().unwrap();
    assert_eq!(done.status, 200, "in-flight job survives the rejection");
    assert_eq!(done.header("x-cache"), Some("miss"));

    let metrics = request(&addr, "GET", "/metrics", None).unwrap();
    assert!(
        metrics.body.contains("tbstc_jobs_rejected_total 1"),
        "{}",
        metrics.body
    );
    assert!(metrics.body.contains("tbstc_jobs_total{outcome=\"ok\"} 1"));

    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_specs_get_400_and_the_server_keeps_serving() {
    let dir = tmp_dir("badspec");
    let running = Server::bind(cfg(&dir)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();

    // A gallery of malformed submissions: broken JSON, a non-object, a
    // missing discriminant, an unknown type, an out-of-range sparsity and
    // an unknown architecture. Every one must be a clean 400 — never a
    // dropped connection or a crashed worker.
    let bad_specs = [
        r#"{"type":"simulate","#,
        r#"[1,2,3]"#,
        r#"{"arch":"tb-stc","model":{"kind":"gcn","nodes":64,"features":16}}"#,
        r#"{"type":"frobnicate"}"#,
        r#"{"type":"simulate","arch":"tb-stc",
            "model":{"kind":"gcn","nodes":64,"features":16},"sparsity":7.5}"#,
        r#"{"type":"simulate","arch":"not-an-arch",
            "model":{"kind":"gcn","nodes":64,"features":16},"sparsity":0.5}"#,
    ];
    for spec in bad_specs {
        let resp = request(&addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(resp.status, 400, "spec {spec:?} got: {}", resp.body);
        assert!(
            resp.body.contains("error"),
            "400 body names the problem: {}",
            resp.body
        );
    }

    // The server is still healthy: the very next valid job computes.
    let ok = request(&addr, "POST", "/v1/jobs", Some(GCN_JOB)).unwrap();
    assert_eq!(ok.status, 200, "server survives malformed specs");
    assert_eq!(ok.header("x-cache"), Some("miss"));

    let metrics = request(&addr, "GET", "/metrics", None).unwrap();
    assert!(
        metrics.body.contains(&format!(
            "tbstc_jobs_total{{outcome=\"bad_request\"}} {}",
            bad_specs.len()
        )),
        "every malformed spec is counted: {}",
        metrics.body
    );
    assert!(metrics.body.contains("tbstc_jobs_total{outcome=\"ok\"} 1"));

    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inline_arch_specs_compute_cache_and_reject_cleanly() {
    let dir = tmp_dir("inline-spec");
    let running = Server::bind(cfg(&dir)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();

    // The bundled TB-STC document, exactly as `GET /v1/archs` serves it.
    let doc = tbstc::archspec::bundled_text("tb-stc").unwrap().trim_end();
    let inline_job = format!(
        r#"{{"type":"simulate","arch_spec":{doc},
            "model":{{"kind":"gcn","nodes":64,"features":16}},"sparsity":0.5}}"#
    );

    let first = request(&addr, "POST", "/v1/jobs", Some(&inline_job)).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let inline_key = first.header("x-job-key").unwrap().to_string();

    // Resubmission is a pure cache hit: the spec document is
    // content-addressed into the job key like any other field.
    let second = request(&addr, "POST", "/v1/jobs", Some(&inline_job)).unwrap();
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(second.body, first.body);

    // The same job through the builtin path keys differently (the body
    // echoes a different job spec) but computes the bit-identical
    // `result` — interpreter parity, observed end-to-end over HTTP.
    let builtin = request(&addr, "POST", "/v1/jobs", Some(GCN_JOB)).unwrap();
    assert_eq!(builtin.status, 200);
    assert_eq!(builtin.header("x-cache"), Some("miss"));
    assert_ne!(builtin.header("x-job-key"), Some(inline_key.as_str()));
    let result_of = |body: &str| {
        tbstc::json::Json::parse(body.trim())
            .unwrap()
            .get("result")
            .cloned()
            .expect("200 body carries a result")
    };
    assert_eq!(
        result_of(&builtin.body),
        result_of(&first.body),
        "spec-interpreted == native"
    );

    // Malformed inline specs are clean 400s that name the field path.
    let mut with_unknown = tbstc::json::Json::parse(doc).unwrap();
    if let tbstc::json::Json::Obj(m) = &mut with_unknown {
        m.insert("wave_size".into(), tbstc::json::Json::Int(32));
    }
    let mut zero_efficiency = tbstc::json::Json::parse(doc).unwrap();
    if let tbstc::json::Json::Obj(m) = &mut zero_efficiency {
        if let Some(tbstc::json::Json::Obj(df)) = m.get_mut("dataflow") {
            df.insert("efficiency".into(), tbstc::json::Json::Num(0.0));
        }
    }
    let wrap = |spec_doc: String| {
        format!(
            r#"{{"type":"simulate","arch_spec":{spec_doc},
                "model":{{"kind":"gcn","nodes":64,"features":16}},"sparsity":0.5}}"#
        )
    };
    let cases = [
        (wrap(with_unknown.to_string()), "arch_spec.wave_size"),
        (
            wrap(zero_efficiency.to_string()),
            "arch_spec.dataflow.efficiency",
        ),
        (
            format!(
                r#"{{"type":"simulate","arch":"tb-stc","arch_spec":{doc},
                    "model":{{"kind":"gcn","nodes":64,"features":16}},"sparsity":0.5}}"#
            ),
            "not both",
        ),
    ];
    for (bad, needle) in &cases {
        let resp = request(&addr, "POST", "/v1/jobs", Some(bad)).unwrap();
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(
            resp.body.contains(needle),
            "400 names `{needle}`: {}",
            resp.body
        );
    }

    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_jobs_cache_and_memo_persists_across_restart() {
    let dir = tmp_dir("sweep");
    let sweep_job = r#"{"type":"sweep","archs":["tb-stc","stc"],
        "models":[{"kind":"gcn","nodes":64,"features":16}],
        "sparsities":[0.5,0.75]}"#;

    let running = Server::bind(cfg(&dir)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();
    let first = request(&addr, "POST", "/v1/jobs", Some(sweep_job)).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    running.shutdown_and_join();

    // The shutdown flush wrote the memo file.
    let memo = std::fs::read_to_string(dir.join("memo.jsonl")).unwrap();
    assert!(memo.starts_with(r#"{"format":"tbstc-memo","version":1}"#));
    assert_eq!(
        memo.lines().count(),
        1 + 4,
        "header + 2 archs x 2 sparsities"
    );

    // A restarted server preloads the memo: a *different* job spec whose
    // grid overlaps (so the disk cache cannot answer it) recomputes
    // nothing — every grid point is a memo hit.
    let running = Server::bind(cfg(&dir)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();
    let overlapping = r#"{"type":"sweep","archs":["tb-stc"],
        "models":[{"kind":"gcn","nodes":64,"features":16}],
        "sparsities":[0.5,0.75]}"#;
    let resp = request(&addr, "POST", "/v1/jobs", Some(overlapping)).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("x-cache"),
        Some("miss"),
        "different spec, new disk entry"
    );
    let metrics = request(&addr, "GET", "/metrics", None).unwrap();
    assert!(
        metrics
            .body
            .contains("tbstc_cache_hits_total{tier=\"memo\"} 2"),
        "both grid points served from the preloaded memo: {}",
        metrics.body
    );
    running.shutdown_and_join();

    let _ = std::fs::remove_dir_all(&dir);
}
