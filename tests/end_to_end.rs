//! Integration tests spanning crates: prune → store → convert → compute
//! must be numerically exact end to end, and the simulator must respect
//! cross-crate conservation laws.

use tbstc::formats::{CodecUnit, Csr, Ddc, Sdc};
use tbstc::matrix::rng::MatrixRng;
use tbstc::matrix::{gemm, Matrix};
use tbstc::prelude::*;
use tbstc::sim::compute::{simulate_compute, SchedulePolicy};
use tbstc::sim::memory::{simulate_memory, FormatOverride};
use tbstc::sparsity::SparsityDim;

fn pruned_pair(seed: u64, target: f64) -> (Matrix, TbsPattern) {
    let w = MatrixRng::seed_from(seed).block_structured_weights(64, 64, 8);
    let p = TbsPattern::sparsify(&w, target, &TbsConfig::paper_default());
    (p.mask().apply(&w), p)
}

#[test]
fn spmm_through_every_format_matches_golden() {
    // D = A_pruned × B computed after a round trip through each storage
    // format must equal the direct product bit for bit.
    let (pruned, pattern) = pruned_pair(1, 0.6);
    let b = MatrixRng::seed_from(2).uniform(64, 32, -1.0, 1.0);
    let golden = gemm::matmul(&pruned, &b);

    for decoded in [
        Ddc::encode(&pruned, &pattern).decode(),
        Sdc::encode(&pruned).decode(),
        Csr::encode(&pruned).decode(),
    ] {
        let d = gemm::matmul(&decoded, &b);
        assert_eq!(d, golden);
    }
}

#[test]
fn codec_conversion_preserves_spmm_exactly() {
    // Rebuild the matrix from the codec's computation-format output and
    // multiply: still exact.
    let (pruned, pattern) = pruned_pair(3, 0.75);
    let ddc = Ddc::encode(&pruned, &pattern);
    let codec = CodecUnit::paper_default();

    let mut rebuilt = Matrix::zeros(pruned.rows(), pruned.cols());
    for block in ddc.blocks() {
        let (converted, _) = codec.convert_block(block);
        let (r0, c0) = (block.block_row * 8, block.block_col * 8);
        for e in &converted {
            let (dr, dc) = e.position(block.dim);
            if r0 + dr < rebuilt.rows() && c0 + dc < rebuilt.cols() {
                rebuilt[(r0 + dr, c0 + dc)] = e.value;
            }
        }
    }
    assert_eq!(rebuilt, pruned);

    let b = MatrixRng::seed_from(4).uniform(64, 16, -1.0, 1.0);
    assert_eq!(gemm::matmul(&rebuilt, &b), gemm::matmul(&pruned, &b));
}

#[test]
fn independent_blocks_really_need_conversion() {
    // The premise of §V: a TBS matrix at realistic sparsity contains
    // independent-dimension blocks, and the codec touches exactly those.
    let (_, pattern) = pruned_pair(5, 0.6);
    let indep = pattern
        .blocks()
        .iter()
        .filter(|b| b.dim == SparsityDim::Independent)
        .count();
    assert!(indep > 0, "block-structured weights produce column blocks");
}

#[test]
fn simulator_mac_conservation() {
    // Useful MACs reported by the simulator equal nnz(weights) × columns,
    // for every architecture, on an unscaled layer.
    let cfg = HwConfig::paper_default();
    let shape = tbstc::models::LayerShape {
        name: "conserve".into(),
        m: 128,
        k: 128,
        n: 64,
        repeats: 1,
        prunable: true,
    };
    for arch in Arch::MAIN_BASELINES {
        let layer = LayerSim::new(&shape)
            .arch(arch)
            .sparsity(0.75)
            .seed(6)
            .build(&cfg);
        let comp = simulate_compute(arch, &layer, &cfg, SchedulePolicy::native(arch));
        let expect = layer.sampled().count_nonzeros() as u64 * 64;
        assert_eq!(comp.useful_macs, expect, "{arch}");
    }
}

#[test]
fn memory_traffic_conservation() {
    // Weight traffic must be at least nnz × 2 bytes (values can't
    // compress below fp16 here) and at most dense bytes + metadata.
    let cfg = HwConfig::paper_default();
    let shape = tbstc::models::LayerShape {
        name: "traffic".into(),
        m: 128,
        k: 128,
        n: 64,
        repeats: 1,
        prunable: true,
    };
    for arch in Arch::MAIN_BASELINES {
        let layer = LayerSim::new(&shape)
            .arch(arch)
            .sparsity(0.75)
            .seed(7)
            .build(&cfg);
        let mem = simulate_memory(arch, &layer, &cfg, FormatOverride::Native);
        let nnz_bytes = layer.sampled().count_nonzeros() as f64 * 2.0;
        let dense_bytes = (128 * 128) as f64 * 2.0;
        assert!(
            mem.a_bytes >= nnz_bytes * 0.99,
            "{arch}: {} < {}",
            mem.a_bytes,
            nnz_bytes
        );
        assert!(
            mem.a_bytes <= dense_bytes * 1.5,
            "{arch}: {} vs dense {}",
            mem.a_bytes,
            dense_bytes
        );
    }
}

#[test]
fn full_model_pipeline_runs_everywhere() {
    let cfg = HwConfig::paper_default();
    let model = tbstc::models::resnet18(32);
    for arch in Arch::MAIN_BASELINES {
        let res = simulate_model(arch, &model, 0.75, 8, &cfg);
        assert!(res.total_cycles > 0, "{arch}");
        assert!(res.total_energy_pj > 0.0, "{arch}");
        assert_eq!(res.layers.len(), model.layers.len());
    }
}

#[test]
fn sparse_training_then_hardware_speedup() {
    // The full story in one test: train with TBS, check accuracy holds,
    // then verify the trained sparsity level translates into hardware
    // speedup over dense execution.
    let data = Dataset::gaussian_mixture(32, 4, 256, 128, 0.35, 9);
    let mut cfg_t = TrainConfig::new(&data, PatternKind::Tbs, 0.75, 2);
    cfg_t.epochs = 12;
    let rec = SparseTrainer::new(cfg_t).train(&data);
    assert!(
        rec.test_accuracy > 0.5,
        "trained accuracy {}",
        rec.test_accuracy
    );

    let hw = HwConfig::paper_default();
    let shape = &tbstc::models::bert_base(64).layers[0];
    let sparse = LayerSim::new(shape)
        .arch(Arch::TbStc)
        .sparsity(0.75)
        .seed(2)
        .build(&hw);
    let dense = LayerSim::new(shape)
        .arch(Arch::Tc)
        .sparsity(0.0)
        .seed(2)
        .build(&hw);
    let tb = simulate_layer(Arch::TbStc, &sparse, &hw);
    let tc = simulate_layer(Arch::Tc, &dense, &hw);
    assert!(
        tb.speedup_over(&tc) > 1.5,
        "speedup {}",
        tb.speedup_over(&tc)
    );
}

#[test]
fn quantization_composes_with_tbs() {
    // Fig. 15(b): quantizing a TBS-pruned matrix keeps the mask and the
    // reconstruction error small.
    use tbstc::matrix::quant::QuantizedMatrix;
    let (pruned, _) = pruned_pair(10, 0.75);
    let q = QuantizedMatrix::quantize(&pruned);
    let back = q.dequantize();
    assert!(back.count_zeros() >= pruned.count_zeros());
    assert!(pruned.max_abs_diff(&back).unwrap() < 0.05);
    // Traffic halves.
    assert_eq!(q.code_bytes() * 2, pruned.len() * 2);
}

#[test]
fn transposable_property_accelerates_backward_pass() {
    // The paper's titular insight: training multiplies by W forward and
    // Wᵀ backward. A TBS pattern transposes into a valid TBS pattern, so
    // the same DDC + codec + DVPE pipeline accelerates both passes and
    // both GEMMs stay numerically exact through the storage round trip.
    let w = MatrixRng::seed_from(30).block_structured_weights(48, 64, 8);
    let p = TbsPattern::sparsify(&w, 0.6, &TbsConfig::paper_default());
    let pruned = p.mask().apply(&w);

    // Forward: D = W_pruned × B.
    let b = MatrixRng::seed_from(31).uniform(64, 16, -1.0, 1.0);
    let fwd_golden = gemm::matmul(&pruned, &b);
    let fwd = gemm::matmul(&Ddc::encode(&pruned, &p).decode(), &b);
    assert_eq!(fwd, fwd_golden);

    // Backward: dX = Wᵀ_pruned × dD, with Wᵀ stored under the transposed
    // TBS pattern.
    let tp = p.transpose();
    tp.assert_valid();
    let pruned_t = pruned.transpose();
    assert_eq!(*tp.mask(), Mask::nonzeros(&pruned_t));
    let dd = MatrixRng::seed_from(32).uniform(48, 16, -1.0, 1.0);
    let bwd_golden = gemm::matmul(&pruned_t, &dd);
    let bwd = gemm::matmul(&Ddc::encode(&pruned_t, &tp).decode(), &dd);
    assert_eq!(bwd, bwd_golden);

    // The codec converts the transposed pattern's independent blocks too.
    let ddc_t = Ddc::encode(&pruned_t, &tp);
    let codec = CodecUnit::paper_default();
    for block in ddc_t.blocks() {
        let (out, _) = codec.convert_block(block);
        assert_eq!(out.len(), block.elements.len());
    }
}

#[test]
fn full_datapath_codec_mbd_dvpe_matches_golden() {
    // The complete §V/§VI hardware path, functionally: DDC storage →
    // adaptive codec conversion → MBD operand selection → DVPE execution
    // (reduction nodes + alternate unit) must reproduce the golden
    // block-times-column products for every block, including the
    // independent-dimension ones that needed format conversion.
    use tbstc::sim::dvpe::{pack_issues, Dvpe, LaneOp};
    use tbstc::sim::mbd::{MbdUnit, TileOrder};

    let w = MatrixRng::seed_from(60).block_structured_weights(32, 32, 8);
    let pattern = TbsPattern::sparsify(&w, 0.6, &TbsConfig::paper_default());
    let pruned = pattern.mask().apply(&w);
    let b = MatrixRng::seed_from(61).uniform(32, 8, -1.0, 1.0);
    let golden = gemm::matmul(&pruned, &b);

    let ddc = Ddc::encode(&pruned, &pattern);
    let codec = CodecUnit::paper_default();
    let mbd = MbdUnit::paper_default();
    let dvpe = Dvpe::exact(8);

    let mut result = Matrix::zeros(32, 8);
    for block in ddc.blocks() {
        let (r0, c0) = (block.block_row * 8, block.block_col * 8);
        // Codec: storage -> computation format (row-grouped elements).
        let (converted, _) = codec.convert_block(block);
        // B tile for this block's reduction range.
        let b_tile = b.block(c0, 0, 8, 8);
        for col in 0..8 {
            // MBD selects the B operands for each element's k-index.
            let ops: Vec<LaneOp> = converted
                .iter()
                .map(|e| {
                    let (row, k) = e.position(block.dim);
                    let (sel, _) = mbd.select(&b_tile, TileOrder::RowMajor, &[k], col);
                    LaneOp {
                        a: e.value,
                        b: sel[0],
                        row,
                    }
                })
                .collect();
            // DVPE executes the intra-block balanced issue stream.
            let (partials, _) = dvpe.execute(&pack_issues(ops, 8));
            for (row, sum) in partials {
                if r0 + row < 32 {
                    result[(r0 + row, col)] += sum;
                }
            }
        }
    }
    assert!(
        golden.max_abs_diff(&result).unwrap() < 1e-4,
        "full datapath diverges: {}",
        golden.max_abs_diff(&result).unwrap()
    );
}
