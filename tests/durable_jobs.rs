//! End-to-end tests for durable jobs: real servers on ephemeral ports,
//! a real shared cache directory, chunked checkpointed sweeps.
//!
//! The properties under test are the PR's promises:
//!
//! * a long job answers `202 Accepted` and exposes live progress at its
//!   `Location` until the result is ready;
//! * a server interrupted mid-sweep resumes after restart and produces a
//!   byte-identical result while recomputing strictly fewer points;
//! * two servers sharing one store execute each spec exactly once
//!   fleet-wide (the job flock arbitrates);
//! * cancellation stops a running job at a chunk boundary and a re-submit
//!   finishes it from the memo;
//! * corrupt memo lines are skipped, counted, and exported in /metrics.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tbstc_serve::http::request;
use tbstc_serve::{ServeConfig, Server};

/// 2 archs x 1 model x 3 sparsities = 6 grid points: over every
/// `long_job_points` threshold used below, small enough to finish fast.
const LONG_SWEEP: &str = r#"{"type":"sweep","archs":["tb-stc","stc"],
    "models":[{"kind":"gcn","nodes":64,"features":16}],
    "sparsities":[0.5,0.625,0.75]}"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tbstc-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable-friendly config: 1-point chunks with a hold between them so
/// tests can deterministically observe (and interrupt) mid-sweep state.
fn durable_cfg(dir: &Path, chunk_hold_ms: u64) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: dir.to_path_buf(),
        quiet: true,
        chunk_size: 1,
        long_job_points: 2,
        chunk_hold_ms,
        ..ServeConfig::default()
    }
}

/// Polls `GET /v1/jobs/{key}` until `pred(status, body)` holds, failing
/// after `timeout`. Returns the final `(status, body)`.
fn poll_until(
    addr: &str,
    key: &str,
    timeout: Duration,
    pred: impl Fn(u16, &str) -> bool,
) -> (u16, String) {
    let deadline = Instant::now() + timeout;
    loop {
        let resp = request(addr, "GET", &format!("/v1/jobs/{key}"), None).unwrap();
        if pred(resp.status, &resp.body) {
            return (resp.status, resp.body);
        }
        assert!(
            Instant::now() < deadline,
            "timed out polling job {key}; last: {} {}",
            resp.status,
            resp.body
        );
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{metrics}"))
}

#[test]
fn long_jobs_answer_202_with_live_progress_then_the_result() {
    let dir = tmp_dir("progress");
    let running = Server::bind(durable_cfg(&dir, 40))
        .unwrap()
        .spawn()
        .unwrap();
    let addr = running.addr.to_string();

    let accepted = request(&addr, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let key = accepted.header("x-job-key").unwrap().to_string();
    assert_eq!(
        accepted.header("location"),
        Some(format!("/v1/jobs/{key}").as_str())
    );
    assert!(
        accepted.body.contains(r#""state":"queued""#),
        "{}",
        accepted.body
    );

    // Progress is observable while the sweep runs: a 202 status document
    // in the running state, with done strictly between 0 and total.
    let (_, progress) = poll_until(&addr, &key, Duration::from_secs(10), |code, body| {
        code == 202 && body.contains(r#""state":"running""#) && !body.contains(r#""done":0"#)
    });
    assert!(progress.contains(r#""total":6"#), "{progress}");

    // And the job list shows it too.
    let list = request(&addr, "GET", "/v1/jobs", None).unwrap();
    assert_eq!(list.status, 200);
    assert!(list.body.contains(&key), "{}", list.body);

    // Completion: the same URL now serves the cached result body.
    let (_, result) = poll_until(&addr, &key, Duration::from_secs(10), |code, body| {
        code == 200 && body.contains("\"results\"")
    });

    // A re-submit of the finished spec is an ordinary synchronous cache
    // hit — durable jobs land in the same content-addressed store.
    let again = request(&addr, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-cache"), Some("hit"));
    assert_eq!(again.body, result, "result is byte-stable");

    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_byte_identically_with_fewer_recomputes() {
    // Control run: the same spec executed start-to-finish, no chunking
    // tricks, in its own store.
    let control_dir = tmp_dir("resume-control");
    let control = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: control_dir.clone(),
        quiet: true,
        ..ServeConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let control_body = {
        let resp = request(
            &control.addr.to_string(),
            "POST",
            "/v1/jobs",
            Some(LONG_SWEEP),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        resp.body
    };
    control.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&control_dir);

    // Interrupted run: kill the server mid-sweep, after at least one
    // chunk has checkpointed but before the sweep finishes.
    let dir = tmp_dir("resume");
    let running = Server::bind(durable_cfg(&dir, 60))
        .unwrap()
        .spawn()
        .unwrap();
    let addr = running.addr.to_string();
    let accepted = request(&addr, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let key = accepted.header("x-job-key").unwrap().to_string();
    poll_until(&addr, &key, Duration::from_secs(10), |code, body| {
        code == 202 && body.contains(r#""state":"running""#) && !body.contains(r#""done":0"#)
    });
    running.shutdown_and_join();

    // The interruption left a non-terminal status document and at least
    // one checkpointed chunk in the memo.
    let status_doc = std::fs::read_to_string(dir.join("jobs").join(format!("{key}.json"))).unwrap();
    assert!(status_doc.contains(r#""state":"running""#), "{status_doc}");
    let memo = std::fs::read_to_string(dir.join("memo.jsonl")).unwrap();
    let checkpointed = memo.lines().count() - 1; // minus header
    assert!(
        (1..6).contains(&checkpointed),
        "expected a partial checkpoint, got {checkpointed} memo lines"
    );

    // Restart on the same store: the boot scan re-queues the job and the
    // controller finishes it without being asked.
    let running = Server::bind(durable_cfg(&dir, 0)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();
    let (_, resumed_body) = poll_until(&addr, &key, Duration::from_secs(10), |code, body| {
        code == 200 && body.contains("\"results\"")
    });
    assert_eq!(
        resumed_body, control_body,
        "resumed result must be byte-identical to the uninterrupted run"
    );

    let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
    assert_eq!(metric_value(&metrics, "tbstc_jobs_resumed_total"), 1);
    // Strictly fewer than the full grid recomputed: every checkpointed
    // point replays from the preloaded memo (a memo miss = a recompute).
    let recomputed = metric_value(&metrics, "tbstc_cache_misses_total{tier=\"memo\"}");
    assert!(
        recomputed < 6,
        "resume recomputed all {recomputed} points — checkpoints were not reused"
    );
    assert_eq!(recomputed as usize, 6 - checkpointed);

    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_servers_sharing_a_store_execute_each_spec_exactly_once() {
    let dir = tmp_dir("fleet");
    let a = Server::bind(durable_cfg(&dir, 10))
        .unwrap()
        .spawn()
        .unwrap();
    let b = Server::bind(durable_cfg(&dir, 10))
        .unwrap()
        .spawn()
        .unwrap();
    let (addr_a, addr_b) = (a.addr.to_string(), b.addr.to_string());

    // Submit the same long spec to both servers concurrently. Both must
    // accept (202, idempotent), but the job flock lets only one execute.
    let (ra, rb) = {
        let (addr_a, addr_b) = (addr_a.clone(), addr_b.clone());
        let ta = std::thread::spawn(move || {
            request(&addr_a, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap()
        });
        let tb = std::thread::spawn(move || {
            request(&addr_b, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap()
        });
        (ta.join().unwrap(), tb.join().unwrap())
    };
    assert_eq!(
        (ra.status, rb.status),
        (202, 202),
        "{} / {}",
        ra.body,
        rb.body
    );
    let key = ra.header("x-job-key").unwrap().to_string();
    assert_eq!(rb.header("x-job-key"), Some(key.as_str()));

    // Both servers converge on the same completed result.
    let (_, body_a) = poll_until(&addr_a, &key, Duration::from_secs(10), |code, body| {
        code == 200 && body.contains("\"results\"")
    });
    let (_, body_b) = poll_until(&addr_b, &key, Duration::from_secs(10), |code, body| {
        code == 200 && body.contains("\"results\"")
    });
    assert_eq!(body_a, body_b, "torn or divergent result across the fleet");

    // Exactly-once: the sweep ran on one server, not both.
    let ma = request(&addr_a, "GET", "/metrics", None).unwrap().body;
    let mb = request(&addr_b, "GET", "/metrics", None).unwrap().body;
    let executed = metric_value(&ma, "tbstc_jobs_executed_total")
        + metric_value(&mb, "tbstc_jobs_executed_total");
    assert_eq!(executed, 1, "spec executed {executed} times fleet-wide");

    // The same holds on the synchronous path: a short job raced to both
    // servers computes once; the loser serves the winner's bytes.
    let short = r#"{"type":"simulate","arch":"tb-stc",
        "model":{"kind":"gcn","nodes":64,"features":16},"sparsity":0.5}"#;
    let (sa, sb) = {
        let (addr_a, addr_b) = (addr_a.clone(), addr_b.clone());
        let ta =
            std::thread::spawn(move || request(&addr_a, "POST", "/v1/jobs", Some(short)).unwrap());
        let tb =
            std::thread::spawn(move || request(&addr_b, "POST", "/v1/jobs", Some(short)).unwrap());
        (ta.join().unwrap(), tb.join().unwrap())
    };
    assert_eq!((sa.status, sb.status), (200, 200));
    assert_eq!(sa.body, sb.body, "duplicate write tore the short result");
    let ma = request(&addr_a, "GET", "/metrics", None).unwrap().body;
    let mb = request(&addr_b, "GET", "/metrics", None).unwrap().body;
    let executed = metric_value(&ma, "tbstc_jobs_executed_total")
        + metric_value(&mb, "tbstc_jobs_executed_total");
    assert_eq!(executed, 2, "short spec must add exactly one execution");

    a.shutdown_and_join();
    b.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_stops_between_chunks_and_a_resubmit_finishes_from_the_memo() {
    let dir = tmp_dir("cancel");
    let running = Server::bind(durable_cfg(&dir, 60))
        .unwrap()
        .spawn()
        .unwrap();
    let addr = running.addr.to_string();

    let accepted = request(&addr, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap();
    assert_eq!(accepted.status, 202);
    let key = accepted.header("x-job-key").unwrap().to_string();
    poll_until(&addr, &key, Duration::from_secs(10), |code, body| {
        code == 202 && body.contains(r#""state":"running""#) && !body.contains(r#""done":0"#)
    });

    // Cancel while running: acknowledged 202, honored at the next chunk
    // boundary, after which the status is terminal.
    let cancel = request(&addr, "DELETE", &format!("/v1/jobs/{key}"), None).unwrap();
    assert_eq!(cancel.status, 202, "{}", cancel.body);
    poll_until(&addr, &key, Duration::from_secs(10), |code, body| {
        code == 200 && body.contains(r#""state":"cancelled""#)
    });
    let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
    assert_eq!(metric_value(&metrics, "tbstc_jobs_cancelled_total"), 1);

    // Cancelling a terminal job conflicts.
    let again = request(&addr, "DELETE", &format!("/v1/jobs/{key}"), None).unwrap();
    assert_eq!(again.status, 409, "{}", again.body);

    // Re-submitting the cancelled spec restarts it (202, queued again);
    // the finished prefix replays from the memo and the job completes.
    let resumed = request(&addr, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap();
    assert_eq!(resumed.status, 202, "{}", resumed.body);
    poll_until(&addr, &key, Duration::from_secs(10), |code, body| {
        code == 200 && body.contains("\"results\"")
    });

    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_memo_lines_are_skipped_and_exported_in_metrics() {
    let dir = tmp_dir("corrupt");
    let running = Server::bind(durable_cfg(&dir, 0)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();
    let accepted = request(&addr, "POST", "/v1/jobs", Some(LONG_SWEEP)).unwrap();
    assert_eq!(accepted.status, 202);
    let key = accepted.header("x-job-key").unwrap().to_string();
    poll_until(&addr, &key, Duration::from_secs(10), |code, _| code == 200);
    running.shutdown_and_join();

    // Garble one memo line in the middle of the file.
    let memo_path = dir.join("memo.jsonl");
    let memo = std::fs::read_to_string(&memo_path).unwrap();
    let mut lines: Vec<&str> = memo.lines().collect();
    assert!(lines.len() >= 3, "want header + several entries: {memo}");
    lines[2] = "{not json at all";
    std::fs::write(&memo_path, format!("{}\n", lines.join("\n"))).unwrap();

    // The restarted server skips the bad line, keeps the rest, and
    // exports the count.
    let running = Server::bind(durable_cfg(&dir, 0)).unwrap().spawn().unwrap();
    let addr = running.addr.to_string();
    let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
    assert_eq!(metric_value(&metrics, "tbstc_memo_corrupt_lines_total"), 1);

    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
