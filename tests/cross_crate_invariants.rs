//! Property-based invariants that span crate boundaries.

use proptest::prelude::*;
use tbstc::formats::{Csr, Ddc, Sdc};
use tbstc::matrix::rng::MatrixRng;
use tbstc::prelude::*;
use tbstc::sim::compute::{simulate_compute, SchedulePolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every storage format round-trips every TBS-pruned matrix.
    #[test]
    fn formats_round_trip(seed in 0u64..500, target_pct in 0u32..=100) {
        let target = f64::from(target_pct) / 100.0;
        let w = MatrixRng::seed_from(seed).block_structured_weights(32, 40, 8);
        let p = TbsPattern::sparsify(&w, target, &TbsConfig::paper_default());
        let pruned = p.mask().apply(&w);
        prop_assert_eq!(Ddc::encode(&pruned, &p).decode(), pruned.clone());
        prop_assert_eq!(Sdc::encode(&pruned).decode(), pruned.clone());
        prop_assert_eq!(Csr::encode(&pruned).decode(), pruned);
    }

    /// DDC never stores more bytes than SDC on the same matrix.
    #[test]
    fn ddc_at_most_sdc(seed in 0u64..200) {
        let w = MatrixRng::seed_from(seed).block_structured_weights(64, 64, 8);
        let p = TbsPattern::sparsify(&w, 0.7, &TbsConfig::paper_default());
        let pruned = p.mask().apply(&w);
        let ddc = Ddc::encode(&pruned, &p).stored_bytes();
        let sdc = Sdc::encode(&pruned).stored_bytes();
        prop_assert!(ddc <= sdc + 128, "DDC {ddc} vs SDC {sdc}");
    }

    /// Deeper sparsity never increases TB-STC cycles (same seed).
    #[test]
    fn tbstc_cycles_monotone_in_sparsity(seed in 0u64..100) {
        let cfg = HwConfig::paper_default();
        let shape = tbstc::models::LayerShape {
            name: "mono".into(), m: 96, k: 96, n: 32, repeats: 1, prunable: true,
        };
        let mut prev = u64::MAX;
        for target in [0.25, 0.5, 0.75, 0.9] {
            let layer = LayerSim::new(&shape).arch(Arch::TbStc).sparsity(target).seed(seed).build(&cfg);
            let res = simulate_layer(Arch::TbStc, &layer, &cfg);
            let slack = prev.saturating_add(prev / 10);
            prop_assert!(res.cycles <= slack, "sparsity {target}: {} > {}", res.cycles, prev);
            prev = res.cycles;
        }
    }

    /// The dense architecture is never faster than TB-STC at >0 sparsity.
    #[test]
    fn sparsity_never_hurts_vs_dense(seed in 0u64..100, target_pct in 30u32..90) {
        let cfg = HwConfig::paper_default();
        let target = f64::from(target_pct) / 100.0;
        let shape = tbstc::models::LayerShape {
            name: "vsdense".into(), m: 96, k: 96, n: 32, repeats: 1, prunable: true,
        };
        let sparse = LayerSim::new(&shape).arch(Arch::TbStc).sparsity(target).seed(seed).build(&cfg);
        let dense = LayerSim::new(&shape).arch(Arch::Tc).sparsity(0.0).seed(seed).build(&cfg);
        let tb = simulate_layer(Arch::TbStc, &sparse, &cfg);
        let tc = simulate_layer(Arch::Tc, &dense, &cfg);
        prop_assert!(tb.cycles <= tc.cycles, "TB {} vs TC {}", tb.cycles, tc.cycles);
    }

    /// Utilization is a true ratio for every architecture and never
    /// exceeds 1; issued MACs dominate useful MACs.
    #[test]
    fn utilization_is_a_ratio(seed in 0u64..50, arch_i in 0usize..6) {
        let arch = Arch::MAIN_BASELINES[arch_i];
        let cfg = HwConfig::paper_default();
        let shape = tbstc::models::LayerShape {
            name: "ratio".into(), m: 64, k: 64, n: 16, repeats: 1, prunable: true,
        };
        let layer = LayerSim::new(&shape).arch(arch).sparsity(0.6).seed(seed).build(&cfg);
        let comp = simulate_compute(arch, &layer, &cfg, SchedulePolicy::native(arch));
        prop_assert!(comp.utilization > 0.0 && comp.utilization <= 1.0 + 1e-9);
        prop_assert!(comp.issued_macs >= comp.useful_macs);
    }

    /// TBS masks retain essentially at least as much |weight| mass as the
    /// TS projection at the same target (the accuracy mechanism). TBS
    /// optimizes closeness to the unstructured mask, not mass directly,
    /// so individual seeds may trail by a sliver — never by much.
    #[test]
    fn tbs_retains_at_least_tile_mass(seed in 0u64..200) {
        use tbstc::sparsity::pattern::paper_pattern;
        let w = MatrixRng::seed_from(seed).block_structured_weights(48, 48, 8);
        let mass = |mask: &Mask| -> f64 {
            mask.iter_kept().map(|(r, c)| f64::from(w[(r, c)].abs())).sum()
        };
        let tbs = TbsPattern::sparsify(&w, 0.5, &TbsConfig::paper_default());
        let ts = paper_pattern(PatternKind::TileNm).project(&w, 0.5);
        prop_assert!(mass(tbs.mask()) >= mass(&ts) * 0.97);
    }

    /// fp16 SpMM through the DDC round trip stays within half-precision
    /// error of the f32 golden model.
    #[test]
    fn f16_datapath_error_bounded(seed in 0u64..50) {
        use tbstc::matrix::gemm;
        let mut rng = MatrixRng::seed_from(seed);
        let w = rng.block_structured_weights(16, 16, 8);
        let p = TbsPattern::sparsify(&w, 0.5, &TbsConfig::paper_default());
        let pruned = p.mask().apply(&w);
        let b = rng.uniform(16, 8, -1.0, 1.0);
        let exact = gemm::matmul(&pruned, &b);
        let half = gemm::try_matmul_f16(&pruned, &b).unwrap();
        prop_assert!(exact.max_abs_diff(&half).unwrap() < 0.05);
    }
}

#[test]
fn mask_space_ordering_predicts_similarity_ordering() {
    // Fig. 4(b) vs Fig. 4(c): the pattern with the larger mask space is
    // also the one whose projected mask is closer to the unstructured
    // mask, on average.
    use tbstc::sparsity::mask_space::mask_space_row;
    use tbstc::sparsity::similarity::similarity_sweep;

    let ms = mask_space_row(128, 128, 8);
    let w = MatrixRng::seed_from(77).block_structured_weights(128, 128, 8);
    let sim = similarity_sweep(&w, 0.75);
    let get = |k: PatternKind| sim.iter().find(|r| r.kind == k).unwrap().similarity;

    assert!(ms.tbs > ms.rs_v && get(PatternKind::Tbs) > get(PatternKind::RowWiseVegeta));
    assert!(ms.rs_v >= ms.ts && get(PatternKind::RowWiseVegeta) >= get(PatternKind::TileNm) - 0.02);
}
