//! Headline-claim tests: each test pins one quantitative claim of the
//! paper to this reproduction's measured behaviour (shape, not absolute
//! numbers — see EXPERIMENTS.md for the full comparison).

use tbstc::energy::table3::{a100_integration_overhead, tb_stc_breakdown};
use tbstc::experiments::geomean;
use tbstc::matrix::rng::MatrixRng;
use tbstc::prelude::*;
use tbstc::sim::compute::{simulate_compute, SchedulePolicy};
use tbstc::sim::memory::{simulate_memory, FormatOverride};
use tbstc::sim::pipeline::{simulate_layer_with, SimOptions};

fn bert_layer() -> tbstc::models::LayerShape {
    tbstc::models::bert_base(128).layers[0].clone()
}

fn cfg() -> HwConfig {
    HwConfig::paper_default()
}

/// §V: "we achieve an average improvement of 1.47× in memory bandwidth
/// utilization compared to other methods."
#[test]
fn claim_bandwidth_utilization_gain() {
    let mut gains = Vec::new();
    for (seed, target) in [(1, 0.5), (2, 0.625), (3, 0.75), (4, 0.875)] {
        let layer = LayerSim::new(&bert_layer())
            .arch(Arch::TbStc)
            .sparsity(target)
            .seed(seed)
            .build(&cfg());
        let ddc = simulate_memory(Arch::TbStc, &layer, &cfg(), FormatOverride::Native);
        let sdc = simulate_memory(Arch::TbStc, &layer, &cfg(), FormatOverride::Sdc);
        let csr = simulate_memory(Arch::TbStc, &layer, &cfg(), FormatOverride::Csr);
        let best_other = sdc.a_bandwidth_utilization.max(csr.a_bandwidth_utilization);
        gains.push(ddc.a_bandwidth_utilization / best_other);
    }
    let g = geomean(&gains).expect("ratios are positive");
    assert!(
        (1.2..2.5).contains(&g),
        "bandwidth utilization gain {g} (paper: 1.47x)"
    );
}

/// §VI: "we achieve an average of 1.57× computation utilization
/// improvement" over non-scheduled execution.
#[test]
fn claim_compute_utilization_gain() {
    let mut gains = Vec::new();
    for (seed, target) in [(5, 0.5), (6, 0.625), (7, 0.75), (8, 0.875)] {
        let layer = LayerSim::new(&bert_layer())
            .arch(Arch::TbStc)
            .sparsity(target)
            .seed(seed)
            .build(&cfg());
        let smart = simulate_compute(
            Arch::TbStc,
            &layer,
            &cfg(),
            SchedulePolicy::native(Arch::TbStc),
        );
        let naive = simulate_compute(Arch::TbStc, &layer, &cfg(), SchedulePolicy::naive());
        gains.push(smart.utilization / naive.utilization);
    }
    let g = geomean(&gains).expect("ratios are positive");
    assert!(
        (1.3..5.0).contains(&g),
        "compute utilization gain {g} (paper: 1.57x)"
    );
}

/// §VII-C1: layer-wise speedups vs STC / VEGETA / HighLight / RM-STC of
/// 1.55× / 1.29× / 1.21× / 1.06× (we check ordering and bands).
#[test]
fn claim_layerwise_speedup_ordering() {
    let mut speedups: Vec<(Arch, Vec<f64>)> =
        [Arch::Stc, Arch::Vegeta, Arch::Highlight, Arch::RmStc]
            .iter()
            .map(|&a| (a, Vec::new()))
            .collect();
    for (seed, target) in [(9, 0.5), (10, 0.75), (11, 0.875)] {
        let tb_layer = LayerSim::new(&bert_layer())
            .arch(Arch::TbStc)
            .sparsity(target)
            .seed(seed)
            .build(&cfg());
        let tb = simulate_layer(Arch::TbStc, &tb_layer, &cfg());
        for (arch, v) in &mut speedups {
            let l = LayerSim::new(&bert_layer())
                .arch(*arch)
                .sparsity(target)
                .seed(seed)
                .build(&cfg());
            let r = simulate_layer(*arch, &l, &cfg());
            v.push(r.cycles as f64 / tb.cycles as f64);
        }
    }
    let means: Vec<(Arch, f64)> = speedups
        .into_iter()
        .map(|(a, v)| (a, geomean(&v).expect("ratios are positive")))
        .collect();
    let get = |a: Arch| means.iter().find(|(x, _)| *x == a).unwrap().1;
    let (stc, veg, hl, rm) = (
        get(Arch::Stc),
        get(Arch::Vegeta),
        get(Arch::Highlight),
        get(Arch::RmStc),
    );
    // Paper ordering: STC > VEGETA > HighLight > RM-STC > 1. HighLight
    // and RM-STC are close (1.21 vs 1.06 in the paper); on this reduced
    // layer set allow a near-tie between them.
    assert!(stc > veg && veg > hl, "stc {stc} veg {veg} hl {hl}");
    assert!(hl > rm * 0.95, "hl {hl} vs rm {rm}");
    assert!((1.0..1.4).contains(&rm), "RM-STC gap {rm} (paper 1.06)");
    assert!((1.3..3.0).contains(&stc), "STC gap {stc} (paper 1.55)");
}

/// §VII-C1: "Compared with the unstructured sparsity work (RM-STC),
/// TB-STC gains 1.75× EDP improvement, although their speedup is very
/// similar (only 1.06×)."
#[test]
fn claim_edp_gain_over_rm_stc_without_speed() {
    let mut speedups = Vec::new();
    let mut edps = Vec::new();
    for (seed, target) in [(12, 0.625), (13, 0.75), (14, 0.875)] {
        let tb_l = LayerSim::new(&bert_layer())
            .arch(Arch::TbStc)
            .sparsity(target)
            .seed(seed)
            .build(&cfg());
        let rm_l = LayerSim::new(&bert_layer())
            .arch(Arch::RmStc)
            .sparsity(target)
            .seed(seed)
            .build(&cfg());
        let tb = simulate_layer(Arch::TbStc, &tb_l, &cfg());
        let rm = simulate_layer(Arch::RmStc, &rm_l, &cfg());
        speedups.push(tb.speedup_over(&rm));
        edps.push(tb.edp_gain_over(&rm));
    }
    let s = geomean(&speedups).expect("ratios are positive");
    let e = geomean(&edps).expect("ratios are positive");
    assert!(
        (0.95..1.3).contains(&s),
        "speedup vs RM-STC {s} (paper 1.06)"
    );
    assert!(e > 1.3, "EDP gain vs RM-STC {e} (paper 1.75)");
    assert!(e > s * 1.2, "the EDP gain is an energy story");
}

/// Table III: total 1.47 mm² / 200.59 mW, DVPE-dominated; §VII-C4: the
/// A100-integration overhead is ~12.96 mm² = 1.57 % of the die.
#[test]
fn claim_table3_and_integration_overhead() {
    let t = tb_stc_breakdown();
    assert!((t.total_area_mm2() - 1.47).abs() < 0.03);
    assert!((t.total_power_mw() - 200.59).abs() < 4.0);
    let (added, frac) = a100_integration_overhead();
    assert!((added - 12.96).abs() < 0.7, "{added}");
    assert!((frac - 0.0157).abs() < 0.001, "{frac}");
}

/// Fig. 14: format conversion is a small share of execution and is hidden
/// in the pipeline (paper: 3.57 % average).
#[test]
fn claim_codec_overhead_small_and_hidden() {
    let mut shares = Vec::new();
    for (seed, target) in [(15, 0.5), (16, 0.75)] {
        let layer = LayerSim::new(&bert_layer())
            .arch(Arch::TbStc)
            .sparsity(target)
            .seed(seed)
            .build(&cfg());
        let res = simulate_layer(Arch::TbStc, &layer, &cfg());
        shares.push(res.breakdown.codec_share());
        assert!(
            res.breakdown.codec_exposed < res.cycles / 20,
            "exposed {} of {}",
            res.breakdown.codec_exposed,
            res.cycles
        );
    }
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    assert!(mean < 0.12, "mean codec share {mean} (paper 3.57%)");
}

/// Fig. 16(a): even with the TBS pattern, architectures without the
/// adaptive codec (SDC/CSR pipelines) are ≥1.44× slower.
#[test]
fn claim_codec_ablation() {
    let layer = LayerSim::new(&bert_layer())
        .arch(Arch::TbStc)
        .sparsity(0.75)
        .seed(17)
        .build(&cfg());
    let native = simulate_layer(Arch::TbStc, &layer, &cfg());
    for fmt in [FormatOverride::Sdc, FormatOverride::Csr] {
        let alt = simulate_layer_with(Arch::TbStc, &layer, &cfg(), &SimOptions::with_format(fmt));
        assert!(
            alt.cycles >= native.cycles,
            "{fmt:?}: {} vs {}",
            alt.cycles,
            native.cycles
        );
    }
}

/// Fig. 15(c): below ~256 GB/s TB-STC is memory-limited at high sparsity;
/// beyond that it stops scaling (compute-limited).
#[test]
fn claim_bandwidth_sensitivity() {
    let shape = bert_layer();
    let run = |gbps: f64| -> u64 {
        let hw = HwConfig::with_bandwidth_gbps(gbps);
        let layer = LayerSim::new(&shape)
            .arch(Arch::TbStc)
            .sparsity(0.875)
            .seed(18)
            .build(&hw);
        simulate_layer(Arch::TbStc, &layer, &hw).cycles
    };
    let c64 = run(64.0);
    let c256 = run(256.0);
    let c512 = run(512.0);
    assert!(
        c64 > c256,
        "more bandwidth helps below the knee: {c64} vs {c256}"
    );
    let tail_gain = c256 as f64 / c512 as f64;
    assert!(
        tail_gain < 1.15,
        "beyond the knee scaling flattens: {tail_gain}"
    );
}

/// Table II shape: at 50 % one-shot sparsity, TBS narrows the US-vs-TS
/// accuracy gap substantially (paper: 2.58–3.24 pts down to 0.66).
#[test]
fn claim_one_shot_accuracy_gap_narrows() {
    use tbstc::train::oneshot::{one_shot_table, Teacher};
    let data = Dataset::gaussian_mixture(48, 6, 512, 512, 0.4, 21);
    let teacher = Teacher::train(&data, 18, 4);
    let rows = one_shot_table(&data, &teacher, 0.5);
    let get = |k: PatternKind| rows.iter().find(|r| r.pattern == k).unwrap();
    let us = get(PatternKind::Unstructured);
    let ts = get(PatternKind::TileNm);
    let tbs = get(PatternKind::Tbs);
    // Average over both criteria.
    let avg = |r: &tbstc::train::oneshot::OneShotRow| (r.wanda + r.sparsegpt) / 2.0;
    let gap_ts = avg(us) - avg(ts);
    let gap_tbs = avg(us) - avg(tbs);
    assert!(
        gap_tbs <= gap_ts + 0.01,
        "TBS gap {gap_tbs} should not exceed TS gap {gap_ts}"
    );
}

/// Fig. 15(a) hardware half: speedup gains flatten as block size grows.
#[test]
fn claim_block_size_speedup_flattens() {
    let w = MatrixRng::seed_from(22).block_structured_weights(128, 128, 8);
    // Larger blocks => fewer, coarser blocks => less per-block metadata
    // but the mask itself changes little; measure retained mass proxy.
    let mut masses = Vec::new();
    for m in [4usize, 8, 16, 32] {
        let p = TbsPattern::sparsify(&w, 0.75, &TbsConfig::with_block_size(m));
        let mass: f64 = p
            .mask()
            .iter_kept()
            .map(|(r, c)| f64::from(w[(r, c)].abs()))
            .sum();
        masses.push(mass);
    }
    // Mask quality (retained mass) degrades monotonically-ish with block
    // size — the accuracy half of Fig. 15(a).
    assert!(
        masses[0] >= masses[3] * 0.98,
        "block 4 mass {} vs block 32 mass {}",
        masses[0],
        masses[3]
    );
}
