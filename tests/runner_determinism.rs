//! The parallel experiment engine's contract: parallel execution is
//! bit-identical to serial, repeated jobs are served from the cache, and
//! wide grids actually speed up on multi-core machines.

use std::time::Instant;

use tbstc::prelude::*;

/// A small but non-trivial grid: every main-comparison architecture at
/// several sparsity points on a model that is cheap enough to simulate
/// many times.
fn grid(seeds: impl IntoIterator<Item = u64>) -> Vec<SimJob> {
    Sweep::new()
        .archs(Arch::MAIN_BASELINES)
        .models([ModelSpec::Gcn {
            nodes: 256,
            features: 32,
        }])
        .sparsities([0.5, 0.75])
        .seeds(seeds)
        .jobs()
}

#[test]
fn parallel_results_are_bit_identical_to_serial_for_every_arch() {
    let jobs = grid([11]);
    assert_eq!(jobs.len(), Arch::MAIN_BASELINES.len() * 2);

    let serial = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
    let parallel =
        SweepRunner::with_runner(HwConfig::paper_default(), Runner::new().with_workers(4));
    let s = serial.run_models(&jobs);
    let p = parallel.run_models(&jobs);

    assert_eq!(s.results.len(), p.results.len());
    for ((job, sr), pr) in jobs.iter().zip(&s.results).zip(&p.results) {
        assert_eq!(sr, pr, "parallel result diverged from serial for {job}");
    }
}

#[test]
fn layer_jobs_are_deterministic_across_worker_counts() {
    let shape = tbstc::models::gcn_layer(256, 32).layers[0].clone();
    let jobs: Vec<LayerSim> = Arch::MAIN_BASELINES
        .iter()
        .map(|&arch| LayerSim::new(&shape).arch(arch).sparsity(0.75).seed(5))
        .collect();

    let serial = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
    let parallel =
        SweepRunner::with_runner(HwConfig::paper_default(), Runner::new().with_workers(4));
    assert_eq!(
        serial.run_layers(&jobs).results,
        parallel.run_layers(&jobs).results,
        "layer-level results must not depend on the worker count"
    );
}

#[test]
fn dense_baseline_is_computed_once_and_served_from_cache() {
    let engine = SweepRunner::new(HwConfig::paper_default());
    let model = ModelSpec::Gcn {
        nodes: 256,
        features: 32,
    };
    let dense = SimJob {
        arch: Arch::Tc,
        model,
        sparsity: 0.0,
        seed: 0,
    };

    // Every sweep row pairs with the same dense anchor, as the bench
    // harnesses do: the anchor must only ever be simulated once.
    let jobs: Vec<SimJob> = [0.5, 0.625, 0.75, 0.875]
        .iter()
        .flat_map(|&s| {
            [
                dense,
                SimJob {
                    arch: Arch::TbStc,
                    model,
                    sparsity: s,
                    seed: 0,
                },
            ]
        })
        .collect();
    let report = engine.run_models(&jobs);

    assert_eq!(report.stats.jobs, 8);
    assert_eq!(
        report.stats.unique_jobs, 5,
        "one dense anchor + four sparse points"
    );
    assert_eq!(report.stats.cache_hits, 3);

    // A repeated batch is served entirely from the cache.
    let again = engine.run_models(&jobs);
    assert_eq!(again.stats.unique_jobs, 0);
    assert_eq!(again.stats.cache_hits, 8);
    assert_eq!(again.results, report.results);
    let (hits, misses) = engine.cache_stats();
    assert!(hits >= 11, "expected >= 11 cache hits, saw {hits}");
    assert_eq!(misses, 5);
}

/// The ISSUE acceptance bar: a >= 32-job sweep on >= 4 cores runs at
/// least 2x faster than serial with identical results. The speedup half
/// only asserts on machines that actually have the cores.
#[test]
fn wide_sweep_speeds_up_on_multicore_and_stays_identical() {
    let jobs = grid([1, 2, 3]);
    assert!(jobs.len() >= 32, "grid has {} jobs", jobs.len());

    let t0 = Instant::now();
    let serial = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
    let s = serial.run_models(&jobs);
    let serial_wall = t0.elapsed();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t1 = Instant::now();
    let parallel =
        SweepRunner::with_runner(HwConfig::paper_default(), Runner::new().with_workers(cores));
    let p = parallel.run_models(&jobs);
    let parallel_wall = t1.elapsed();

    assert_eq!(
        s.results, p.results,
        "speedup must not change any result bit"
    );

    if cores >= 4 {
        let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64();
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup on {cores} cores, measured {speedup:.2}x \
             (serial {serial_wall:?}, parallel {parallel_wall:?})"
        );
    }
}
