//! End-to-end accelerator comparison: run full ResNet-50, BERT-base and
//! OPT-6.7B through the cycle-level simulator on every baseline
//! architecture at a common sparsity, and print speedup / EDP tables
//! (the Fig. 12/13 machinery, at one operating point).
//!
//! Run with: `cargo run --release --example accelerator_comparison`

use tbstc::models::{bert_base, opt_6_7b, resnet50};
use tbstc::prelude::*;

fn main() {
    let cfg = HwConfig::paper_default();
    let sparsity = 0.75;
    let models = [resnet50(64), bert_base(128), opt_6_7b(128)];

    for model in &models {
        println!(
            "== {} at {:.0}% weight sparsity ==",
            model.kind,
            sparsity * 100.0
        );
        let dense = simulate_model(Arch::Tc, model, 0.0, 5, &cfg);
        println!(
            "  {:<10} {:>14} cycles {:>10} mJ   (dense baseline)",
            "TC",
            dense.total_cycles,
            format!("{:.2}", dense.total_energy_pj * 1e-9)
        );
        let mut results = Vec::new();
        for arch in [
            Arch::Stc,
            Arch::Vegeta,
            Arch::Highlight,
            Arch::RmStc,
            Arch::TbStc,
        ] {
            let res = simulate_model(arch, model, sparsity, 5, &cfg);
            println!(
                "  {:<10} {:>14} cycles {:>10} mJ   speedup {:>5.2}x  EDP gain {:>5.2}x",
                arch.to_string(),
                res.total_cycles,
                format!("{:.2}", res.total_energy_pj * 1e-9),
                res.speedup_over(&dense),
                res.edp_gain_over(&dense),
            );
            results.push(res);
        }
        let tb = results.last().unwrap().clone();
        println!("  TB-STC vs best structured baseline:");
        for res in &results[..results.len() - 1] {
            println!(
                "    vs {:<9} speedup {:>5.2}x  EDP {:>5.2}x",
                res.arch.to_string(),
                tb.speedup_over(res),
                tb.edp_gain_over(res)
            );
        }
        println!();
    }

    // Cycle breakdown of a BERT layer on TB-STC (Fig. 14 flavour).
    let model = bert_base(128);
    let res = simulate_model(Arch::TbStc, &model, sparsity, 5, &cfg);
    println!("TB-STC cycle breakdown on BERT-base layers:");
    for layer in res.layers.iter().take(6) {
        let b = &layer.breakdown;
        println!(
            "  {:<10} compute {:>8}  memory {:>8}  codec {:>6} ({:.1}% of total, {} exposed)",
            layer.name,
            b.compute,
            b.memory,
            b.codec_hidden + b.codec_exposed,
            b.codec_share() * 100.0,
            b.codec_exposed
        );
    }
    println!(
        "  mean codec share: {:.2}% (paper: 3.57%, hidden in the pipeline)",
        res.mean_codec_share() * 100.0
    );
}
