//! Sparse training end to end: train the same network dense, with
//! unstructured sparsity, and with TBS (paper §III-B / Fig. 18), then
//! compare losses and held-out accuracy.
//!
//! Run with: `cargo run --release --example sparse_training`

use tbstc::prelude::*;
use tbstc::sparsity::PatternKind;

fn main() {
    // A capacity-bound teacher-student task: the labels come from a frozen
    // network with realistically structured weights, so pruning genuinely
    // costs accuracy (a plain Gaussian-mixture task saturates at 100%).
    let data = Dataset::teacher_student(128, 12, 96, 2048, 1024, 2024);
    println!(
        "Task: {}-class teacher-student, {} features, {} train / {} test samples\n",
        data.classes,
        data.features(),
        data.train_len(),
        data.test_len()
    );

    let sparsity = 0.75;
    println!(
        "Training the same MLP under three regimes (target sparsity {:.0}%):",
        sparsity * 100.0
    );
    let mut rows = Vec::new();
    for (kind, s) in [
        (PatternKind::Dense, 0.0),
        (PatternKind::Unstructured, sparsity),
        (PatternKind::Tbs, sparsity),
    ] {
        let mut cfg = TrainConfig::new(&data, kind, s, 1);
        cfg.net.hidden = vec![96];
        cfg.epochs = 25;
        let rec = SparseTrainer::new(cfg).train(&data);
        println!(
            "  {:<6} final loss {:.4}  final sparsity {:>5.1}%  test accuracy {:.2}%",
            kind.to_string(),
            rec.losses.last().unwrap(),
            rec.sparsities.last().unwrap() * 100.0,
            rec.test_accuracy * 100.0
        );
        rows.push((kind, rec));
    }

    println!("\nLoss curves (every 5th epoch):");
    print!("  epoch ");
    for e in (0..rows[0].1.losses.len()).step_by(5) {
        print!("{e:>8}");
    }
    println!();
    for (kind, rec) in &rows {
        print!("  {:<6}", kind.to_string());
        for e in (0..rec.losses.len()).step_by(5) {
            print!("{:>8.4}", rec.losses[e]);
        }
        println!();
    }

    let dense_acc = rows[0].1.test_accuracy;
    let tbs_acc = rows[2].1.test_accuracy;
    println!(
        "\nTBS reaches within {:.2} points of dense accuracy at {:.0}% sparsity \
         (paper Fig. 18: 'almost the same loss').",
        (dense_acc - tbs_acc) * 100.0,
        sparsity * 100.0
    );
}
