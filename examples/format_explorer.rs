//! Storage-format explorer: sweep sparsity degrees and compare SDC, CSR
//! and DDC on stored bytes, consumption contiguity and the DRAM
//! bandwidth utilization each achieves (paper §V / Fig. 7).
//!
//! Run with: `cargo run --release --example format_explorer`

use tbstc::dram::{DramConfig, DramModel};
use tbstc::formats::AccessTrace;
use tbstc::prelude::*;

/// Effective bandwidth utilization: *information* bytes (values + indices
/// of the actual non-zeros) over the channel-cycles the format's access
/// pattern costs — SDC padding and CSR burst waste both count against it.
fn replay(trace: &AccessTrace, info_bytes: f64) -> f64 {
    let cfg = DramConfig::paper_default();
    let mut dram = DramModel::new(cfg);
    let res = dram.replay(trace.requests().iter().map(|r| (r.addr, r.bytes)));
    if res.cycles == 0 {
        return 1.0;
    }
    (info_bytes / (res.cycles as f64 * cfg.bytes_per_cycle)).min(1.0)
}

fn main() {
    println!("Format comparison on 128x128 TBS-pruned weights (paper Fig. 7 / §V)\n");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "sparsity",
        "DDC bytes",
        "SDC bytes",
        "CSR bytes",
        "DDC BW util",
        "SDC BW util",
        "CSR BW util"
    );

    for &sparsity in &[0.3, 0.5, 0.625, 0.75, 0.875, 0.9375] {
        let w = MatrixRng::seed_from(99).block_structured_weights(128, 128, 8);
        let pattern = TbsPattern::sparsify(&w, sparsity, &TbsConfig::paper_default());
        let pruned = pattern.mask().apply(&w);

        let ddc = Ddc::encode(&pruned, &pattern);
        let sdc = Sdc::encode(&pruned);
        let csr = Csr::encode(&pruned);
        assert_eq!(ddc.decode(), pruned);
        assert_eq!(sdc.decode(), pruned);
        assert_eq!(csr.decode(), pruned);

        let info = pruned.count_nonzeros() as f64 * 3.0; // fp16 value + index
        let ddc_util = replay(&ddc.access_trace(), info);
        let sdc_util = replay(&sdc.access_trace(), info);
        let csr_util = replay(&csr.block_access_trace(8, 8), info);

        println!(
            "{:<10.3} {:>10} {:>10} {:>10} {:>11.1}% {:>11.1}% {:>11.1}%",
            sparsity,
            ddc.stored_bytes(),
            sdc.stored_bytes(),
            csr.stored_bytes(),
            ddc_util * 100.0,
            sdc_util * 100.0,
            csr_util * 100.0
        );
    }

    println!("\nCodec conversion on the independent-dimension blocks:");
    let w = MatrixRng::seed_from(99).block_structured_weights(128, 128, 8);
    let pattern = TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default());
    let pruned = pattern.mask().apply(&w);
    let ddc = Ddc::encode(&pruned, &pattern);
    let codec = CodecUnit::paper_default();
    let mut cycles = 0u64;
    let mut elems = 0usize;
    let mut converted_blocks = 0usize;
    for block in ddc.blocks() {
        let (out, stats) = codec.convert_block(block);
        if stats.total_cycles() > 0 {
            converted_blocks += 1;
            cycles += stats.total_cycles();
            elems += out.len();
        }
    }
    println!(
        "  {} blocks converted, {} elements in {} cycles ({:.2} elements/cycle)",
        converted_blocks,
        elems,
        cycles,
        elems as f64 / cycles.max(1) as f64
    );
}
