//! Quickstart: prune a weight matrix with TBS, store it in DDC, and
//! simulate one layer on TB-STC versus the dense Tensor Core and NVIDIA
//! STC.
//!
//! Run with: `cargo run --release --example quickstart`

use tbstc::prelude::*;
use tbstc::sparsity::stats::classify_blocks;

fn main() {
    // --- 1. Prune a weight matrix with Algorithm 1. -----------------------
    let mut rng = MatrixRng::seed_from(42);
    let weights = rng.block_structured_weights(128, 128, 8);
    let target = 0.75;
    let pattern = TbsPattern::sparsify(&weights, target, &TbsConfig::paper_default());
    pattern.assert_valid();
    let pruned = pattern.mask().apply(&weights);
    println!("TBS pruning at {:.0}% target sparsity", target * 100.0);
    println!(
        "  achieved sparsity : {:.2}%",
        pattern.mask().sparsity() * 100.0
    );
    let dist = classify_blocks(&pattern);
    let (row, col, other) = dist.fractions();
    println!(
        "  block directions  : {:.1}% row / {:.1}% column / {:.1}% other",
        row * 100.0,
        col * 100.0,
        other * 100.0
    );

    // --- 2. Store it in the dual-dimensional compression format. ----------
    let ddc = Ddc::encode(&pruned, &pattern);
    let sdc = Sdc::encode(&pruned);
    let csr = Csr::encode(&pruned);
    println!("\nStorage formats for the pruned matrix:");
    println!("  dense would be    : {} bytes", pruned.len() * 2);
    println!("  DDC (paper)       : {} bytes", ddc.stored_bytes());
    println!(
        "  SDC               : {} bytes ({:.0}% padding)",
        sdc.stored_bytes(),
        sdc.redundancy() * 100.0
    );
    println!(
        "  CSR               : {} bytes (scattered consumption)",
        csr.stored_bytes()
    );
    assert_eq!(ddc.decode(), pruned, "DDC round-trips exactly");

    // --- 3. Simulate a BERT-base layer on three architectures. ------------
    let cfg = HwConfig::paper_default();
    let shape = &bert_base(128).layers[0];
    println!(
        "\nSimulating {} ({}x{} weights, {} tokens):",
        shape.name, shape.m, shape.k, shape.n
    );
    let dense = LayerSim::new(shape)
        .arch(Arch::Tc)
        .sparsity(0.0)
        .seed(7)
        .build(&cfg);
    let tc = simulate_layer(Arch::Tc, &dense, &cfg);
    for arch in [Arch::Stc, Arch::TbStc] {
        let layer = LayerSim::new(shape)
            .arch(arch)
            .sparsity(target)
            .seed(7)
            .build(&cfg);
        let res = simulate_layer(arch, &layer, &cfg);
        println!(
            "  {:<7} {:>9} cycles  speedup {:.2}x  EDP gain {:.2}x  util {:>5.1}%",
            arch.to_string(),
            res.cycles,
            res.speedup_over(&tc),
            res.edp_gain_over(&tc),
            res.compute_utilization * 100.0
        );
    }
    println!("  {:<7} {:>9} cycles  (dense baseline)", "TC", tc.cycles);
}
