//! Workload model zoo: the per-layer GEMM shapes of every model the paper
//! evaluates (§VII-A3).
//!
//! The simulator consumes GEMM shapes, not framework graphs. Convolutions
//! are lowered the standard im2col way: a conv with `C_out` filters over
//! `C_in × k × k` patches on an `H × W` output becomes a GEMM with
//! `M = C_out`, `K = C_in·k²`, `N = H·W`. Attention/FFN projections are
//! GEMMs directly, with `N` = token count.
//!
//! # Examples
//!
//! ```
//! use tbstc_models::{resnet50, ModelKind};
//!
//! let model = resnet50(224);
//! assert_eq!(model.kind, ModelKind::ResNet50);
//! assert!(model.total_macs() > 3_000_000_000); // ~4 GMACs at 224×224
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod shapes;

pub use shapes::{
    bert_base, gcn_layer, llama2_7b, opt_6_7b, resnet18, resnet50, LayerShape, Model, ModelKind,
};
