//! Layer-shape tables for the evaluated models.

/// Which model a workload describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// ResNet-50 (CNN, ImageNet-class).
    ResNet50,
    /// ResNet-18 (CNN).
    ResNet18,
    /// BERT-base encoder.
    BertBase,
    /// OPT-6.7B decoder.
    Opt6_7b,
    /// Llama2-7B decoder.
    Llama2_7b,
    /// A single GCN aggregation layer (Fig. 15(d) baseline workload).
    Gcn,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::BertBase => "BERT-base",
            ModelKind::Opt6_7b => "OPT-6.7B",
            ModelKind::Llama2_7b => "Llama2-7B",
            ModelKind::Gcn => "GCN",
        };
        f.write_str(name)
    }
}

/// One GEMM-shaped layer: weights are `M × K`, activations `K × N`.
///
/// `M` is the independent dimension of the weight operand, `K` the
/// reduction dimension (paper Fig. 3 terminology), `N` the batch/spatial
/// token count. `repeats` collapses identical layers (e.g. the 12 BERT
/// encoder layers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Layer name, e.g. `"conv2_x 3x3"` or `"ffn.fc1"`.
    pub name: String,
    /// Output-channel / row dimension of the weight.
    pub m: usize,
    /// Reduction dimension of the weight.
    pub k: usize,
    /// Activation columns (tokens or output pixels).
    pub n: usize,
    /// How many identical layers the model contains.
    pub repeats: usize,
    /// Whether this layer is pruned (the paper keeps the CNN stem and the
    /// final classifier dense).
    pub prunable: bool,
}

impl LayerShape {
    fn new(name: &str, m: usize, k: usize, n: usize, repeats: usize, prunable: bool) -> Self {
        LayerShape {
            name: name.to_string(),
            m,
            k,
            n,
            repeats,
            prunable,
        }
    }

    /// MACs of one instance of this layer.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Weight-element count of one instance.
    pub fn weight_elems(&self) -> u64 {
        self.m as u64 * self.k as u64
    }
}

/// A whole model: ordered layers with repeat counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Which model this is.
    pub kind: ModelKind,
    /// The layers in execution order.
    pub layers: Vec<LayerShape>,
}

impl Model {
    /// Total MACs over all layers and repeats.
    pub fn total_macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.macs() * l.repeats as u64)
            .sum()
    }

    /// Total weight elements over all layers and repeats.
    pub fn total_weights(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.weight_elems() * l.repeats as u64)
            .sum()
    }

    /// Layers eligible for pruning.
    pub fn prunable_layers(&self) -> impl Iterator<Item = &LayerShape> {
        self.layers.iter().filter(|l| l.prunable)
    }
}

/// ResNet-50 lowered to GEMMs at `input` × `input` resolution (224 for
/// ImageNet, 32 for CIFAR).
///
/// Distinct bottleneck shapes are listed once with their repeat counts;
/// spatial sizes follow the standard stage striding.
pub fn resnet50(input: usize) -> Model {
    let s = input / 4; // resolution after stem (conv7x7/2 + pool/2)
    let sq = |x: usize| x * x;
    let layers = vec![
        LayerShape::new("stem conv7x7", 64, 3 * 49, sq(input / 2), 1, false),
        // conv2_x: 3 bottlenecks at s×s.
        LayerShape::new("conv2 1x1a", 64, 64, sq(s), 1, true),
        LayerShape::new("conv2 1x1a'", 64, 256, sq(s), 2, true),
        LayerShape::new("conv2 3x3", 64, 64 * 9, sq(s), 3, true),
        LayerShape::new("conv2 1x1b", 256, 64, sq(s), 3, true),
        LayerShape::new("conv2 proj", 256, 64, sq(s), 1, true),
        // conv3_x: 4 bottlenecks at s/2.
        LayerShape::new("conv3 1x1a", 128, 256, sq(s / 2), 1, true),
        LayerShape::new("conv3 1x1a'", 128, 512, sq(s / 2), 3, true),
        LayerShape::new("conv3 3x3", 128, 128 * 9, sq(s / 2), 4, true),
        LayerShape::new("conv3 1x1b", 512, 128, sq(s / 2), 4, true),
        LayerShape::new("conv3 proj", 512, 256, sq(s / 2), 1, true),
        // conv4_x: 6 bottlenecks at s/4.
        LayerShape::new("conv4 1x1a", 256, 512, sq(s / 4), 1, true),
        LayerShape::new("conv4 1x1a'", 256, 1024, sq(s / 4), 5, true),
        LayerShape::new("conv4 3x3", 256, 256 * 9, sq(s / 4), 6, true),
        LayerShape::new("conv4 1x1b", 1024, 256, sq(s / 4), 6, true),
        LayerShape::new("conv4 proj", 1024, 512, sq(s / 4), 1, true),
        // conv5_x: 3 bottlenecks at s/8.
        LayerShape::new("conv5 1x1a", 512, 1024, sq(s / 8), 1, true),
        LayerShape::new("conv5 1x1a'", 512, 2048, sq(s / 8), 2, true),
        LayerShape::new("conv5 3x3", 512, 512 * 9, sq(s / 8), 3, true),
        LayerShape::new("conv5 1x1b", 2048, 512, sq(s / 8), 3, true),
        LayerShape::new("conv5 proj", 2048, 1024, sq(s / 8), 1, true),
        LayerShape::new("fc", 1000, 2048, 1, 1, false),
    ];
    Model {
        kind: ModelKind::ResNet50,
        layers,
    }
}

/// ResNet-18 lowered to GEMMs at `input` × `input` resolution.
pub fn resnet18(input: usize) -> Model {
    let s = input / 4;
    let sq = |x: usize| x * x;
    let layers = vec![
        LayerShape::new("stem conv7x7", 64, 3 * 49, sq(input / 2), 1, false),
        LayerShape::new("conv2 3x3", 64, 64 * 9, sq(s), 4, true),
        LayerShape::new("conv3 3x3a", 128, 64 * 9, sq(s / 2), 1, true),
        LayerShape::new("conv3 3x3", 128, 128 * 9, sq(s / 2), 3, true),
        LayerShape::new("conv3 proj", 128, 64, sq(s / 2), 1, true),
        LayerShape::new("conv4 3x3a", 256, 128 * 9, sq(s / 4), 1, true),
        LayerShape::new("conv4 3x3", 256, 256 * 9, sq(s / 4), 3, true),
        LayerShape::new("conv4 proj", 256, 128, sq(s / 4), 1, true),
        LayerShape::new("conv5 3x3a", 512, 256 * 9, sq(s / 8), 1, true),
        LayerShape::new("conv5 3x3", 512, 512 * 9, sq(s / 8), 3, true),
        LayerShape::new("conv5 proj", 512, 256, sq(s / 8), 1, true),
        LayerShape::new("fc", 1000, 512, 1, 1, false),
    ];
    Model {
        kind: ModelKind::ResNet18,
        layers,
    }
}

/// BERT-base: 12 encoder layers, hidden 768, FFN 3072, at `seq` tokens.
pub fn bert_base(seq: usize) -> Model {
    let h = 768;
    let layers = vec![
        LayerShape::new("attn.q", h, h, seq, 12, true),
        LayerShape::new("attn.k", h, h, seq, 12, true),
        LayerShape::new("attn.v", h, h, seq, 12, true),
        LayerShape::new("attn.out", h, h, seq, 12, true),
        LayerShape::new("ffn.fc1", 4 * h, h, seq, 12, true),
        LayerShape::new("ffn.fc2", h, 4 * h, seq, 12, true),
    ];
    Model {
        kind: ModelKind::BertBase,
        layers,
    }
}

/// OPT-6.7B: 32 decoder layers, hidden 4096, FFN 16384, at `seq` tokens.
pub fn opt_6_7b(seq: usize) -> Model {
    let h = 4096;
    let layers = vec![
        LayerShape::new("attn.q", h, h, seq, 32, true),
        LayerShape::new("attn.k", h, h, seq, 32, true),
        LayerShape::new("attn.v", h, h, seq, 32, true),
        LayerShape::new("attn.out", h, h, seq, 32, true),
        LayerShape::new("ffn.fc1", 4 * h, h, seq, 32, true),
        LayerShape::new("ffn.fc2", h, 4 * h, seq, 32, true),
    ];
    Model {
        kind: ModelKind::Opt6_7b,
        layers,
    }
}

/// Llama2-7B: 32 decoder layers, hidden 4096, gated FFN 11008, at `seq`
/// tokens.
pub fn llama2_7b(seq: usize) -> Model {
    let h = 4096;
    let ffn = 11008;
    let layers = vec![
        LayerShape::new("attn.q", h, h, seq, 32, true),
        LayerShape::new("attn.k", h, h, seq, 32, true),
        LayerShape::new("attn.v", h, h, seq, 32, true),
        LayerShape::new("attn.out", h, h, seq, 32, true),
        LayerShape::new("ffn.gate", ffn, h, seq, 32, true),
        LayerShape::new("ffn.up", ffn, h, seq, 32, true),
        LayerShape::new("ffn.down", h, ffn, seq, 32, true),
    ];
    Model {
        kind: ModelKind::Llama2_7b,
        layers,
    }
}

/// One GCN aggregation+transform layer: `nodes × nodes` adjacency times
/// `nodes × features` — the Fig. 15(d) sparsity-sweep workload.
pub fn gcn_layer(nodes: usize, features: usize) -> Model {
    Model {
        kind: ModelKind::Gcn,
        layers: vec![LayerShape::new(
            "aggregate",
            nodes,
            nodes,
            features,
            1,
            true,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_macs_in_known_range() {
        // ResNet-50 at 224² is ~4.1 GMACs.
        let g = resnet50(224).total_macs() as f64 / 1e9;
        assert!((3.4..4.8).contains(&g), "{g} GMACs");
    }

    #[test]
    fn resnet50_params_in_known_range() {
        // ~25.6 M parameters; conv weights alone ~23.5 M.
        let p = resnet50(224).total_weights() as f64 / 1e6;
        assert!((20.0..28.0).contains(&p), "{p} M params");
    }

    #[test]
    fn resnet18_smaller_than_resnet50() {
        let r18 = resnet18(224);
        let r50 = resnet50(224);
        assert!(r18.total_weights() < r50.total_weights());
        assert!(r18.total_macs() < r50.total_macs());
    }

    #[test]
    fn bert_base_params_in_known_range() {
        // Encoder matmul weights: 12 × (4·768² + 2·768·3072) ≈ 85 M.
        let p = bert_base(128).total_weights() as f64 / 1e6;
        assert!((80.0..90.0).contains(&p), "{p} M");
    }

    #[test]
    fn opt_params_match_6_7b_scale() {
        // Decoder matmul weights ≈ 32 × (4·4096² + 2·4096·16384) ≈ 6.4 B.
        let p = opt_6_7b(128).total_weights() as f64 / 1e9;
        assert!((6.0..7.0).contains(&p), "{p} B");
    }

    #[test]
    fn llama_params_match_7b_scale() {
        let p = llama2_7b(128).total_weights() as f64 / 1e9;
        assert!((6.2..7.0).contains(&p), "{p} B");
    }

    #[test]
    fn stem_and_fc_not_prunable() {
        let m = resnet50(32);
        let frozen: Vec<_> = m.layers.iter().filter(|l| !l.prunable).collect();
        assert_eq!(frozen.len(), 2);
        assert!(frozen.iter().any(|l| l.name.contains("stem")));
        assert!(frozen.iter().any(|l| l.name == "fc"));
    }

    #[test]
    fn macs_scale_with_sequence_length() {
        assert_eq!(bert_base(256).total_macs(), 2 * bert_base(128).total_macs());
    }

    #[test]
    fn gcn_layer_shape() {
        let g = gcn_layer(1024, 128);
        assert_eq!(g.layers.len(), 1);
        assert_eq!(g.layers[0].macs(), 1024 * 1024 * 128);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::Opt6_7b.to_string(), "OPT-6.7B");
        assert_eq!(ModelKind::ResNet50.to_string(), "ResNet-50");
    }
}
