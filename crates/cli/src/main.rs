//! `tbstc-cli` — command-line access to the TB-STC reproduction.
//!
//! ```text
//! tbstc-cli prune    [--rows 128] [--cols 128] [--sparsity 0.75] [--block 8] [--seed 0]
//! tbstc-cli formats  [--rows 128] [--cols 128] [--sparsity 0.75] [--seed 0]
//! tbstc-cli simulate [--model bert|resnet50|resnet18|opt|llama] [--arch tb-stc|stc|vegeta|highlight|rm-stc|tc]
//!                    [--sparsity 0.75] [--bandwidth 64] [--seed 0] [--json]
//! tbstc-cli sweep    [--models ...] [--archs ...] [--sparsities ...] [--json]
//! tbstc-cli serve    [--addr 127.0.0.1:7878] [--cache-dir .tbstc-cache] [--oneshot --job FILE]
//! tbstc-cli submit   --job FILE [--addr 127.0.0.1:7878]
//! tbstc-cli lint     [--deny-warnings] [--json] [--sarif] [--fix] [--update-baseline]
//!                    [--no-cache] [--cache-bench [--min-speedup N]] [--root DIR]
//! tbstc-cli table3
//! tbstc-cli models
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

use args::ParsedArgs;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{}", commands::USAGE);
        return ExitCode::SUCCESS;
    }
    let parsed = match ParsedArgs::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
