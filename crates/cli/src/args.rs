//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand, any positional operands that
/// follow it, plus its `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Positional operands between the subcommand and the first `--key`
    /// (e.g. `arch show tb-stc` → `["show", "tb-stc"]`). Commands that
    /// take none reject stray operands at dispatch.
    pub positionals: Vec<String>,
    /// `--key value` pairs; a flag without a value maps to `"true"`.
    pub options: BTreeMap<String, String>,
}

/// Error produced by argument parsing or option lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses an iterator of arguments (excluding the binary name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when no subcommand is given, an option lacks
    /// the `--` prefix, or a `--key` appears twice.
    pub fn parse<I, S>(args: I) -> Result<ParsedArgs, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = args.into_iter().map(Into::into).peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand".into()))?;
        if command.starts_with("--") {
            return Err(ArgError(format!(
                "expected a subcommand, got option {command}"
            )));
        }
        // tbstc-lint: allow(hot-path-alloc) — a command line carries a handful of operands
        let mut positionals = Vec::new();
        while let Some(next) = it.peek() {
            if next.starts_with("--") {
                break;
            }
            positionals.push(it.next().unwrap_or_default());
        }
        let mut options = BTreeMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected --option, got {arg}")))?
                .to_string();
            if key.is_empty() {
                return Err(ArgError("empty option name".into()));
            }
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    it.next().unwrap_or_else(|| "true".to_string())
                }
                _ => "true".to_string(),
            };
            if options.insert(key.clone(), value).is_some() {
                return Err(ArgError(format!("--{key} given twice")));
            }
        }
        Ok(ParsedArgs {
            command,
            positionals,
            options,
        })
    }

    /// A string option with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got {v}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let a = ParsedArgs::parse(["prune", "--sparsity", "0.75", "--seed", "7"]).unwrap();
        assert_eq!(a.command, "prune");
        assert_eq!(a.str_or("sparsity", "0"), "0.75");
        assert_eq!(a.num_or("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn defaults_apply() {
        let a = ParsedArgs::parse(["simulate"]).unwrap();
        assert_eq!(a.num_or("sparsity", 0.5f64).unwrap(), 0.5);
        assert_eq!(a.str_or("arch", "tb-stc"), "tb-stc");
    }

    #[test]
    fn bare_flags_become_true() {
        let a = ParsedArgs::parse(["prune", "--verbose"]).unwrap();
        assert_eq!(a.str_or("verbose", "false"), "true");
    }

    #[test]
    fn rejects_missing_command() {
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
        assert!(ParsedArgs::parse(["--sparsity", "0.5"]).is_err());
    }

    #[test]
    fn rejects_duplicate_options() {
        assert!(ParsedArgs::parse(["x", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = ParsedArgs::parse(["x", "--n", "abc"]).unwrap();
        assert!(a.num_or("n", 1u32).is_err());
    }

    #[test]
    fn collects_positionals_before_options() {
        let a = ParsedArgs::parse(["arch", "show", "tb-stc", "--json"]).unwrap();
        assert_eq!(a.command, "arch");
        assert_eq!(a.positionals, vec!["show", "tb-stc"]);
        assert_eq!(a.str_or("json", "false"), "true");
        // A bare token after an option is that option's value, not a
        // positional.
        let b = ParsedArgs::parse(["simulate", "--arch", "tc"]).unwrap();
        assert!(b.positionals.is_empty());
        assert_eq!(b.str_or("arch", ""), "tc");
    }
}
