//! Subcommand implementations. Each returns its output as a `String` so
//! the commands are unit-testable without capturing stdout.

use std::fmt::Write as _;

use tbstc::energy::table3::{a100_integration_overhead, table3_rows};
use tbstc::formats::{Csr, Ddc, Sdc};
use tbstc::matrix::rng::MatrixRng;
use tbstc::models::{bert_base, llama2_7b, opt_6_7b, resnet18, resnet50, Model};
use tbstc::prelude::*;
use tbstc::sparsity::similarity::similarity_sweep;
use tbstc::sparsity::stats::classify_blocks;

use crate::args::{ArgError, ParsedArgs};

/// The help text.
pub const USAGE: &str = "\
tbstc-cli — TB-STC (HPCA 2025) reproduction toolkit

USAGE:
  tbstc-cli prune    [--rows 128] [--cols 128] [--sparsity 0.75] [--block 8] [--seed 0]
  tbstc-cli formats  [--rows 128] [--cols 128] [--sparsity 0.75] [--seed 0]
  tbstc-cli simulate [--model bert] [--arch tb-stc | --arch-spec FILE]
                     [--sparsity 0.75] [--bandwidth 64] [--seed 0] [--json]
  tbstc-cli archs    [--json]
  tbstc-cli arch     show <name>
  tbstc-cli sweep    [--models bert,resnet50] [--archs tb-stc,rm-stc,highlight]
                     [--sparsities 0.5,0.75] [--seed 0] [--bandwidth 64]
                     [--jobs N] [--verify] [--json]
  tbstc-cli serve    [--addr 127.0.0.1:7878] [--cache-dir .tbstc-cache]
                     [--queue 32] [--job-workers N] [--hold-ms 0] [--quiet]
                     [--chunk-size 16] [--long-job-points 8]
                     [--oneshot --job FILE]
  tbstc-cli submit   --job FILE [--addr 127.0.0.1:7878] [--follow]
  tbstc-cli jobs     list|status|cancel|resume [KEY] [--addr 127.0.0.1:7878]
  tbstc-cli loadgen  [--addr HOST:PORT] [--connections 64] [--requests 512]
                     [--specs 16] [--zipf 1.1] [--seed 1] [--min-rps 0] [--json]
  tbstc-cli perf     [--iters 20] [--seed 42] [--jobs N] [--out BENCH_PR10.json]
                     [--loadgen-connections 1000] [--loadgen-requests 8000]
  tbstc-cli lint     [--deny-warnings] [--json] [--sarif] [--fix]
                     [--update-baseline] [--rules a,b] [--root DIR]
                     [--no-cache] [--cache-bench [--min-speedup N]]
  tbstc-cli table3
  tbstc-cli models
  tbstc-cli help

Models: resnet50, resnet18, bert, opt, llama (sweep/--json also: gcn)
Archs:  tc, stc, vegeta, highlight, rm-stc, tb-stc (sweep also: sgcn)

`sweep` runs the cross product models x archs x sparsities in parallel
(worker count from --jobs, the TBSTC_JOBS env var, or the machine),
adds a dense TC baseline per model, and reports speedup/EDP against it.
--verify reruns the grid serially and checks the results are
bit-identical to the parallel run.

`serve` runs the HTTP job service: POST job specs to /v1/jobs, scrape
Prometheus metrics from /metrics. Results are cached on disk under
--cache-dir keyed by the canonicalized spec, so identical jobs are
byte-identical cache hits even across restarts. --oneshot boots on an
ephemeral port, submits --job FILE twice (the second must be a cache
hit), prints the metrics text, and exits — the CI smoke test.

`submit` posts a job-spec file to a running server and prints the
response body (stdout) plus cache status (stderr). Jobs whose grid
exceeds the server's --long-job-points threshold are accepted 202 into
the durable queue; --follow polls the job until it completes and then
prints the result body, so scripted submits work the same for short
and long jobs.

`jobs` manages durable jobs on a running server: `list` tabulates
every job's lifecycle state, `status KEY` prints the result (or the
progress document while running), `cancel KEY` stops a job at its next
chunk boundary, and `resume KEY` re-enqueues a cancelled or failed job
— completed grid points replay from the sweep memo, so only the
unfinished tail recomputes.

`loadgen` drives an event-driven load generator against a server:
--connections keep-alive connections issue --requests submissions
with zipfian popularity over --specs distinct job specs, seeded by
--seed so the sequence replays exactly. Without --addr it boots a
private server on an ephemeral port first. Reports rps and p50/p99/
p999 latency; exits nonzero if any request fails or rps falls below
--min-rps (CI's floor).

`archs` lists the architecture registry (names, aliases, lane counts);
`arch show <name>` prints a builtin's `tbstc.v1` spec document. Save
it, edit it, and run it with `simulate --arch-spec FILE` (or POST it
inline as `arch_spec` to a server) to simulate your own architecture.

`--json` on simulate/sweep emits the same canonical machine-readable
body the server returns, instead of the human tables.

`perf` times the numeric hot paths (train step old vs new kernels,
Algorithm-1 sparsify, layer simulation) plus the serve loopback
(loadgen-driven throughput, latency percentiles, and cache hit-rate)
and the workspace lint pass, and writes a JSON report to --out.
--jobs caps the GEMM worker pool (sets TBSTC_JOBS).

`lint` runs the workspace's own static analyzer (tbstc-lint) over
crates/*/src: ten per-file rules (panic-surface, determinism,
lock-discipline, arch-dispatch, crate-hygiene, unsafe-audit,
hot-path-alloc, blocking-in-event-loop, spec-coverage,
store-lock-discipline) plus two workspace-wide structural rules
(lock-order deadlock-cycle detection over the lock-acquisition
graph, panic-reachability escalation along the call graph from the
serve request path) with file:line:col output.
Errors always fail; warnings fail only with --deny-warnings (CI's
mode). Silence a finding in place with a
`// tbstc-lint: allow(<rule>) — reason` comment, or grandfather it
with --update-baseline (rewrites the count-aware lint-baseline.txt
at the root). --sarif emits SARIF 2.1.0 for CI annotation; --fix
inserts TODO-tagged suppressions for fixable warnings and burns
down stale baseline entries. Per-file results are cached in
target/tbstc-lint.cache (skip with --no-cache); --cache-bench
times a cold vs warm run and fails below --min-speedup.
";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns [`ArgError`] for unknown subcommands or invalid options.
pub fn run(args: &ParsedArgs) -> Result<String, ArgError> {
    if !matches!(args.command.as_str(), "arch" | "jobs") {
        if let Some(stray) = args.positionals.first() {
            return Err(ArgError(format!(
                "unexpected argument `{stray}`; options start with --"
            )));
        }
    }
    match args.command.as_str() {
        "prune" => prune(args),
        "formats" => formats(args),
        "simulate" => simulate(args),
        "archs" => Ok(archs(args)),
        "arch" => arch_cmd(args),
        "sweep" => sweep(args),
        "serve" => serve(args),
        "submit" => submit(args),
        "jobs" => jobs_cmd(args),
        "loadgen" => loadgen(args),
        "perf" => perf(args),
        "lint" => lint(args),
        "table3" => Ok(table3()),
        "models" => Ok(models()),
        other => Err(ArgError(format!(
            "unknown subcommand `{other}`; try `help`"
        ))),
    }
}

fn parse_arch(name: &str) -> Result<Arch, ArgError> {
    // One name table for CLI, server, and caches: the archs registry.
    name.parse::<Arch>().map_err(|e| ArgError(e.to_string()))
}

fn parse_model_spec(name: &str) -> Result<ModelSpec, ArgError> {
    tbstc::jobspec::model_from_name(name).ok_or_else(|| ArgError(format!("unknown model `{name}`")))
}

fn parse_list<T>(
    raw: &str,
    parse: impl Fn(&str) -> Result<T, ArgError>,
) -> Result<Vec<T>, ArgError> {
    let items: Vec<T> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(ArgError("expected a non-empty comma-separated list".into()));
    }
    Ok(items)
}

fn parse_model(name: &str) -> Result<Model, ArgError> {
    Ok(match name {
        "resnet50" => resnet50(64),
        "resnet18" => resnet18(64),
        "bert" => bert_base(128),
        "opt" => opt_6_7b(128),
        "llama" => llama2_7b(128),
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    })
}

fn prune(args: &ParsedArgs) -> Result<String, ArgError> {
    let rows: usize = args.num_or("rows", 128)?;
    let cols: usize = args.num_or("cols", 128)?;
    let sparsity: f64 = args.num_or("sparsity", 0.75)?;
    let block: usize = args.num_or("block", 8)?;
    let seed: u64 = args.num_or("seed", 0)?;
    if !(0.0..=1.0).contains(&sparsity) {
        return Err(ArgError("--sparsity must be in [0, 1]".into()));
    }
    if block == 0 || !block.is_power_of_two() {
        return Err(ArgError("--block must be a power of two".into()));
    }

    let w = MatrixRng::seed_from(seed).block_structured_weights(rows, cols, block.min(8));
    let cfg = TbsConfig::with_block_size(block);
    let p = TbsPattern::sparsify(&w, sparsity, &cfg);
    p.assert_valid();
    let dist = classify_blocks(&p);
    let (r, c, o) = dist.fractions();

    let mut out = String::new();
    writeln!(
        out,
        "TBS pruning {rows}x{cols}, target {:.1}%, block {block}",
        sparsity * 100.0
    )
    .ok();
    writeln!(
        out,
        "  achieved sparsity : {:.2}%",
        p.mask().sparsity() * 100.0
    )
    .ok();
    writeln!(
        out,
        "  blocks            : {} ({} grid)",
        p.blocks().len(),
        {
            let (gr, gc) = p.grid();
            format!("{gr}x{gc}")
        }
    )
    .ok();
    writeln!(
        out,
        "  block directions  : {:.1}% row / {:.1}% column / {:.1}% other",
        r * 100.0,
        c * 100.0,
        o * 100.0
    )
    .ok();
    if block == 8 {
        for row in similarity_sweep(&w, sparsity) {
            writeln!(
                out,
                "  similarity vs US  : {:<5} {:.2}%",
                row.kind.to_string(),
                row.similarity * 100.0
            )
            .ok();
        }
    }
    let t = p.transpose();
    t.assert_valid();
    writeln!(
        out,
        "  transposed pattern: valid (backward pass accelerates too)"
    )
    .ok();
    Ok(out)
}

fn formats(args: &ParsedArgs) -> Result<String, ArgError> {
    let rows: usize = args.num_or("rows", 128)?;
    let cols: usize = args.num_or("cols", 128)?;
    let sparsity: f64 = args.num_or("sparsity", 0.75)?;
    let seed: u64 = args.num_or("seed", 0)?;

    let w = MatrixRng::seed_from(seed).block_structured_weights(rows, cols, 8);
    let p = TbsPattern::sparsify(&w, sparsity, &TbsConfig::paper_default());
    let pruned = p.mask().apply(&w);
    let ddc = Ddc::encode(&pruned, &p);
    let sdc = Sdc::encode(&pruned);
    let csr = Csr::encode(&pruned);
    debug_assert_eq!(ddc.decode(), pruned);

    let mut out = String::new();
    writeln!(
        out,
        "Storage formats for {rows}x{cols} at {:.1}% sparsity:",
        sparsity * 100.0
    )
    .ok();
    writeln!(out, "  dense : {:>8} bytes", pruned.len() * 2).ok();
    writeln!(
        out,
        "  DDC   : {:>8} bytes (info {} + data {})",
        ddc.stored_bytes(),
        ddc.info_bytes(),
        ddc.data_bytes()
    )
    .ok();
    writeln!(
        out,
        "  SDC   : {:>8} bytes ({:.1}% padding)",
        sdc.stored_bytes(),
        sdc.redundancy() * 100.0
    )
    .ok();
    writeln!(
        out,
        "  CSR   : {:>8} bytes (block consumption contiguity {:.2})",
        csr.stored_bytes(),
        csr.block_access_trace(8, 8).contiguity()
    )
    .ok();
    Ok(out)
}

/// Resolves the architecture a `simulate` invocation targets: a builtin
/// by `--arch` name, or an inline `tbstc.v1` document via
/// `--arch-spec FILE` (the declarative path).
fn parse_arch_choice(args: &ParsedArgs) -> Result<ArchChoice, ArgError> {
    match args.options.get("arch-spec") {
        None => Ok(ArchChoice::Builtin(parse_arch(
            &args.str_or("arch", "tb-stc"),
        )?)),
        Some(_) if args.options.contains_key("arch") => Err(ArgError(
            "give either --arch or --arch-spec, not both".into(),
        )),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            let spec = tbstc::archspec::spec_from_json(&text)
                .map_err(|e| ArgError(format!("{path}: {e}")))?;
            Ok(ArchChoice::Custom(Box::new(spec)))
        }
    }
}

fn simulate(args: &ParsedArgs) -> Result<String, ArgError> {
    let choice = parse_arch_choice(args)?;
    let sparsity: f64 = args.num_or("sparsity", 0.75)?;
    let bandwidth: f64 = args.num_or("bandwidth", 64.0)?;
    let seed: u64 = args.num_or("seed", 0)?;
    if !(0.0..=1.0).contains(&sparsity) {
        return Err(ArgError("--sparsity must be in [0, 1]".into()));
    }

    if args.str_or("json", "false") == "true" {
        // Same schema and bytes the server returns for this job.
        let spec = JobSpec::Simulate(SimulateSpec {
            arch: choice,
            model: parse_model_spec(&args.str_or("model", "bert"))?,
            sparsity,
            seed,
            bandwidth_gbps: bandwidth,
        });
        let engine = SweepRunner::new(HwConfig::with_bandwidth_gbps(bandwidth));
        return Ok(format!("{}\n", spec.execute(&engine)));
    }

    let model = parse_model(&args.str_or("model", "bert"))?;
    let cfg = HwConfig::with_bandwidth_gbps(bandwidth);
    let dense = simulate_model(Arch::Tc, &model, 0.0, seed, &cfg);
    let label = choice.canonical_name().to_string();
    let res = match &choice {
        ArchChoice::Builtin(a) => simulate_model(*a, &model, sparsity, seed, &cfg),
        ArchChoice::Custom(spec) => {
            let custom = tbstc::sim::CustomArch::new((**spec).clone())
                .map_err(|e| ArgError(format!("invalid arch spec: {e}")))?;
            tbstc::sim::simulate_model_on(&custom, &model, sparsity, seed, &cfg)
        }
    };

    let mut out = String::new();
    writeln!(
        out,
        "{} on {} at {:.1}% sparsity, {bandwidth} GB/s:",
        label,
        model.kind,
        sparsity * 100.0
    )
    .ok();
    writeln!(
        out,
        "  {:<12} {:>14} {:>12} {:>10} {:>10}",
        "layer", "cycles", "energy(uJ)", "comp.util", "bw.util"
    )
    .ok();
    for l in &res.layers {
        writeln!(
            out,
            "  {:<12} {:>14} {:>12.1} {:>9.1}% {:>9.1}%",
            l.name,
            l.cycles,
            l.energy_pj * 1e-6,
            l.compute_utilization * 100.0,
            l.bandwidth_utilization * 100.0
        )
        .ok();
    }
    writeln!(
        out,
        "  total: {} cycles, {:.3} mJ",
        res.total_cycles,
        res.total_energy_pj * 1e-9
    )
    .ok();
    writeln!(
        out,
        "  vs dense TC: speedup {:.2}x, EDP gain {:.2}x",
        res.speedup_over(&dense),
        res.edp_gain_over(&dense)
    )
    .ok();
    Ok(out)
}

/// Lists the architecture registry. Both renderings are driven off
/// [`tbstc::sim::REGISTRY`] itself, so the listing cannot drift from
/// what `simulate`/`sweep`/the server actually accept.
fn archs(args: &ParsedArgs) -> String {
    if args.str_or("json", "false") == "true" {
        let entries: Vec<Json> = tbstc::sim::REGISTRY
            .iter()
            .map(|m| {
                Json::obj([
                    ("name", Json::str(m.canonical_name())),
                    ("display", Json::str(m.display_name())),
                    (
                        "aliases",
                        Json::Arr(m.aliases().iter().map(|&a| Json::str(a)).collect()),
                    ),
                    ("summary", Json::str(m.summary())),
                ])
            })
            .collect();
        return format!("{}\n", Json::obj([("archs", Json::Arr(entries))]));
    }
    let mut out = String::new();
    writeln!(
        out,
        "{:<10} {:<10} {:<22} summary",
        "name", "display", "aliases"
    )
    .ok();
    for m in tbstc::sim::REGISTRY {
        writeln!(
            out,
            "{:<10} {:<10} {:<22} {}",
            m.canonical_name(),
            m.display_name(),
            m.aliases().join(","),
            m.summary()
        )
        .ok();
    }
    out.push_str("\n`arch show <name>` prints a spec document you can edit and run.\n");
    out
}

/// `arch show <name>`: the builtin's `tbstc.v1` spec document, exactly
/// what `simulate --arch-spec` and the server's inline `arch_spec`
/// accept back.
fn arch_cmd(args: &ParsedArgs) -> Result<String, ArgError> {
    match args
        .positionals
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["show", name] => {
            let model = tbstc::sim::archs::by_name(name).ok_or_else(|| {
                ArgError(format!(
                    "unknown architecture `{name}`; valid names: {}",
                    tbstc::sim::archs::canonical_names()
                ))
            })?;
            Ok(format!(
                "{}\n",
                tbstc::archspec::spec_to_value(&model.spec())
            ))
        }
        _ => Err(ArgError("usage: tbstc-cli arch show <name>".into())),
    }
}

fn sweep(args: &ParsedArgs) -> Result<String, ArgError> {
    let models = parse_list(&args.str_or("models", "bert"), parse_model_spec)?;
    let archs = parse_list(&args.str_or("archs", "tb-stc,rm-stc,highlight"), parse_arch)?;
    let sparsities = parse_list(&args.str_or("sparsities", "0.5,0.75"), |s| {
        s.parse::<f64>()
            .map_err(|_| ArgError(format!("--sparsities expects numbers, got {s}")))
    })?;
    if sparsities.iter().any(|s| !(0.0..=1.0).contains(s)) {
        return Err(ArgError("--sparsities must be in [0, 1]".into()));
    }
    let seed: u64 = args.num_or("seed", 0)?;
    let bandwidth: f64 = args.num_or("bandwidth", 64.0)?;
    let jobs_flag: usize = args.num_or("jobs", 0)?; // 0 = auto
    let verify = args.str_or("verify", "false") == "true";

    let runner = if jobs_flag > 0 {
        Runner::new().with_workers(jobs_flag)
    } else {
        Runner::new()
    };
    let engine = SweepRunner::with_runner(HwConfig::with_bandwidth_gbps(bandwidth), runner);

    if args.str_or("json", "false") == "true" {
        let spec = JobSpec::Sweep(SweepSpec {
            archs,
            models,
            sparsities,
            seeds: vec![seed],
            bandwidth_gbps: bandwidth,
        });
        return Ok(format!("{}\n", spec.execute(&engine)));
    }

    // Dense TC baselines lead the batch: they anchor the speedup/EDP
    // columns and are served from the cache if the grid revisits them.
    let grid = Sweep::new()
        .models(models.iter().copied())
        .archs(archs.iter().copied())
        .sparsities(sparsities.iter().copied())
        .seeds([seed]);
    let jobs: Vec<SimJob> = models
        .iter()
        .map(|&model| SimJob {
            arch: Arch::Tc,
            model,
            sparsity: 0.0,
            seed,
        })
        .chain(grid.jobs())
        .collect();
    let report = engine.run_models(&jobs);

    let mut out = String::new();
    writeln!(
        out,
        "Sweep: {} jobs ({} computed, {} cached) on {} workers, {bandwidth} GB/s, seed {seed}",
        report.stats.jobs, report.stats.unique_jobs, report.stats.cache_hits, report.stats.workers
    )
    .ok();
    writeln!(
        out,
        "  {:<16} {:<10} {:>9} {:>14} {:>9} {:>9}",
        "model", "arch", "sparsity", "cycles", "speedup", "EDP gain"
    )
    .ok();
    for (job, res) in jobs.iter().zip(&report.results).skip(models.len()) {
        let Some(mi) = models.iter().position(|m| *m == job.model) else {
            continue; // grid jobs come from `models`; nothing to anchor otherwise
        };
        let dense = &report.results[mi];
        writeln!(
            out,
            "  {:<16} {:<10} {:>8.1}% {:>14} {:>8.2}x {:>8.2}x",
            job.model.to_string(),
            job.arch.to_string(),
            job.sparsity * 100.0,
            res.total_cycles,
            res.speedup_over(dense),
            res.edp_gain_over(dense)
        )
        .ok();
    }
    writeln!(
        out,
        "  wall {:.2?}, busy {:.2?} across {} workers",
        report.stats.wall,
        report.stats.busy(),
        report.stats.workers
    )
    .ok();

    if verify {
        let reference =
            SweepRunner::with_runner(HwConfig::with_bandwidth_gbps(bandwidth), Runner::serial());
        let serial = reference.run_models(&jobs);
        if serial.results != report.results {
            return Err(ArgError(
                "verify FAILED: parallel results differ from serial".into(),
            ));
        }
        writeln!(
            out,
            "  verify: serial rerun bit-identical ({} jobs; serial wall {:.2?}, parallel wall {:.2?})",
            serial.stats.jobs, serial.stats.wall, report.stats.wall
        )
        .ok();
    }
    Ok(out)
}

fn serve_config(args: &ParsedArgs) -> Result<tbstc_serve::ServeConfig, ArgError> {
    let queue: usize = args.num_or("queue", 32)?;
    let job_workers: usize = args.num_or("job-workers", 0)?; // 0 = auto
    let hold_ms: u64 = args.num_or("hold-ms", 0)?;
    let defaults = tbstc_serve::ServeConfig::default();
    let chunk_size: usize = args.num_or("chunk-size", defaults.chunk_size)?;
    let long_job_points: usize = args.num_or("long-job-points", defaults.long_job_points)?;
    let chunk_hold_ms: u64 = args.num_or("chunk-hold-ms", defaults.chunk_hold_ms)?;
    if chunk_size == 0 {
        return Err(ArgError("--chunk-size must be at least 1".into()));
    }
    let mut cfg = tbstc_serve::ServeConfig {
        addr: args.str_or("addr", "127.0.0.1:7878"),
        queue_capacity: queue,
        cache_dir: args.str_or("cache-dir", ".tbstc-cache").into(),
        hold_ms,
        quiet: args.str_or("quiet", "false") == "true",
        chunk_size,
        long_job_points,
        chunk_hold_ms,
        ..defaults
    };
    if job_workers > 0 {
        cfg.job_workers = job_workers;
    }
    Ok(cfg)
}

fn serve(args: &ParsedArgs) -> Result<String, ArgError> {
    let mut cfg = serve_config(args)?;
    if args.str_or("oneshot", "false") == "true" {
        if !args.options.contains_key("addr") {
            cfg.addr = "127.0.0.1:0".into(); // ephemeral: CI-safe
        }
        let job = args
            .options
            .get("job")
            .ok_or_else(|| ArgError("--oneshot needs --job FILE".into()))?;
        return oneshot(cfg, job);
    }
    cfg.watch_signals = true;
    tbstc_serve::signal::install_shutdown_handlers();
    let server = tbstc_serve::Server::bind(cfg).map_err(|e| ArgError(e.to_string()))?;
    server.run(); // blocks until SIGTERM/ctrl-c, then drains and flushes
    Ok(String::new())
}

/// Boot on a private port, submit the canned job twice (the second must
/// be a byte-identical cache hit), print the metrics text, shut down.
/// CI runs this and greps the output.
fn oneshot(cfg: tbstc_serve::ServeConfig, job_path: &str) -> Result<String, ArgError> {
    let body = std::fs::read_to_string(job_path)
        .map_err(|e| ArgError(format!("cannot read {job_path}: {e}")))?;
    // Validate locally so a bad file fails with a parse error, not a 400.
    JobSpec::from_json(&body).map_err(|e| ArgError(format!("{job_path}: {e}")))?;

    let server = tbstc_serve::Server::bind(cfg).map_err(|e| ArgError(e.to_string()))?;
    let running = server.spawn().map_err(|e| ArgError(e.to_string()))?;
    let addr = running.addr.to_string();

    let mut out = String::new();
    let mut first_body = String::new();
    for pass in ["first", "second"] {
        let resp = tbstc_serve::http::request(&addr, "POST", "/v1/jobs", Some(&body))
            .map_err(|e| ArgError(e.to_string()))?;
        let cache = resp.header("x-cache").unwrap_or("-").to_string();
        writeln!(
            out,
            "oneshot {pass} submission: {} X-Cache: {cache} ({} bytes)",
            resp.status,
            resp.body.len()
        )
        .ok();
        if resp.status != 200 {
            running.shutdown_and_join();
            return Err(ArgError(format!(
                "oneshot {pass} submission failed with {}: {}",
                resp.status,
                resp.body.trim()
            )));
        }
        match pass {
            "first" => first_body = resp.body,
            _ => {
                if cache != "hit" || resp.body != first_body {
                    running.shutdown_and_join();
                    return Err(ArgError(
                        "oneshot: second submission was not a byte-identical cache hit".into(),
                    ));
                }
                writeln!(out, "oneshot cache check: byte-identical hit").ok();
            }
        }
    }
    let metrics = tbstc_serve::http::request(&addr, "GET", "/metrics", None)
        .map_err(|e| ArgError(e.to_string()))?;
    running.shutdown_and_join();
    out.push_str(&metrics.body);
    Ok(out)
}

fn submit(args: &ParsedArgs) -> Result<String, ArgError> {
    let addr = args.str_or("addr", "127.0.0.1:7878");
    let job_path = args
        .options
        .get("job")
        .ok_or_else(|| ArgError("submit needs --job FILE".into()))?;
    let body = std::fs::read_to_string(job_path)
        .map_err(|e| ArgError(format!("cannot read {job_path}: {e}")))?;
    let resp = tbstc_serve::http::request(&addr, "POST", "/v1/jobs", Some(&body))
        .map_err(|e| ArgError(e.to_string()))?;
    match resp.status {
        200 => {
            eprintln!(
                "submitted {job_path}: X-Cache: {} key {}",
                resp.header("x-cache").unwrap_or("-"),
                resp.header("x-job-key").unwrap_or("-")
            );
            Ok(resp.body)
        }
        202 => {
            let key = resp.header("x-job-key").unwrap_or("-").to_string();
            let location = resp
                .header("location")
                .map(str::to_string)
                .unwrap_or_else(|| format!("/v1/jobs/{key}"));
            eprintln!("submitted {job_path}: accepted as durable job {key}; poll {location}");
            if args.str_or("follow", "false") == "true" {
                follow_job(&addr, &location)
            } else {
                Ok(resp.body)
            }
        }
        status => Err(ArgError(format!(
            "server answered {status}: {}",
            resp.body.trim()
        ))),
    }
}

/// Polls a durable job's status URL until it finishes, printing progress
/// to stderr, and returns the final result body.
fn follow_job(addr: &str, location: &str) -> Result<String, ArgError> {
    let mut last_progress = String::new();
    // ~10 minutes at 200 ms per poll — generous for any test sweep,
    // finite so a wedged server cannot hang a script forever.
    for _ in 0..3000 {
        let resp = tbstc_serve::http::request(addr, "GET", location, None)
            .map_err(|e| ArgError(e.to_string()))?;
        match resp.status {
            // A result body carries X-Cache; a terminal status document
            // (cancelled/failed) does not.
            200 if resp.header("x-cache").is_some() => {
                eprintln!("follow: job completed");
                return Ok(resp.body);
            }
            200 => {
                return Err(ArgError(format!(
                    "job finished without a result: {}",
                    resp.body.trim()
                )))
            }
            202 => {
                let progress = Json::parse(resp.body.trim_end())
                    .ok()
                    .map(|v| {
                        let state = v
                            .get("state")
                            .and_then(Json::as_str)
                            .unwrap_or("?")
                            .to_string();
                        match (
                            v.get("done").and_then(Json::as_u64),
                            v.get("total").and_then(Json::as_u64),
                        ) {
                            (Some(done), Some(total)) => format!("{state} {done}/{total}"),
                            _ => state,
                        }
                    })
                    .unwrap_or_else(|| "pending".to_string());
                if progress != last_progress {
                    eprintln!("follow: {progress}");
                    last_progress = progress;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            status => {
                return Err(ArgError(format!(
                    "server answered {status}: {}",
                    resp.body.trim()
                )))
            }
        }
    }
    Err(ArgError("follow: timed out waiting for the job".into()))
}

/// `jobs list|status|cancel|resume`: durable-job management against a
/// running server.
fn jobs_cmd(args: &ParsedArgs) -> Result<String, ArgError> {
    let addr = args.str_or("addr", "127.0.0.1:7878");
    let sub = args.positionals.first().map(String::as_str).unwrap_or("");
    let key = args.positionals.get(1).map(String::as_str);
    let usage =
        || ArgError("usage: tbstc-cli jobs list|status|cancel|resume [KEY] [--addr]".into());
    if args.positionals.len() > 2 {
        return Err(usage());
    }
    match (sub, key) {
        ("list", None) => {
            let resp = tbstc_serve::http::request(&addr, "GET", "/v1/jobs", None)
                .map_err(|e| ArgError(e.to_string()))?;
            if resp.status != 200 {
                return Err(ArgError(format!(
                    "server answered {}: {}",
                    resp.status,
                    resp.body.trim()
                )));
            }
            let v = Json::parse(resp.body.trim_end()).map_err(|e| ArgError(e.to_string()))?;
            let jobs = v.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
            let mut out = String::new();
            writeln!(out, "{:<32} {:<10} progress", "job", "state").ok();
            for job in jobs {
                match tbstc::jobstate::JobStatus::from_value(job) {
                    Ok(status) => {
                        writeln!(out, "{:<32} {}", status.id, status.state).ok();
                    }
                    Err(e) => {
                        writeln!(out, "{:<32} <unparseable: {e}>", "?").ok();
                    }
                }
            }
            if jobs.is_empty() {
                writeln!(out, "(no durable jobs)").ok();
            }
            Ok(out)
        }
        ("status", Some(key)) => {
            let resp = tbstc_serve::http::request(&addr, "GET", &format!("/v1/jobs/{key}"), None)
                .map_err(|e| ArgError(e.to_string()))?;
            if resp.status == 200 || resp.status == 202 {
                Ok(resp.body)
            } else {
                Err(ArgError(format!(
                    "server answered {}: {}",
                    resp.status,
                    resp.body.trim()
                )))
            }
        }
        ("cancel", Some(key)) => {
            let resp =
                tbstc_serve::http::request(&addr, "DELETE", &format!("/v1/jobs/{key}"), None)
                    .map_err(|e| ArgError(e.to_string()))?;
            match resp.status {
                200 => {
                    eprintln!("job {key} cancelled");
                    Ok(resp.body)
                }
                202 => {
                    eprintln!("cancel requested; job {key} stops at its next chunk boundary");
                    Ok(resp.body)
                }
                status => Err(ArgError(format!(
                    "server answered {status}: {}",
                    resp.body.trim()
                ))),
            }
        }
        ("resume", Some(key)) => {
            let resp = tbstc_serve::http::request(&addr, "GET", &format!("/v1/jobs/{key}"), None)
                .map_err(|e| ArgError(e.to_string()))?;
            if resp.status == 200 && resp.header("x-cache").is_some() {
                eprintln!("job {key} is already complete");
                return Ok(resp.body);
            }
            if resp.status != 200 && resp.status != 202 {
                return Err(ArgError(format!(
                    "server answered {}: {}",
                    resp.status,
                    resp.body.trim()
                )));
            }
            // The status document embeds the canonical spec: resubmit it
            // and the server re-queues the job under the same key, with
            // every finished grid point replayed from the memo.
            let status = tbstc::jobstate::JobStatus::from_json(resp.body.trim_end())
                .map_err(|e| ArgError(format!("unexpected status document: {e}")))?;
            let spec_body = format!("{}\n", status.spec);
            let posted = tbstc_serve::http::request(&addr, "POST", "/v1/jobs", Some(&spec_body))
                .map_err(|e| ArgError(e.to_string()))?;
            match posted.status {
                200 => Ok(posted.body),
                202 => {
                    eprintln!("job {key} re-queued; poll /v1/jobs/{key}");
                    Ok(posted.body)
                }
                status => Err(ArgError(format!(
                    "server answered {status}: {}",
                    posted.body.trim()
                ))),
            }
        }
        _ => Err(usage()),
    }
}

/// Drives the event-driven load generator, either against `--addr` or
/// against a private server booted on an ephemeral port. Fails (exit
/// nonzero) on any failed request or an rps below `--min-rps`.
fn loadgen(args: &ParsedArgs) -> Result<String, ArgError> {
    let connections: usize = args.num_or("connections", 64)?;
    let requests: usize = args.num_or("requests", 512)?;
    let specs: usize = args.num_or("specs", 16)?;
    let zipf: f64 = args.num_or("zipf", 1.1)?;
    let seed: u64 = args.num_or("seed", 1)?;
    let min_rps: f64 = args.num_or("min-rps", 0.0)?;
    if connections == 0 || requests == 0 || specs == 0 {
        return Err(ArgError(
            "--connections, --requests, and --specs must be at least 1".into(),
        ));
    }

    let load = tbstc_bench::loadgen::LoadgenConfig {
        addr: args.str_or("addr", ""),
        connections,
        requests,
        distinct_specs: specs,
        zipf_exponent: zipf,
        seed,
        ..tbstc_bench::loadgen::LoadgenConfig::default()
    };

    // Self-host when no address was given: a private server on an
    // ephemeral port with a throwaway cache directory.
    let (report, hosted) = if load.addr.is_empty() {
        let dir = std::env::temp_dir().join(format!("tbstc-loadgen-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = tbstc_serve::Server::bind(tbstc_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: dir.clone(),
            quiet: true,
            queue_capacity: 256, // headroom for the cold burst
            ..tbstc_serve::ServeConfig::default()
        })
        .map_err(|e| ArgError(e.to_string()))?;
        let running = server.spawn().map_err(|e| ArgError(e.to_string()))?;
        let report = tbstc_bench::loadgen::run(&tbstc_bench::loadgen::LoadgenConfig {
            addr: running.addr.to_string(),
            ..load
        });
        running.shutdown_and_join();
        let _ = std::fs::remove_dir_all(&dir);
        (report.map_err(|e| ArgError(e.to_string()))?, true)
    } else {
        (
            tbstc_bench::loadgen::run(&load).map_err(|e| ArgError(e.to_string()))?,
            false,
        )
    };

    let mut out = String::new();
    if args.str_or("json", "false") == "true" {
        out.push_str(&report.to_json());
    } else {
        writeln!(
            out,
            "loadgen: {} connections, {} requests ({} distinct specs, zipf {zipf}, seed {seed}){}",
            report.connections,
            report.completed + report.failed,
            specs,
            if hosted { " [self-hosted]" } else { "" }
        )
        .ok();
        writeln!(
            out,
            "  completed {} / failed {} in {:.3} s  ->  {:.1} req/s",
            report.completed, report.failed, report.elapsed_s, report.rps
        )
        .ok();
        writeln!(
            out,
            "  latency p50 {:.0} us, p99 {:.0} us, p999 {:.0} us; cache hit rate {:.1}%",
            report.p50_us,
            report.p99_us,
            report.p999_us,
            report.hit_rate * 100.0
        )
        .ok();
    }
    if report.failed > 0 {
        return Err(ArgError(format!(
            "loadgen: {} of {} requests failed\n{out}",
            report.failed,
            report.completed + report.failed
        )));
    }
    if report.rps < min_rps {
        return Err(ArgError(format!(
            "loadgen: {:.1} req/s is below the --min-rps floor of {min_rps}\n{out}",
            report.rps
        )));
    }
    Ok(out)
}

fn perf(args: &ParsedArgs) -> Result<String, ArgError> {
    let iters: usize = args.num_or("iters", 20)?;
    let seed: u64 = args.num_or("seed", 42)?;
    let jobs: usize = args.num_or("jobs", 0)?; // 0 = auto
    let loadgen_connections: usize = args.num_or("loadgen-connections", 1000)?;
    let loadgen_requests: usize = args.num_or("loadgen-requests", 8000)?;
    let out_path = args.str_or("out", "BENCH_PR10.json");
    if iters == 0 {
        return Err(ArgError("--iters must be at least 1".into()));
    }
    if jobs > 0 {
        // The GEMM worker pool reads TBSTC_JOBS on each dispatch.
        std::env::set_var(tbstc::runner::JOBS_ENV, jobs.to_string());
    }

    let report = tbstc_bench::perf::run(&tbstc_bench::perf::PerfConfig {
        iters,
        seed,
        loadgen_connections,
        loadgen_requests,
    });
    let json = report.to_json();
    std::fs::write(&out_path, &json)
        .map_err(|e| ArgError(format!("cannot write {out_path}: {e}")))?;

    let mut out = String::new();
    writeln!(
        out,
        "Perf harness: {iters} iters, {} workers (best-of timings)",
        report.workers
    )
    .ok();
    writeln!(
        out,
        "  train step      : old {:>9.1} us, new {:>9.1} us  ({:.2}x speedup)",
        report.train_step_old.best_us, report.train_step_new.best_us, report.train_speedup
    )
    .ok();
    writeln!(
        out,
        "  sparsify 128x128: {:>9.1} us",
        report.sparsify.best_us
    )
    .ok();
    writeln!(
        out,
        "  plan build      : {:>9.1} us",
        report.plan_build.best_us
    )
    .ok();
    writeln!(
        out,
        "  simulate layer  : {:>9.1} us",
        report.simulate_layer.best_us
    )
    .ok();
    writeln!(
        out,
        "  custom arch     : {:>9.1} us ({:.3}x native, spec-interpreted TB-STC)",
        report.custom_arch_simulate.best_us, report.custom_arch_vs_native
    )
    .ok();
    writeln!(
        out,
        "  parallel GEMM bit-identical to serial: {}",
        report.parallel_gemm_bit_identical
    )
    .ok();
    writeln!(
        out,
        "  lint workspace  : {:>9.1} us (full static-analysis pass)",
        report.lint.best_us
    )
    .ok();
    writeln!(
        out,
        "  serve loopback  : {:>9.1} req/s over {} submissions ({:.0}% cache hits; p99 {:.0} us, p999 {:.0} us)",
        report.serve.throughput_rps,
        report.serve.requests,
        report.serve.cache_hit_rate * 100.0,
        report.serve.p99_us,
        report.serve.p999_us
    )
    .ok();
    writeln!(
        out,
        "  loadgen zipfian : {:>9.1} req/s over {} connections ({} failed; p99 {:.0} us, p999 {:.0} us)",
        report.loadgen.rps,
        report.loadgen.connections,
        report.loadgen.failed,
        report.loadgen.p99_us,
        report.loadgen.p999_us
    )
    .ok();
    writeln!(out, "  report written to {out_path}").ok();
    Ok(out)
}

fn lint(args: &ParsedArgs) -> Result<String, ArgError> {
    let root = match args.options.get("root") {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            // Prefer the invocation directory when it looks like a
            // workspace; fall back to this crate's own checkout so the
            // binary works from anywhere in CI.
            let cwd = std::env::current_dir().map_err(|e| ArgError(e.to_string()))?;
            if cwd.join("crates").is_dir() {
                cwd
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
            }
        }
    };
    let rules = args
        .options
        .get("rules")
        .map(|r| r.split(',').map(|s| s.trim().to_string()).collect());
    let cache = (args.str_or("no-cache", "false") != "true")
        .then(|| root.join("target").join("tbstc-lint.cache"));
    let opts = tbstc_lint::LintOptions {
        root: root.clone(),
        rules,
        baseline: None,
        cache: cache.clone(),
    };

    if args.str_or("cache-bench", "false") == "true" {
        // Cold run (cache file removed) vs warm run, in-process so the
        // comparison is immune to cargo/process startup noise. CI
        // asserts the warm run is >= --min-speedup x faster.
        let Some(cache_path) = &cache else {
            return Err(ArgError(
                "--cache-bench needs the cache; drop --no-cache".into(),
            ));
        };
        let _ = std::fs::remove_file(cache_path);
        let t0 = std::time::Instant::now();
        let cold = tbstc_lint::lint_workspace(&opts).map_err(ArgError)?;
        let cold_us = t0.elapsed().as_micros();
        let t1 = std::time::Instant::now();
        let warm = tbstc_lint::lint_workspace(&opts).map_err(ArgError)?;
        let warm_us = t1.elapsed().as_micros().max(1);
        let speedup = cold_us as f64 / warm_us as f64;
        let mut out = String::new();
        writeln!(out, "lint_cold_us {cold_us}").ok();
        writeln!(out, "lint_warm_us {warm_us}").ok();
        writeln!(out, "lint_cache_speedup {speedup:.2}").ok();
        writeln!(
            out,
            "warm cache: {} hits / {} misses over {} files",
            warm.cache_hits, warm.cache_misses, warm.files_scanned
        )
        .ok();
        if warm.cache_hits != warm.files_scanned {
            return Err(ArgError(format!(
                "{out}warm run was not fully cached ({} misses)",
                warm.cache_misses
            )));
        }
        let min = args.num_or("min-speedup", 0.0f64)?;
        if speedup < min {
            return Err(ArgError(format!(
                "{out}warm lint speedup {speedup:.2}x is below the required {min:.2}x"
            )));
        }
        drop(cold);
        return Ok(out);
    }

    let report = tbstc_lint::lint_workspace(&opts).map_err(ArgError)?;

    if args.str_or("update-baseline", "false") == "true" {
        let text = tbstc_lint::render_baseline(&report, &|rel| {
            std::fs::read_to_string(root.join(rel)).ok()
        });
        let path = root.join(tbstc_lint::BASELINE_FILE);
        std::fs::write(&path, text)
            .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
        return Ok(format!(
            "baseline rewritten: {} entries in {}\n",
            report.findings.len() + report.baselined.len(),
            path.display()
        ));
    }

    let deny = args.str_or("deny-warnings", "false") == "true";

    if args.str_or("fix", "false") == "true" {
        let baseline_path = root.join(tbstc_lint::BASELINE_FILE);
        let outcome = tbstc_lint::apply_fixes(&root, &report, &baseline_path).map_err(ArgError)?;
        let after = tbstc_lint::lint_workspace(&opts).map_err(ArgError)?;
        let mut out = format!(
            "lint --fix: {} suppression(s) inserted across {} file(s); {} stale baseline entr{} removed\n",
            outcome.suppressions_inserted,
            outcome.files_changed,
            outcome.stale_removed,
            if outcome.stale_removed == 1 { "y" } else { "ies" },
        );
        out.push_str(&tbstc_lint::render_human(&after, deny));
        if after.fails(deny) {
            return Err(ArgError(format!("\n{out}")));
        }
        return Ok(out);
    }

    let rendered = if args.str_or("sarif", "false") == "true" {
        tbstc_lint::render_sarif(&report)
    } else if args.str_or("json", "false") == "true" {
        tbstc_lint::render_json(&report)
    } else {
        tbstc_lint::render_human(&report, deny)
    };
    if report.fails(deny) {
        Err(ArgError(format!("\n{rendered}")))
    } else {
        Ok(rendered)
    }
}

fn table3() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<12} {:>10} {:>9} {:>10} {:>9}",
        "Component", "Area(mm2)", "Area%", "Power(mW)", "Power%"
    )
    .ok();
    for r in table3_rows() {
        writeln!(
            out,
            "{:<12} {:>10.2} {:>8.2}% {:>10.2} {:>8.2}%",
            r.component,
            r.area_mm2,
            r.area_share * 100.0,
            r.power_mw,
            r.power_share * 100.0
        )
        .ok();
    }
    let (added, frac) = a100_integration_overhead();
    writeln!(
        out,
        "A100 integration: +{added:.2} mm2 = {:.2}% of the die",
        frac * 100.0
    )
    .ok();
    out
}

fn models() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>8}",
        "model", "layers", "weights(M)", "GMACs"
    )
    .ok();
    for m in [
        resnet50(224),
        resnet18(224),
        bert_base(128),
        opt_6_7b(128),
        llama2_7b(128),
    ] {
        writeln!(
            out,
            "{:<12} {:>10} {:>12.1} {:>8.1}",
            m.kind.to_string(),
            m.layers.iter().map(|l| l.repeats).sum::<usize>(),
            m.total_weights() as f64 / 1e6,
            m.total_macs() as f64 / 1e9
        )
        .ok();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, ArgError> {
        run(&ParsedArgs::parse(line.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn prune_reports_sparsity_and_directions() {
        let out =
            run_line(&["prune", "--rows", "64", "--cols", "64", "--sparsity", "0.5"]).unwrap();
        assert!(out.contains("achieved sparsity"));
        assert!(out.contains("block directions"));
        assert!(out.contains("transposed pattern: valid"));
    }

    #[test]
    fn prune_rejects_bad_sparsity() {
        assert!(run_line(&["prune", "--sparsity", "1.5"]).is_err());
        assert!(run_line(&["prune", "--block", "6"]).is_err());
    }

    #[test]
    fn formats_lists_all_three() {
        let out = run_line(&["formats", "--rows", "64", "--cols", "64"]).unwrap();
        for f in ["DDC", "SDC", "CSR", "dense"] {
            assert!(out.contains(f), "missing {f}");
        }
    }

    #[test]
    fn simulate_small_model_runs() {
        let out = run_line(&["simulate", "--model", "bert", "--arch", "tb-stc"]).unwrap();
        assert!(out.contains("vs dense TC"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn simulate_rejects_unknowns() {
        assert!(run_line(&["simulate", "--model", "alexnet"]).is_err());
        assert!(run_line(&["simulate", "--arch", "tpu"]).is_err());
    }

    #[test]
    fn stray_positionals_are_rejected() {
        assert!(run_line(&["prune", "stray"]).is_err());
        assert!(run_line(&["simulate", "tb-stc"]).is_err());
    }

    #[test]
    fn archs_lists_the_registry() {
        let out = run_line(&["archs"]).unwrap();
        for name in [
            "tc",
            "stc",
            "vegeta",
            "highlight",
            "rm-stc",
            "tb-stc",
            "dvpe-fan",
            "sgcn",
        ] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
        let json = run_line(&["archs", "--json"]).unwrap();
        let v = tbstc::json::Json::parse(json.trim_end()).unwrap();
        let entries = v.get("archs").and_then(tbstc::json::Json::as_arr).unwrap();
        assert_eq!(entries.len(), tbstc::sim::REGISTRY.len());
        for (entry, m) in entries.iter().zip(tbstc::sim::REGISTRY) {
            assert_eq!(
                entry.get("name").and_then(tbstc::json::Json::as_str),
                Some(m.canonical_name())
            );
        }
    }

    #[test]
    fn arch_show_roundtrips_through_simulate() {
        let doc = run_line(&["arch", "show", "tb-stc"]).unwrap();
        let spec = tbstc::archspec::spec_from_json(doc.trim_end()).unwrap();
        assert_eq!(spec.name, "tb-stc");
        // Aliases resolve too.
        let via_alias = run_line(&["arch", "show", "tbstc"]).unwrap();
        assert_eq!(doc, via_alias);
        assert!(run_line(&["arch", "show", "tpu"]).is_err());
        assert!(run_line(&["arch"]).is_err());

        // The shown document is runnable via --arch-spec and produces
        // the same result body as the builtin it renders.
        let dir = std::env::temp_dir().join(format!("tbstc-cli-archspec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tb-stc.json");
        std::fs::write(&path, &doc).unwrap();
        let custom = run_line(&[
            "simulate",
            "--model",
            "gcn",
            "--arch-spec",
            path.to_str().unwrap(),
            "--sparsity",
            "0.5",
            "--json",
        ])
        .unwrap();
        let builtin = run_line(&[
            "simulate",
            "--model",
            "gcn",
            "--arch",
            "tb-stc",
            "--sparsity",
            "0.5",
            "--json",
        ])
        .unwrap();
        let cv = tbstc::json::Json::parse(custom.trim_end()).unwrap();
        let bv = tbstc::json::Json::parse(builtin.trim_end()).unwrap();
        assert_eq!(cv.get("result"), bv.get("result"), "spec ≡ native");
        assert_ne!(cv.get("job"), bv.get("job"));
        let _ = std::fs::remove_dir_all(&dir);

        // --arch and --arch-spec are mutually exclusive; a missing file
        // errors cleanly.
        assert!(run_line(&[
            "simulate",
            "--arch",
            "tc",
            "--arch-spec",
            "/no/such/spec.json"
        ])
        .is_err());
        assert!(run_line(&["simulate", "--arch-spec", "/no/such/spec.json"]).is_err());
    }

    #[test]
    fn sweep_reports_grid_and_verifies() {
        let out = run_line(&[
            "sweep",
            "--models",
            "gcn",
            "--archs",
            "tb-stc,stc",
            "--sparsities",
            "0.5,0.75",
            "--verify",
        ])
        .unwrap();
        assert!(
            out.contains("Sweep: 5 jobs"),
            "dense baseline + 2x2 grid: {out}"
        );
        assert!(out.contains("verify: serial rerun bit-identical"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn sweep_rejects_bad_lists() {
        assert!(run_line(&["sweep", "--models", "alexnet"]).is_err());
        assert!(run_line(&["sweep", "--archs", "tpu"]).is_err());
        assert!(run_line(&["sweep", "--sparsities", "1.5"]).is_err());
        assert!(run_line(&["sweep", "--sparsities", ","]).is_err());
    }

    #[test]
    fn table3_and_models_render() {
        assert!(run_line(&["table3"]).unwrap().contains("DVPE Array"));
        assert!(run_line(&["models"]).unwrap().contains("OPT-6.7B"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_line(&["frobnicate"]).is_err());
    }

    #[test]
    fn perf_writes_report_and_summary() {
        let path = std::env::temp_dir().join("tbstc_cli_perf_test.json");
        let path_str = path.to_str().unwrap().to_string();
        let out = run_line(&[
            "perf",
            "--iters",
            "1",
            "--seed",
            "1",
            "--loadgen-connections",
            "8",
            "--loadgen-requests",
            "64",
            "--out",
            &path_str,
        ])
        .unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("parallel GEMM bit-identical to serial: true"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"train_speedup\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn perf_rejects_zero_iters() {
        assert!(run_line(&["perf", "--iters", "0"]).is_err());
    }

    #[test]
    fn simulate_json_matches_the_server_schema() {
        let out = run_line(&[
            "simulate",
            "--model",
            "gcn",
            "--arch",
            "tb-stc",
            "--sparsity",
            "0.5",
            "--json",
        ])
        .unwrap();
        let v = tbstc::json::Json::parse(out.trim_end()).unwrap();
        assert_eq!(
            v.get("schema").and_then(tbstc::json::Json::as_str),
            Some(tbstc::jobspec::SCHEMA)
        );
        assert!(v.get("result").is_some());
        // Emitting the same job twice gives identical bytes.
        let again = run_line(&[
            "simulate",
            "--model",
            "gcn",
            "--arch",
            "tb-stc",
            "--sparsity",
            "0.5",
            "--json",
        ])
        .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn sweep_json_lists_every_grid_point() {
        let out = run_line(&[
            "sweep",
            "--models",
            "gcn",
            "--archs",
            "tb-stc,stc",
            "--sparsities",
            "0.5",
            "--json",
        ])
        .unwrap();
        let v = tbstc::json::Json::parse(out.trim_end()).unwrap();
        let results = v
            .get("results")
            .and_then(tbstc::json::Json::as_arr)
            .unwrap();
        assert_eq!(results.len(), 2, "2 archs x 1 model x 1 sparsity");
    }

    #[test]
    fn oneshot_serves_cached_second_submission() {
        let dir = std::env::temp_dir().join(format!("tbstc-cli-oneshot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let job = dir.join("job.json");
        std::fs::write(
            &job,
            r#"{"type":"simulate","arch":"tb-stc",
                "model":{"kind":"gcn","nodes":64,"features":16},"sparsity":0.5}"#,
        )
        .unwrap();
        let cache = dir.join("cache");
        let out = run_line(&[
            "serve",
            "--oneshot",
            "--job",
            job.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--quiet",
        ])
        .unwrap();
        assert!(
            out.contains("oneshot cache check: byte-identical hit"),
            "{out}"
        );
        assert!(
            out.contains("tbstc_requests_total{endpoint=\"jobs\"} 2"),
            "{out}"
        );
        // The second submission is served by the in-memory hot tier
        // sitting above the disk store.
        assert!(
            out.contains("tbstc_cache_hits_total{tier=\"mem\"} 1"),
            "{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loadgen_self_hosts_and_enforces_floors() {
        let out = run_line(&[
            "loadgen",
            "--connections",
            "4",
            "--requests",
            "32",
            "--specs",
            "2",
            "--seed",
            "1",
        ])
        .unwrap();
        assert!(out.contains("completed 32 / failed 0"), "{out}");
        assert!(out.contains("p999"), "{out}");

        // An absurd rps floor turns the same clean run into a failure.
        let err = run_line(&[
            "loadgen",
            "--connections",
            "4",
            "--requests",
            "32",
            "--specs",
            "2",
            "--seed",
            "1",
            "--min-rps",
            "1000000000",
        ]);
        assert!(err.is_err(), "min-rps floor must fail the run");

        // JSON mode emits the machine-readable report.
        let json = run_line(&[
            "loadgen",
            "--connections",
            "2",
            "--requests",
            "8",
            "--specs",
            "2",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"p999_us\""), "{json}");
        assert!(json.contains("\"failed\": 0"), "{json}");
    }

    #[test]
    fn loadgen_rejects_zero_knobs() {
        assert!(run_line(&["loadgen", "--connections", "0"]).is_err());
        assert!(run_line(&["loadgen", "--requests", "0"]).is_err());
    }

    #[test]
    fn submit_requires_a_job_file() {
        assert!(run_line(&["submit"]).is_err());
        assert!(run_line(&["submit", "--job", "/no/such/file.json"]).is_err());
    }

    #[test]
    fn jobs_rejects_bad_subcommands() {
        let err = run_line(&["jobs", "bogus"]).unwrap_err();
        assert!(err.0.contains("usage"), "got: {}", err.0);
        // `status`/`cancel`/`resume` all need a key.
        assert!(run_line(&["jobs", "status"]).is_err());
        assert!(run_line(&["jobs", "cancel"]).is_err());
        assert!(run_line(&["jobs", "resume"]).is_err());
        // Extra positionals are rejected, not silently ignored.
        assert!(run_line(&["jobs", "list", "extra", "junk"]).is_err());
    }

    #[test]
    fn serve_config_parses_durable_options() {
        let args = ParsedArgs::parse(
            [
                "serve",
                "--chunk-size",
                "4",
                "--long-job-points",
                "2",
                "--chunk-hold-ms",
                "5",
            ]
            .iter()
            .map(ToString::to_string),
        )
        .unwrap();
        let cfg = serve_config(&args).unwrap();
        assert_eq!(cfg.chunk_size, 4);
        assert_eq!(cfg.long_job_points, 2);
        assert_eq!(cfg.chunk_hold_ms, 5);
        let bad = ParsedArgs::parse(
            ["serve", "--chunk-size", "0"]
                .iter()
                .map(ToString::to_string),
        )
        .unwrap();
        assert!(serve_config(&bad).is_err(), "chunk size 0 must be rejected");
    }
}
