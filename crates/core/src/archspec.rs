//! Canonical-JSON serialization for [`ArchSpec`] documents.
//!
//! A `tbstc.v1` arch-spec document describes an accelerator as data:
//! pattern constraint, dataflow slot terms, codec, lanes, bandwidth and
//! energy multipliers. [`spec_from_json`] parses and validates one
//! (rejecting unknown fields with the offending field path);
//! [`spec_to_value`] renders the canonical document back. Round-trips
//! are byte-identical: `spec_to_value(spec).to_string()` is a fixed
//! point of parse→render. Every registry builtin ships as a bundled
//! document (see [`bundled`]) pinned by the `spec_parity` tests to
//! interpret bit-identically to its native module.

use std::collections::BTreeMap;

use tbstc_sim::compute::SchedulePolicy;
use tbstc_sim::sched::{InterBlockPolicy, IntraBlockPolicy};
use tbstc_sim::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm};
use tbstc_sparsity::PatternKind;

use crate::error::Error;
use crate::json::Json;

/// The schema tag every arch-spec document carries.
pub const SCHEMA: &str = "tbstc.v1";

fn err(path: &str, msg: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("arch_spec.{path}: {msg}"))
}

fn pattern_name(p: PatternKind) -> &'static str {
    match p {
        PatternKind::Dense => "dense",
        PatternKind::Unstructured => "unstructured",
        PatternKind::TileNm => "tile-nm",
        PatternKind::RowWiseVegeta => "row-wise-vegeta",
        PatternKind::RowWiseHighlight => "row-wise-highlight",
        PatternKind::Tbs => "tbs",
    }
}

fn pattern_from(s: &str) -> Option<PatternKind> {
    Some(match s {
        "dense" => PatternKind::Dense,
        "unstructured" => PatternKind::Unstructured,
        "tile-nm" => PatternKind::TileNm,
        "row-wise-vegeta" => PatternKind::RowWiseVegeta,
        "row-wise-highlight" => PatternKind::RowWiseHighlight,
        "tbs" => PatternKind::Tbs,
        _ => return None,
    })
}

fn datapath_name(d: DatapathKind) -> &'static str {
    match d {
        DatapathKind::TensorCore => "tensor-core",
        DatapathKind::NvidiaStc => "nvidia-stc",
        DatapathKind::Vegeta => "vegeta",
        DatapathKind::Highlight => "highlight",
        DatapathKind::RmStc => "rm-stc",
        DatapathKind::TbStc => "tb-stc",
        DatapathKind::DvpeWithFan => "dvpe-with-fan",
        DatapathKind::Sgcn => "sgcn",
    }
}

fn datapath_from(s: &str) -> Option<DatapathKind> {
    Some(match s {
        "tensor-core" => DatapathKind::TensorCore,
        "nvidia-stc" => DatapathKind::NvidiaStc,
        "vegeta" => DatapathKind::Vegeta,
        "highlight" => DatapathKind::Highlight,
        "rm-stc" => DatapathKind::RmStc,
        "tb-stc" => DatapathKind::TbStc,
        "dvpe-with-fan" => DatapathKind::DvpeWithFan,
        "sgcn" => DatapathKind::Sgcn,
        _ => return None,
    })
}

fn dense_info_name(p: DenseInfoPolicy) -> &'static str {
    match p {
        DenseInfoPolicy::Never => "never",
        DenseInfoPolicy::Always => "always",
        DenseInfoPolicy::NonTbsNative => "non-tbs-native",
    }
}

fn term_to_value(t: SlotTerm) -> Json {
    match t {
        SlotTerm::Dense => Json::str("dense"),
        SlotTerm::Nnz => Json::str("nnz"),
        SlotTerm::Lockstep { group } => Json::obj([("lockstep", Json::Int(group as i64))]),
        SlotTerm::RatioGrouped { width } => Json::obj([("ratio-grouped", Json::Int(width as i64))]),
    }
}

fn term_from_value(v: &Json, path: &str) -> Result<SlotTerm, Error> {
    if let Some(s) = v.as_str() {
        return match s {
            "dense" => Ok(SlotTerm::Dense),
            "nnz" => Ok(SlotTerm::Nnz),
            other => Err(err(
                path,
                format!("unknown term `{other}` (expected `dense`, `nnz`, or an object)"),
            )),
        };
    }
    let Some(m) = v.as_obj() else {
        return Err(err(path, "must be a string or a one-key object"));
    };
    let mut entries = m.iter();
    let (Some((k, inner)), None) = (entries.next(), entries.next()) else {
        return Err(err(
            path,
            "must have exactly one key (`lockstep` or `ratio-grouped`)",
        ));
    };
    let n = inner
        .as_usize()
        .ok_or_else(|| err(&format!("{path}.{k}"), "must be a positive integer"))?;
    match k.as_str() {
        "lockstep" => Ok(SlotTerm::Lockstep { group: n }),
        "ratio-grouped" => Ok(SlotTerm::RatioGrouped { width: n }),
        other => Err(err(path, format!("unknown term key `{other}`"))),
    }
}

fn codec_to_value(c: CodecSpec) -> Json {
    let (kind, group) = match c {
        CodecSpec::DenseRows => ("dense-rows", None),
        CodecSpec::AlignedNm => ("aligned-nm", None),
        CodecSpec::GroupedSdc { group } => ("grouped-sdc", Some(group)),
        CodecSpec::Sdc => ("sdc", None),
        CodecSpec::Bitmap => ("bitmap", None),
        CodecSpec::DdcOrDense => ("ddc-or-dense", None),
        CodecSpec::Csr => ("csr", None),
    };
    let mut pairs = vec![("kind", Json::str(kind))];
    if let Some(g) = group {
        pairs.push(("group", Json::Int(g as i64)));
    }
    Json::obj(pairs)
}

/// Checks an object's keys against the allowed set, naming the first
/// stranger with its full field path.
fn reject_unknown(m: &BTreeMap<String, Json>, allowed: &[&str], path: &str) -> Result<(), Error> {
    for key in m.keys() {
        if !allowed.contains(&key.as_str()) {
            let full = if path.is_empty() {
                key.clone()
            } else {
                format!("{path}.{key}")
            };
            return Err(err(&full, "unknown field"));
        }
    }
    Ok(())
}

fn get_str<'a>(m: &'a BTreeMap<String, Json>, key: &str, path: &str) -> Result<&'a str, Error> {
    m.get(key)
        .ok_or_else(|| err(&format!("{path}{key}"), "missing required field"))?
        .as_str()
        .ok_or_else(|| err(&format!("{path}{key}"), "must be a string"))
}

fn get_bool(m: &BTreeMap<String, Json>, key: &str, path: &str) -> Result<bool, Error> {
    m.get(key)
        .ok_or_else(|| err(&format!("{path}{key}"), "missing required field"))?
        .as_bool()
        .ok_or_else(|| err(&format!("{path}{key}"), "must be a boolean"))
}

fn get_num(m: &BTreeMap<String, Json>, key: &str, path: &str) -> Result<f64, Error> {
    m.get(key)
        .ok_or_else(|| err(&format!("{path}{key}"), "missing required field"))?
        .as_f64()
        .ok_or_else(|| err(&format!("{path}{key}"), "must be a number"))
}

/// Renders a spec as its canonical `tbstc.v1` document.
pub fn spec_to_value(spec: &ArchSpec) -> Json {
    let mut pairs = vec![
        ("schema", Json::str(SCHEMA)),
        ("name", Json::str(spec.name.clone())),
        ("display", Json::str(spec.display.clone())),
        ("summary", Json::str(spec.summary.clone())),
        ("pattern", Json::str(pattern_name(spec.pattern))),
        (
            "schedule",
            Json::obj([
                (
                    "inter",
                    Json::str(match spec.schedule.inter {
                        InterBlockPolicy::Direct => "direct",
                        InterBlockPolicy::SparsityAware => "sparsity-aware",
                    }),
                ),
                (
                    "intra",
                    Json::str(match spec.schedule.intra {
                        IntraBlockPolicy::Naive => "naive",
                        IntraBlockPolicy::Balanced => "balanced",
                    }),
                ),
            ]),
        ),
        (
            "hierarchical_scheduling",
            Json::Bool(spec.hierarchical_scheduling),
        ),
        (
            "dataflow",
            Json::obj([
                (
                    "terms",
                    Json::Arr(
                        spec.dataflow
                            .terms
                            .iter()
                            .map(|&t| term_to_value(t))
                            .collect(),
                    ),
                ),
                ("multiplier", Json::Num(spec.dataflow.multiplier)),
                ("efficiency", Json::Num(spec.dataflow.efficiency)),
            ]),
        ),
        ("row_frontend", Json::Bool(spec.row_frontend)),
        ("codec", codec_to_value(spec.codec)),
        ("dense_info", Json::str(dense_info_name(spec.dense_info))),
        ("consumes_ddc", Json::Bool(spec.consumes_ddc)),
        ("datapath", Json::str(datapath_name(spec.datapath))),
        (
            "mac_energy_multiplier",
            Json::Num(spec.mac_energy_multiplier),
        ),
    ];
    if let Some(bw) = spec.bandwidth_gbps {
        pairs.push(("bandwidth_gbps", Json::Num(bw)));
    }
    if let Some(lanes) = spec.lanes {
        pairs.push(("lanes", Json::Int(lanes as i64)));
    }
    Json::obj(pairs)
}

/// Parses and validates a `tbstc.v1` arch-spec document.
///
/// # Errors
///
/// Returns [`Error::InvalidSpec`] with an `arch_spec.<field path>`
/// message on a missing/mistyped/unknown field, a bad enum string, or a
/// semantic violation caught by [`ArchSpec::validate`].
pub fn spec_from_value(v: &Json) -> Result<ArchSpec, Error> {
    let m = v
        .as_obj()
        .ok_or_else(|| Error::InvalidSpec("arch_spec: must be an object".into()))?;
    reject_unknown(
        m,
        &[
            "schema",
            "name",
            "display",
            "summary",
            "pattern",
            "schedule",
            "hierarchical_scheduling",
            "dataflow",
            "row_frontend",
            "codec",
            "dense_info",
            "consumes_ddc",
            "bandwidth_gbps",
            "lanes",
            "datapath",
            "mac_energy_multiplier",
        ],
        "",
    )?;
    if let Some(schema) = m.get("schema") {
        let s = schema
            .as_str()
            .ok_or_else(|| err("schema", "must be a string"))?;
        if s != SCHEMA {
            return Err(err(
                "schema",
                format!("unsupported schema `{s}` (expected `{SCHEMA}`)"),
            ));
        }
    }

    let pattern_str = get_str(m, "pattern", "")?;
    let pattern = pattern_from(pattern_str)
        .ok_or_else(|| err("pattern", format!("unknown pattern `{pattern_str}`")))?;

    let sched = m
        .get("schedule")
        .ok_or_else(|| err("schedule", "missing required field"))?
        .as_obj()
        .ok_or_else(|| err("schedule", "must be an object"))?;
    reject_unknown(sched, &["inter", "intra"], "schedule")?;
    let inter = match get_str(sched, "inter", "schedule.")? {
        "direct" => InterBlockPolicy::Direct,
        "sparsity-aware" => InterBlockPolicy::SparsityAware,
        other => return Err(err("schedule.inter", format!("unknown policy `{other}`"))),
    };
    let intra = match get_str(sched, "intra", "schedule.")? {
        "naive" => IntraBlockPolicy::Naive,
        "balanced" => IntraBlockPolicy::Balanced,
        other => return Err(err("schedule.intra", format!("unknown policy `{other}`"))),
    };

    let df = m
        .get("dataflow")
        .ok_or_else(|| err("dataflow", "missing required field"))?
        .as_obj()
        .ok_or_else(|| err("dataflow", "must be an object"))?;
    reject_unknown(df, &["terms", "multiplier", "efficiency"], "dataflow")?;
    let terms_v = df
        .get("terms")
        .ok_or_else(|| err("dataflow.terms", "missing required field"))?
        .as_arr()
        .ok_or_else(|| err("dataflow.terms", "must be an array"))?;
    let mut terms = Vec::with_capacity(terms_v.len());
    for (i, t) in terms_v.iter().enumerate() {
        terms.push(term_from_value(t, &format!("dataflow.terms[{i}]"))?);
    }
    let dataflow = Dataflow {
        terms,
        multiplier: get_num(df, "multiplier", "dataflow.")?,
        efficiency: get_num(df, "efficiency", "dataflow.")?,
    };

    let codec_m = m
        .get("codec")
        .ok_or_else(|| err("codec", "missing required field"))?
        .as_obj()
        .ok_or_else(|| err("codec", "must be an object"))?;
    reject_unknown(codec_m, &["kind", "group"], "codec")?;
    let kind = get_str(codec_m, "kind", "codec.")?;
    let codec = match kind {
        "grouped-sdc" => {
            let group = codec_m
                .get("group")
                .ok_or_else(|| err("codec.group", "missing required field"))?
                .as_usize()
                .ok_or_else(|| err("codec.group", "must be a positive integer"))?;
            CodecSpec::GroupedSdc { group }
        }
        _ => {
            if codec_m.contains_key("group") {
                return Err(err(
                    "codec.group",
                    format!("only valid for kind `grouped-sdc`, not `{kind}`"),
                ));
            }
            match kind {
                "dense-rows" => CodecSpec::DenseRows,
                "aligned-nm" => CodecSpec::AlignedNm,
                "sdc" => CodecSpec::Sdc,
                "bitmap" => CodecSpec::Bitmap,
                "ddc-or-dense" => CodecSpec::DdcOrDense,
                "csr" => CodecSpec::Csr,
                other => return Err(err("codec.kind", format!("unknown codec `{other}`"))),
            }
        }
    };

    let dense_info = match get_str(m, "dense_info", "")? {
        "never" => DenseInfoPolicy::Never,
        "always" => DenseInfoPolicy::Always,
        "non-tbs-native" => DenseInfoPolicy::NonTbsNative,
        other => return Err(err("dense_info", format!("unknown policy `{other}`"))),
    };

    let datapath_str = get_str(m, "datapath", "")?;
    let datapath = datapath_from(datapath_str)
        .ok_or_else(|| err("datapath", format!("unknown datapath `{datapath_str}`")))?;

    let bandwidth_gbps = match m.get("bandwidth_gbps") {
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| err("bandwidth_gbps", "must be a number"))?,
        ),
        None => None,
    };
    let lanes = match m.get("lanes") {
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| err("lanes", "must be a positive integer"))?,
        ),
        None => None,
    };

    let spec = ArchSpec {
        name: get_str(m, "name", "")?.to_string(),
        display: get_str(m, "display", "")?.to_string(),
        summary: get_str(m, "summary", "")?.to_string(),
        pattern,
        schedule: SchedulePolicy { inter, intra },
        hierarchical_scheduling: get_bool(m, "hierarchical_scheduling", "")?,
        dataflow,
        row_frontend: get_bool(m, "row_frontend", "")?,
        codec,
        dense_info,
        consumes_ddc: get_bool(m, "consumes_ddc", "")?,
        bandwidth_gbps,
        lanes,
        datapath,
        mac_energy_multiplier: get_num(m, "mac_energy_multiplier", "")?,
    };
    spec.validate().map_err(err_raw)?;
    Ok(spec)
}

fn err_raw(msg: String) -> Error {
    Error::InvalidSpec(format!("arch_spec.{msg}"))
}

/// Parses a `tbstc.v1` arch-spec document from JSON text.
///
/// # Errors
///
/// [`Error::Parse`] on malformed JSON, [`Error::InvalidSpec`] on a
/// document that fails validation (see [`spec_from_value`]).
pub fn spec_from_json(text: &str) -> Result<ArchSpec, Error> {
    spec_from_value(&Json::parse(text)?)
}

/// The bundled spec documents for the eight registry builtins, as
/// `(canonical name, canonical JSON text)` pairs in registry order.
///
/// The `spec_parity` suite pins each text to byte-equal the rendering of
/// the builtin's [`tbstc_sim::ArchModel::spec`] and to interpret
/// bit-identically to the native module.
pub fn bundled() -> [(&'static str, &'static str); 8] {
    [
        ("tc", include_str!("../specs/tc.json")),
        ("stc", include_str!("../specs/stc.json")),
        ("vegeta", include_str!("../specs/vegeta.json")),
        ("highlight", include_str!("../specs/highlight.json")),
        ("rm-stc", include_str!("../specs/rm-stc.json")),
        ("tb-stc", include_str!("../specs/tb-stc.json")),
        ("dvpe-fan", include_str!("../specs/dvpe-fan.json")),
        ("sgcn", include_str!("../specs/sgcn.json")),
    ]
}

/// Looks up a bundled builtin spec document by canonical name.
pub fn bundled_text(name: &str) -> Option<&'static str> {
    bundled()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, text)| text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_sim::{Arch, REGISTRY};

    #[test]
    fn builtin_specs_roundtrip_byte_identically() {
        for model in REGISTRY {
            let spec = model.spec();
            let text = spec_to_value(&spec).to_string();
            let back =
                spec_from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", model.canonical_name()));
            assert_eq!(back, spec, "{}", model.canonical_name());
            assert_eq!(
                spec_to_value(&back).to_string(),
                text,
                "{}",
                model.canonical_name()
            );
        }
    }

    #[test]
    fn unknown_fields_are_named() {
        let mut v = spec_to_value(&Arch::TbStc.model().spec());
        if let Json::Obj(m) = &mut v {
            m.insert("warp_size".into(), Json::Int(32));
        }
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.warp_size"), "{e}");

        let mut v = spec_to_value(&Arch::TbStc.model().spec());
        if let Json::Obj(m) = &mut v {
            if let Some(Json::Obj(df)) = m.get_mut("dataflow") {
                df.insert("depth".into(), Json::Int(3));
            }
        }
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.dataflow.depth"), "{e}");
    }

    #[test]
    fn missing_and_mistyped_fields_are_named() {
        let base = spec_to_value(&Arch::Vegeta.model().spec());
        let mut v = base.clone();
        if let Json::Obj(m) = &mut v {
            m.remove("pattern");
        }
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.pattern"), "{e}");

        let mut v = base.clone();
        if let Json::Obj(m) = &mut v {
            m.insert("lanes".into(), Json::str("many"));
        }
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.lanes"), "{e}");

        let mut v = base;
        if let Json::Obj(m) = &mut v {
            m.insert("schema".into(), Json::str("tbstc.v2"));
        }
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.schema"), "{e}");
    }

    #[test]
    fn semantic_violations_carry_the_prefix() {
        let mut spec = Arch::TbStc.model().spec();
        spec.name = "Bad Name".into();
        let v = spec_to_value(&spec);
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.name"), "{e}");
    }

    #[test]
    fn codec_group_rules() {
        let mut v = spec_to_value(&Arch::TbStc.model().spec());
        if let Json::Obj(m) = &mut v {
            m.insert(
                "codec".into(),
                Json::obj([("kind", Json::str("sdc")), ("group", Json::Int(4))]),
            );
        }
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.codec.group"), "{e}");

        if let Json::Obj(m) = &mut v {
            m.insert(
                "codec".into(),
                Json::obj([("kind", Json::str("grouped-sdc"))]),
            );
        }
        let e = spec_from_value(&v).unwrap_err().to_string();
        assert!(e.contains("arch_spec.codec.group"), "{e}");
    }

    #[test]
    fn bundled_covers_the_registry_in_order() {
        let names: Vec<&str> = bundled().iter().map(|&(n, _)| n).collect();
        let registry: Vec<&str> = REGISTRY.iter().map(|m| m.canonical_name()).collect();
        assert_eq!(names, registry);
        assert_eq!(bundled_text("tb-stc"), Some(bundled()[5].1));
        assert_eq!(bundled_text("nope"), None);
    }
}
