//! Cross-cutting experiment helpers: accuracy-vs-sparsity curves,
//! iso-accuracy sparsity selection (the Fig. 13 protocol) and Pareto
//! frontiers (Fig. 1).

use tbstc_sparsity::PatternKind;
use tbstc_train::sparse::{SparseTrainer, TrainConfig};
use tbstc_train::Dataset;

/// An accuracy-vs-sparsity curve for one pattern on one task.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCurve {
    /// The pattern measured.
    pub pattern: PatternKind,
    /// `(sparsity, accuracy)` points, sorted by sparsity ascending.
    pub points: Vec<(f64, f64)>,
}

impl AccuracyCurve {
    /// Measures the curve by sparse-training at each sparsity in
    /// `sparsities` (each run uses the same seed and epoch budget, the
    /// Table I protocol). `base` supplies the network shape, epochs and
    /// seed; its pattern and sparsity fields are overridden per point.
    pub fn measure(
        data: &Dataset,
        pattern: PatternKind,
        sparsities: &[f64],
        base: &TrainConfig,
    ) -> Self {
        let mut points: Vec<(f64, f64)> = sparsities
            .iter()
            .map(|&s| {
                let mut cfg = base.clone();
                cfg.pattern = pattern;
                cfg.sparsity = s;
                let rec = SparseTrainer::new(cfg).train(data);
                (s, rec.test_accuracy)
            })
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        AccuracyCurve { pattern, points }
    }

    /// Accuracy at `sparsity` by linear interpolation (clamped to the
    /// measured range).
    ///
    /// # Panics
    ///
    /// Panics when the curve is empty.
    pub fn accuracy_at(&self, sparsity: f64) -> f64 {
        assert!(!self.points.is_empty(), "empty curve");
        let pts = &self.points;
        if sparsity <= pts[0].0 {
            return pts[0].1;
        }
        if sparsity >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            if sparsity >= w[0].0 && sparsity <= w[1].0 {
                let t = (sparsity - w[0].0) / (w[1].0 - w[0].0).max(1e-12);
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        pts[pts.len() - 1].1
    }

    /// The highest sparsity whose (interpolated) accuracy still meets
    /// `target` — the iso-accuracy operating point of the Fig. 13
    /// protocol ("the end-to-end evaluation keeps the same accuracy for
    /// all works"). Returns 0.0 when even dense misses the target.
    ///
    /// # Panics
    ///
    /// Panics when the curve is empty.
    pub fn max_sparsity_at_accuracy(&self, target: f64) -> f64 {
        assert!(!self.points.is_empty(), "empty curve");
        // Scan a fine grid downwards; curves are noisy, not monotone.
        let max_s = self.points.last().unwrap().0;
        let mut s = max_s;
        while s > 0.0 {
            if self.accuracy_at(s) >= target {
                return s;
            }
            s -= 0.01;
        }
        0.0
    }
}

/// A point on the accuracy–EDP plane (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Label of the architecture/configuration.
    pub arch: tbstc_sim::Arch,
    /// Normalized EDP (lower is better).
    pub edp: f64,
    /// Model accuracy (higher is better).
    pub accuracy: f64,
}

/// Marks which points lie on the Pareto frontier (no other point has both
/// lower EDP and higher-or-equal accuracy).
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                (q.edp < p.edp && q.accuracy >= p.accuracy)
                    || (q.edp <= p.edp && q.accuracy > p.accuracy)
            })
        })
        .collect()
}

/// Geometric mean of a slice of positive ratios (the paper averages
/// speedups/EDP gains across workloads).
///
/// Returns 1.0 for an empty slice.
///
/// # Panics
///
/// Panics when any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positives");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_sim::Arch;

    fn curve(points: Vec<(f64, f64)>) -> AccuracyCurve {
        AccuracyCurve {
            pattern: PatternKind::Tbs,
            points,
        }
    }

    #[test]
    fn interpolation_between_points() {
        let c = curve(vec![(0.0, 0.9), (0.5, 0.8), (1.0, 0.2)]);
        assert!((c.accuracy_at(0.25) - 0.85).abs() < 1e-12);
        assert_eq!(c.accuracy_at(-1.0), 0.9);
        assert_eq!(c.accuracy_at(2.0), 0.2);
    }

    #[test]
    fn iso_accuracy_selection() {
        let c = curve(vec![(0.0, 0.9), (0.5, 0.85), (0.75, 0.7), (0.9, 0.5)]);
        let s = c.max_sparsity_at_accuracy(0.8);
        assert!((0.5..0.75).contains(&s), "{s}");
        // Unreachable accuracy -> sparsity 0.
        assert_eq!(c.max_sparsity_at_accuracy(0.99), 0.0);
    }

    #[test]
    fn pareto_marks_dominated_points() {
        let pts = vec![
            ParetoPoint { arch: Arch::TbStc, edp: 1.0, accuracy: 0.9 },
            ParetoPoint { arch: Arch::Stc, edp: 2.0, accuracy: 0.85 }, // dominated
            ParetoPoint { arch: Arch::RmStc, edp: 0.5, accuracy: 0.8 },
            ParetoPoint { arch: Arch::Tc, edp: 3.0, accuracy: 0.95 },
        ];
        let front = pareto_frontier(&pts);
        assert_eq!(front, vec![true, false, true, true]);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geomean needs positives")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
