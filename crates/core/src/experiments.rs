//! Cross-cutting experiment helpers: accuracy-vs-sparsity curves,
//! iso-accuracy sparsity selection (the Fig. 13 protocol) and Pareto
//! frontiers (Fig. 1).

use tbstc_runner::Runner;
use tbstc_sparsity::PatternKind;
use tbstc_train::sparse::{SparseTrainer, TrainConfig};
use tbstc_train::Dataset;

use crate::error::Error;

/// An accuracy-vs-sparsity curve for one pattern on one task.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCurve {
    /// The pattern measured.
    pub pattern: PatternKind,
    /// `(sparsity, accuracy)` points, sorted by sparsity ascending.
    pub points: Vec<(f64, f64)>,
}

impl AccuracyCurve {
    /// Measures the curve by sparse-training at each sparsity in
    /// `sparsities` (each run uses the same seed and epoch budget, the
    /// Table I protocol). `base` supplies the network shape, epochs and
    /// seed; its pattern and sparsity fields are overridden per point.
    ///
    /// Training points run on the default parallel [`Runner`]; use
    /// [`AccuracyCurve::measure_with`] to control scheduling.
    pub fn measure(
        data: &Dataset,
        pattern: PatternKind,
        sparsities: &[f64],
        base: &TrainConfig,
    ) -> Self {
        Self::measure_with(&Runner::new(), data, pattern, sparsities, base)
    }

    /// [`AccuracyCurve::measure`] on an explicit runner. Each point owns
    /// its full training config (same seed, different sparsity), so the
    /// curve is bit-identical for any worker count.
    pub fn measure_with(
        runner: &Runner,
        data: &Dataset,
        pattern: PatternKind,
        sparsities: &[f64],
        base: &TrainConfig,
    ) -> Self {
        let report = runner.run(sparsities, |&s| {
            let mut cfg = base.clone();
            cfg.pattern = pattern;
            cfg.sparsity = s;
            let rec = SparseTrainer::new(cfg).train(data);
            (s, rec.test_accuracy)
        });
        let mut points = report.results;
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        AccuracyCurve { pattern, points }
    }

    /// Accuracy at `sparsity` by linear interpolation (clamped to the
    /// measured range).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyCurve`] when the curve has no points.
    pub fn accuracy_at(&self, sparsity: f64) -> Result<f64, Error> {
        if self.points.is_empty() {
            return Err(Error::EmptyCurve);
        }
        Ok(self.interp(sparsity))
    }

    /// Interpolation body shared by the accessors (curve known non-empty).
    fn interp(&self, sparsity: f64) -> f64 {
        let pts = &self.points;
        if sparsity <= pts[0].0 {
            return pts[0].1;
        }
        if sparsity >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            if sparsity >= w[0].0 && sparsity <= w[1].0 {
                let t = (sparsity - w[0].0) / (w[1].0 - w[0].0).max(1e-12);
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        pts[pts.len() - 1].1
    }

    /// The highest sparsity whose (interpolated) accuracy still meets
    /// `target` — the iso-accuracy operating point of the Fig. 13
    /// protocol ("the end-to-end evaluation keeps the same accuracy for
    /// all works"). Returns 0.0 when even dense misses the target.
    ///
    /// Walks the measured segments from the sparsest end and bisects the
    /// first segment that straddles `target`, so the answer sits on the
    /// interpolated curve itself (the previous fixed-step scan both
    /// over-shot between grid points and drifted below 0 when no point
    /// qualified).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyCurve`] when the curve has no points.
    pub fn max_sparsity_at_accuracy(&self, target: f64) -> Result<f64, Error> {
        if self.points.is_empty() {
            return Err(Error::EmptyCurve);
        }
        let pts = &self.points;
        if pts[pts.len() - 1].1 >= target {
            return Ok(pts[pts.len() - 1].0);
        }
        // Curves are noisy, not monotone: scan segments right-to-left for
        // the first one whose left end still meets the target (its right
        // end cannot — everything further right already failed).
        for w in pts.windows(2).rev() {
            let (left, right) = (w[0], w[1]);
            if left.1 < target {
                continue;
            }
            // Bisect [left.0, right.0]: `lo` always meets the target,
            // `hi` never does. Converges to f64 resolution.
            let (mut lo, mut hi) = (left.0, right.0);
            for _ in 0..64 {
                let mid = 0.5 * (lo + hi);
                if self.interp(mid) >= target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            return Ok(lo);
        }
        Ok(0.0)
    }
}

/// A point on the accuracy–EDP plane (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Label of the architecture/configuration.
    pub arch: tbstc_sim::Arch,
    /// Normalized EDP (lower is better).
    pub edp: f64,
    /// Model accuracy (higher is better).
    pub accuracy: f64,
}

/// Marks which points lie on the Pareto frontier (no other point has both
/// lower EDP and higher-or-equal accuracy).
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                (q.edp < p.edp && q.accuracy >= p.accuracy)
                    || (q.edp <= p.edp && q.accuracy > p.accuracy)
            })
        })
        .collect()
}

/// Geometric mean of a slice of positive ratios (the paper averages
/// speedups/EDP gains across workloads).
///
/// Returns 1.0 for an empty slice.
///
/// # Errors
///
/// [`Error::NonPositive`] when any value is not strictly positive (the
/// geometric mean of ratios is undefined there).
pub fn geomean(values: &[f64]) -> Result<f64, Error> {
    if values.is_empty() {
        return Ok(1.0);
    }
    if let Some(&value) = values.iter().find(|&&v| v.is_nan() || v <= 0.0) {
        return Err(Error::NonPositive { value });
    }
    Ok((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_sim::Arch;

    fn curve(points: Vec<(f64, f64)>) -> AccuracyCurve {
        AccuracyCurve {
            pattern: PatternKind::Tbs,
            points,
        }
    }

    #[test]
    fn interpolation_between_points() {
        let c = curve(vec![(0.0, 0.9), (0.5, 0.8), (1.0, 0.2)]);
        assert!((c.accuracy_at(0.25).unwrap() - 0.85).abs() < 1e-12);
        assert_eq!(c.accuracy_at(-1.0).unwrap(), 0.9);
        assert_eq!(c.accuracy_at(2.0).unwrap(), 0.2);
    }

    #[test]
    fn empty_curve_reports_error() {
        let c = curve(vec![]);
        assert_eq!(c.accuracy_at(0.5), Err(Error::EmptyCurve));
        assert_eq!(c.max_sparsity_at_accuracy(0.9), Err(Error::EmptyCurve));
    }

    #[test]
    fn iso_accuracy_selection() {
        let c = curve(vec![(0.0, 0.9), (0.5, 0.85), (0.75, 0.7), (0.9, 0.5)]);
        let s = c.max_sparsity_at_accuracy(0.8).unwrap();
        assert!((0.5..0.75).contains(&s), "{s}");
        // Unreachable accuracy -> sparsity 0.
        assert_eq!(c.max_sparsity_at_accuracy(0.99).unwrap(), 0.0);
    }

    #[test]
    fn iso_accuracy_lands_on_the_interpolated_crossing() {
        // Segment (0.5, 0.85) -> (0.75, 0.7) crosses 0.8 exactly at
        // s = 0.5 + (0.85 - 0.8) / (0.85 - 0.7) * 0.25 = 0.58333…
        let c = curve(vec![(0.0, 0.9), (0.5, 0.85), (0.75, 0.7)]);
        let s = c.max_sparsity_at_accuracy(0.8).unwrap();
        assert!((s - (0.5 + 0.05 / 0.15 * 0.25)).abs() < 1e-9, "{s}");
        assert!((c.accuracy_at(s).unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn iso_accuracy_saturates_at_the_sparsest_point() {
        // The sparsest measured point still meets the target: answer is
        // that point, never beyond the measured range.
        let c = curve(vec![(0.0, 0.9), (0.5, 0.85)]);
        assert_eq!(c.max_sparsity_at_accuracy(0.8).unwrap(), 0.5);
    }

    #[test]
    fn iso_accuracy_handles_non_monotone_curves() {
        // Accuracy dips then recovers (noisy retraining): the sparsest
        // qualifying segment wins.
        let c = curve(vec![(0.0, 0.9), (0.3, 0.7), (0.6, 0.85), (0.9, 0.4)]);
        let s = c.max_sparsity_at_accuracy(0.8).unwrap();
        assert!(s > 0.6, "{s}");
        assert!((c.accuracy_at(s).unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn pareto_marks_dominated_points() {
        let pts = vec![
            ParetoPoint {
                arch: Arch::TbStc,
                edp: 1.0,
                accuracy: 0.9,
            },
            ParetoPoint {
                arch: Arch::Stc,
                edp: 2.0,
                accuracy: 0.85,
            }, // dominated
            ParetoPoint {
                arch: Arch::RmStc,
                edp: 0.5,
                accuracy: 0.8,
            },
            ParetoPoint {
                arch: Arch::Tc,
                edp: 3.0,
                accuracy: 0.95,
            },
        ];
        let front = pareto_frontier(&pts);
        assert_eq!(front, vec![true, false, true, true]);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), Ok(1.0));
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert_eq!(geomean(&[1.0, 0.0]), Err(Error::NonPositive { value: 0.0 }));
        assert_eq!(geomean(&[-2.0]), Err(Error::NonPositive { value: -2.0 }));
        assert!(geomean(&[1.0, f64::NAN]).is_err());
    }
}
