//! Durable job identity and the canonical progress/state document.
//!
//! A long-running job is identified by the content address of its spec
//! ([`crate::jobspec::JobSpec::cache_key`]) and described by a small
//! canonical `tbstc.v1` JSON document that the job service persists in
//! the store and serves from `GET /v1/jobs/{id}`:
//!
//! ```json
//! {"done":3,"id":"<32 hex>","schema":"tbstc.v1","spec":{...},
//!  "state":"running","total":12}
//! ```
//!
//! The lifecycle is a strict state machine:
//!
//! ```text
//! queued ──▶ running{done,total} ──▶ done
//!    │            │        ▲
//!    │            │        └── (restart resumes from the last
//!    │            ▼             persisted checkpoint)
//!    └──────▶ cancelled       running ──▶ failed{error}
//! ```
//!
//! Like every other `tbstc.v1` document the serialization is canonical
//! (sorted keys, no optional fields beyond the state's own), so equal
//! statuses are byte-equal and the document can be content-compared
//! across processes sharing one store.

use crate::error::Error;
use crate::jobspec::{JobSpec, SCHEMA};
use crate::json::Json;

/// Where a durable job is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// Executing: `done` of `total` grid points are checkpointed.
    Running {
        /// Grid points completed and persisted so far.
        done: u64,
        /// Total grid points in the job.
        total: u64,
    },
    /// Finished; the result body is in the store under the job id.
    Done,
    /// Cancelled between chunks; completed points stay in the memo.
    Cancelled,
    /// Execution failed; the message names the cause.
    Failed {
        /// Human-readable failure cause.
        error: String,
    },
}

impl JobState {
    /// The state's wire name (`queued` / `running` / `done` /
    /// `cancelled` / `failed`).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed { .. } => "failed",
        }
    }

    /// Whether the job can never make further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed { .. }
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobState::Running { done, total } => write!(f, "running {done}/{total}"),
            JobState::Failed { error } => write!(f, "failed: {error}"),
            other => f.write_str(other.name()),
        }
    }
}

/// The durable progress/state document of one job (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job's durable identity: the content address of its spec.
    pub id: String,
    /// Lifecycle position.
    pub state: JobState,
    /// The canonicalized job spec (the value form of
    /// [`JobSpec::to_value`]), so a status document alone is enough to
    /// resume or resubmit the job.
    pub spec: Json,
}

impl JobStatus {
    /// A fresh `queued` status for `spec`, with the content-addressed id
    /// computed from the spec itself.
    pub fn queued(spec: &JobSpec) -> JobStatus {
        JobStatus {
            id: spec.cache_key(),
            state: JobState::Queued,
            spec: spec.to_value(),
        }
    }

    /// The same status in a different state.
    #[must_use]
    pub fn with_state(mut self, state: JobState) -> JobStatus {
        self.state = state;
        self
    }

    /// Re-parses the embedded spec, verifying that the document is
    /// honest: the embedded spec's content address must equal `id`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] when the spec does not parse or its cache
    /// key differs from the recorded id.
    pub fn job_spec(&self) -> Result<JobSpec, Error> {
        let spec = JobSpec::from_value(&self.spec)?;
        let key = spec.cache_key();
        if key != self.id {
            return Err(Error::InvalidSpec(format!(
                "job status id `{}` does not match its spec's content address `{key}`",
                self.id
            )));
        }
        Ok(spec)
    }

    /// The canonical value form (sorted keys; `done`/`total` only while
    /// running, `error` only when failed).
    pub fn to_value(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::str(self.id.clone())),
            ("schema", Json::str(SCHEMA)),
            ("spec", self.spec.clone()),
            ("state", Json::str(self.state.name())),
        ];
        match &self.state {
            JobState::Running { done, total } => {
                pairs.push(("done", u64_value(*done)));
                pairs.push(("total", u64_value(*total)));
            }
            JobState::Failed { error } => pairs.push(("error", Json::str(error.clone()))),
            _ => {}
        }
        Json::obj(pairs)
    }

    /// The canonical JSON text of [`JobStatus::to_value`].
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// Parses a status document from its value form.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] naming the offending field on any
    /// malformed, unknown, or internally inconsistent document.
    pub fn from_value(v: &Json) -> Result<JobStatus, Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| Error::InvalidSpec("job status must be a JSON object".into()))?;
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "id" | "schema" | "spec" | "state" | "done" | "total" | "error"
            ) {
                return Err(Error::InvalidSpec(format!(
                    "job status: unknown field `{key}`"
                )));
            }
        }
        if let Some(schema) = v.get("schema") {
            let s = schema.as_str().ok_or_else(|| {
                Error::InvalidSpec("job status: `schema` must be a string".into())
            })?;
            if s != SCHEMA {
                return Err(Error::InvalidSpec(format!(
                    "job status: unsupported schema `{s}` (expected `{SCHEMA}`)"
                )));
            }
        }
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::InvalidSpec("job status: missing `id`".into()))?
            .to_string();
        if id.len() != 32 || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(Error::InvalidSpec(format!(
                "job status: `id` must be 32 hex chars, got `{id}`"
            )));
        }
        let spec = v
            .get("spec")
            .ok_or_else(|| Error::InvalidSpec("job status: missing `spec`".into()))?
            .clone();
        let state_name = v
            .get("state")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::InvalidSpec("job status: missing `state`".into()))?;
        let state = match state_name {
            "queued" => JobState::Queued,
            "running" => {
                let done = v.get("done").and_then(Json::as_u64).ok_or_else(|| {
                    Error::InvalidSpec("job status: running state needs `done`".into())
                })?;
                let total = v.get("total").and_then(Json::as_u64).ok_or_else(|| {
                    Error::InvalidSpec("job status: running state needs `total`".into())
                })?;
                if done > total {
                    return Err(Error::InvalidSpec(format!(
                        "job status: done {done} exceeds total {total}"
                    )));
                }
                JobState::Running { done, total }
            }
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            "failed" => {
                let error = v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown failure")
                    .to_string();
                JobState::Failed { error }
            }
            other => {
                return Err(Error::InvalidSpec(format!(
                    "job status: unknown state `{other}`"
                )))
            }
        };
        Ok(JobStatus { id, state, spec })
    }

    /// Parses a status document from JSON text.
    ///
    /// # Errors
    ///
    /// As [`JobStatus::from_value`], plus JSON syntax errors.
    pub fn from_json(text: &str) -> Result<JobStatus, Error> {
        JobStatus::from_value(&Json::parse(text)?)
    }
}

/// A `u64` as JSON, exact through the integer range `i64` covers.
fn u64_value(n: u64) -> Json {
    i64::try_from(n).map_or(Json::Num(n as f64), Json::Int)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec() -> JobSpec {
        JobSpec::from_json(
            r#"{"type":"sweep","archs":["tb-stc","stc"],
                "models":[{"kind":"gcn","nodes":64,"features":16}],
                "sparsities":[0.5,0.75]}"#,
        )
        .unwrap()
    }

    #[test]
    fn status_roundtrips_canonically_through_every_state() {
        let spec = sweep_spec();
        let base = JobStatus::queued(&spec);
        assert_eq!(base.id, spec.cache_key());
        let states = [
            JobState::Queued,
            JobState::Running { done: 3, total: 12 },
            JobState::Done,
            JobState::Cancelled,
            JobState::Failed {
                error: "worker panicked".into(),
            },
        ];
        for state in states {
            let status = base.clone().with_state(state);
            let text = status.to_json();
            let back = JobStatus::from_json(&text).unwrap();
            assert_eq!(back, status);
            assert_eq!(back.to_json(), text, "serialization is canonical");
            assert_eq!(back.job_spec().unwrap().cache_key(), status.id);
        }
    }

    #[test]
    fn terminal_states_are_exactly_done_cancelled_failed() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running { done: 0, total: 1 }.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed { error: "x".into() }.is_terminal());
    }

    #[test]
    fn malformed_documents_are_rejected_with_field_names() {
        let spec = sweep_spec();
        let good = JobStatus::queued(&spec).to_json();
        let cases = [
            (
                good.replace("\"state\":\"queued\"", "\"state\":\"paused\""),
                "unknown state",
            ),
            (good.replace("\"id\":", "\"jid\":"), "unknown field"),
            (
                good.replace(&spec.cache_key(), &"0".repeat(31)),
                "32 hex chars",
            ),
            (
                good.replace(
                    "\"state\":\"queued\"",
                    "\"state\":\"running\",\"done\":5,\"total\":2",
                ),
                "exceeds total",
            ),
            ("[1,2]".to_string(), "JSON object"),
        ];
        for (text, needle) in cases {
            let err = JobStatus::from_json(&text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn tampered_spec_fails_the_content_address_check() {
        let status = JobStatus::queued(&sweep_spec());
        let other = JobSpec::from_json(
            r#"{"type":"simulate","arch":"tb-stc",
                "model":{"kind":"gcn","nodes":64,"features":16},"sparsity":0.5}"#,
        )
        .unwrap();
        let tampered = JobStatus {
            spec: other.to_value(),
            ..status
        };
        let err = tampered.job_spec().unwrap_err().to_string();
        assert!(err.contains("content address"), "{err}");
    }
}
