//! # TB-STC — Transposable Block-wise N:M Structured Sparse Tensor Core
//!
//! A full-system Rust reproduction of the HPCA 2025 paper *TB-STC:
//! Transposable Block-wise N:M Structured Sparse Tensor Core*. The crate
//! re-exports every subsystem and adds the cross-cutting experiment
//! helpers ([`experiments`]) used by the examples and the benchmark
//! harness:
//!
//! * [`matrix`] — dense matrices, fp16 emulation, GEMM golden models,
//! * [`sparsity`] — the TBS pattern (Algorithm 1) and all baselines
//!   (US / TS / RS-V / RS-H), mask-space analysis, pruning criteria,
//! * [`formats`] — SDC / CSR / DDC storage formats + the adaptive codec,
//! * [`train`] — the sparse-training substrate and one-shot pruning,
//! * [`models`] — ResNet / BERT / OPT / Llama / GCN workload shapes,
//! * [`dram`] — the Ramulator-lite DRAM timing/energy model,
//! * [`energy`] — area/power models (Table III) and EDP accounting,
//! * [`sim`] — the cycle-level simulator for TB-STC and every baseline.
//!
//! # Quickstart
//!
//! ```
//! use tbstc::prelude::*;
//!
//! // Prune a weight matrix with the paper's TBS pattern at 75% sparsity.
//! let w = MatrixRng::seed_from(0).block_structured_weights(64, 64, 8);
//! let pattern = TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default());
//!
//! // Simulate one BERT layer on TB-STC vs. the dense Tensor Core.
//! let cfg = HwConfig::paper_default();
//! let shape = &tbstc::models::bert_base(128).layers[0];
//! let tb = LayerSim::new(shape).arch(Arch::TbStc).sparsity(0.75).run(&cfg);
//! let tc = LayerSim::new(shape).arch(Arch::Tc).run(&cfg);
//! assert!(tb.speedup_over(&tc) > 1.5);
//!
//! // Sweep a grid of (arch, sparsity) points on the parallel runner —
//! // results are bit-identical to a serial run, repeated points are
//! // served from the cache.
//! let report = Sweep::new()
//!     .archs([Arch::TbStc, Arch::Tc])
//!     .models([ModelSpec::BertBase { tokens: 32 }])
//!     .sparsities([0.0, 0.75])
//!     .run(&SweepRunner::new(cfg));
//! assert_eq!(report.results.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tbstc_dram as dram;
pub use tbstc_energy as energy;
pub use tbstc_formats as formats;
pub use tbstc_matrix as matrix;
pub use tbstc_models as models;
pub use tbstc_runner as runner;
pub use tbstc_sim as sim;
pub use tbstc_sparsity as sparsity;
pub use tbstc_train as train;

pub mod archspec;
pub mod error;
pub mod experiments;
pub mod jobspec;
pub mod jobstate;
pub mod json;

pub use error::Error;

/// The most commonly used items, for `use tbstc::prelude::*`.
pub mod prelude {
    pub use tbstc_energy::EdpPoint;
    pub use tbstc_formats::{CodecUnit, Csr, Ddc, Sdc};
    pub use tbstc_matrix::rng::MatrixRng;
    pub use tbstc_matrix::{Matrix, F16};
    pub use tbstc_models::{bert_base, opt_6_7b, resnet18, resnet50};
    pub use tbstc_runner::{
        Memo, ModelSpec, RunReport, RunStats, Runner, SimJob, Sweep, SweepRunner,
    };
    pub use tbstc_sim::{simulate_layer, simulate_model, Arch, HwConfig, LayerSim, SparseLayer};
    pub use tbstc_sparsity::{Mask, Pattern, PatternKind, TbsConfig, TbsPattern};
    pub use tbstc_train::{Dataset, Mlp, MlpConfig, SparseTrainer, TrainConfig};

    pub use crate::error::Error;
    pub use crate::experiments::{AccuracyCurve, ParetoPoint};
    pub use crate::jobspec::{ArchChoice, JobSpec, SimulateSpec, SweepSpec};
    pub use crate::json::Json;
}
