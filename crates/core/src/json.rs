//! A minimal, dependency-free JSON value with a canonical writer.
//!
//! The workspace builds offline and carries no serde, so the serve
//! subsystem (job specs over HTTP, the on-disk result cache, the memo
//! persistence file) hand-rolls its JSON through this module. Two
//! properties matter more than speed here:
//!
//! * **Canonical output** — objects are [`std::collections::BTreeMap`]s,
//!   so serialization is key-sorted and byte-deterministic. The serve
//!   cache key is a hash of this canonical text.
//! * **Exact numeric round-trips** — integers stay [`Json::Int`]
//!   end-to-end, and floats are written with Rust's shortest-round-trip
//!   `Display`, so `parse(write(v)) == v` bit-for-bit. Cached simulation
//!   results reload without drift.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Error;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`/`e` — kept exact as an integer.
    Int(i64),
    /// A number with a fractional or exponent part.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key-sorted, for canonical serialization).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float ([`Json::Int`] widens losslessly).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map (key-sorted).
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on malformed input, trailing garbage, or
    /// nesting deeper than 64 levels (the parser is recursive and may face
    /// untrusted network input).
    pub fn parse(text: &str) -> Result<Json, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::Parse(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // Job specs reject non-finite numbers before they get
                    // here; null keeps the output valid JSON regardless.
                    return f.write_str("null");
                }
                let s = format!("{n}");
                f.write_str(&s)?;
                // Keep the int/float distinction round-trippable: a float
                // that prints like an integer gets a ".0" suffix.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    f.write_str(".0")?;
                }
                Ok(())
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect_byte(b'[')?;
        self.depth += 1;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect_byte(b'{')?;
        self.depth += 1;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode from the original UTF-8 text.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers too large for i64 fall back to f64 like upstream
            // parsers do.
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

/// 64-bit FNV-1a over `bytes`, from an arbitrary basis. Two passes with
/// different bases give the serve cache its 128-bit content key.
pub fn fnv1a_64(bytes: &[u8], basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "-42", "3.5", "1.0e-3"] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn ints_and_floats_stay_distinct() {
        assert_eq!(Json::parse("64").unwrap(), Json::Int(64));
        assert_eq!(Json::parse("64.0").unwrap(), Json::Num(64.0));
        assert_eq!(Json::Num(64.0).to_string(), "64.0");
        assert_eq!(Json::Int(64).to_string(), "64");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -0.75] {
            let text = Json::Num(v).to_string();
            match Json::parse(&text).unwrap() {
                Json::Num(back) => assert_eq!(v.to_bits(), back.to_bits(), "{text}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn objects_serialize_key_sorted() {
        let v = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\tü€".into());
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, back);
        let surrogate = Json::parse(r#""😀""#).unwrap();
        assert_eq!(surrogate.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn nested_structures_parse() {
        let v = Json::parse(r#"{"a":[1,{"b":[true,null]}],"c":"x"}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"abc", "{\"a\":}", "+5",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn rejects_bomb_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn fnv_distinguishes_inputs() {
        let a = fnv1a_64(b"abc", 0xcbf29ce484222325);
        let b = fnv1a_64(b"abd", 0xcbf29ce484222325);
        assert_ne!(a, b);
        assert_ne!(a, fnv1a_64(b"abc", 0x9747b28c9747b28c));
    }
}
