//! The shared job-spec schema: what `tbstc-serve` accepts over HTTP,
//! what `tbstc-cli --json` emits, and what the on-disk caches store.
//!
//! One schema, three consumers:
//!
//! * `tbstc-cli simulate/sweep --json` serializes results through
//!   [`JobSpec::execute`], so CLI output and server responses are
//!   diffable byte-for-byte.
//! * `tbstc-serve` parses request bodies into [`JobSpec`], keys its
//!   content-addressed result cache on [`JobSpec::cache_key`] (a hash of
//!   the *canonicalized* spec — field order and omitted defaults do not
//!   change the key), and stores the response bodies verbatim.
//! * The `SweepRunner` memo persistence file serializes its
//!   `(SimJob, ModelResult)` entries with [`sim_job_to_value`] /
//!   [`model_result_to_value`].
//!
//! Determinism contract: [`JobSpec::execute`] is a pure function of the
//! spec (each job owns its seed; the engine's parallel runner is
//! bit-identical to serial), so identical specs always produce identical
//! response bodies — the property the serve cache relies on.

use crate::archspec;
use crate::error::Error;
use crate::json::{fnv1a_64, Json};

use tbstc_runner::{ModelSpec, SimJob, Sweep, SweepRunner};
use tbstc_sim::{Arch, ArchId, ArchSpec, CustomArch, CycleBreakdown, LayerResult, ModelResult};

/// Schema tag stamped into every response body.
pub const SCHEMA: &str = "tbstc.v1";

/// Default off-chip bandwidth when a spec omits it (GB/s, the paper's
/// platform).
pub const DEFAULT_BANDWIDTH_GBPS: f64 = 64.0;

/// Builds a [`ModelSpec`] from a bare name at the CLI's default shapes.
pub fn model_from_name(name: &str) -> Option<ModelSpec> {
    Some(match name {
        "resnet50" => ModelSpec::ResNet50 { input: 64 },
        "resnet18" => ModelSpec::ResNet18 { input: 64 },
        "bert" => ModelSpec::BertBase { tokens: 128 },
        "opt" => ModelSpec::Opt6_7b { tokens: 128 },
        "llama" => ModelSpec::Llama2_7b { tokens: 128 },
        "gcn" => ModelSpec::Gcn {
            nodes: 1024,
            features: 128,
        },
        _ => return None,
    })
}

/// Serializes a [`ModelSpec`] to its canonical object form.
pub fn model_to_value(model: ModelSpec) -> Json {
    match model {
        ModelSpec::ResNet50 { input } => Json::obj([
            ("input", Json::Int(input as i64)),
            ("kind", Json::str("resnet50")),
        ]),
        ModelSpec::ResNet18 { input } => Json::obj([
            ("input", Json::Int(input as i64)),
            ("kind", Json::str("resnet18")),
        ]),
        ModelSpec::BertBase { tokens } => Json::obj([
            ("kind", Json::str("bert")),
            ("tokens", Json::Int(tokens as i64)),
        ]),
        ModelSpec::Opt6_7b { tokens } => Json::obj([
            ("kind", Json::str("opt")),
            ("tokens", Json::Int(tokens as i64)),
        ]),
        ModelSpec::Llama2_7b { tokens } => Json::obj([
            ("kind", Json::str("llama")),
            ("tokens", Json::Int(tokens as i64)),
        ]),
        ModelSpec::Gcn { nodes, features } => Json::obj([
            ("features", Json::Int(features as i64)),
            ("kind", Json::str("gcn")),
            ("nodes", Json::Int(nodes as i64)),
        ]),
    }
}

/// Rejects object keys outside the allowed set, naming the first
/// stranger with its field path (`ctx` is the parent path prefix).
fn reject_unknown_fields(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), Error> {
    if let Some(m) = v.as_obj() {
        for key in m.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(Error::InvalidSpec(format!("{ctx}{key}: unknown field")));
            }
        }
    }
    Ok(())
}

/// Parses a [`ModelSpec`] from either a bare name string (CLI default
/// shapes) or the canonical `{"kind": ..., ...}` object.
pub fn model_from_value(v: &Json) -> Result<ModelSpec, Error> {
    if let Some(name) = v.as_str() {
        return model_from_name(name)
            .ok_or_else(|| Error::InvalidSpec(format!("unknown model `{name}`")));
    }
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| Error::InvalidSpec("model needs a `kind`".into()))?;
    let allowed: &[&str] = match kind {
        "resnet50" | "resnet18" => &["kind", "input"],
        "bert" | "opt" | "llama" => &["kind", "tokens"],
        "gcn" => &["kind", "nodes", "features"],
        _ => &["kind"],
    };
    reject_unknown_fields(v, allowed, "model.")?;
    let dim = |key: &str, default: usize| -> Result<usize, Error> {
        match v.get(key) {
            None => Ok(default),
            Some(j) => j
                .as_usize()
                .filter(|&n| n > 0)
                .ok_or_else(|| Error::InvalidSpec(format!("model `{key}` must be a positive int"))),
        }
    };
    Ok(match kind {
        "resnet50" => ModelSpec::ResNet50 {
            input: dim("input", 64)?,
        },
        "resnet18" => ModelSpec::ResNet18 {
            input: dim("input", 64)?,
        },
        "bert" => ModelSpec::BertBase {
            tokens: dim("tokens", 128)?,
        },
        "opt" => ModelSpec::Opt6_7b {
            tokens: dim("tokens", 128)?,
        },
        "llama" => ModelSpec::Llama2_7b {
            tokens: dim("tokens", 128)?,
        },
        "gcn" => ModelSpec::Gcn {
            nodes: dim("nodes", 1024)?,
            features: dim("features", 128)?,
        },
        other => return Err(Error::InvalidSpec(format!("unknown model kind `{other}`"))),
    })
}

fn parse_arch_value(v: &Json) -> Result<Arch, Error> {
    let name = v
        .as_str()
        .ok_or_else(|| Error::InvalidSpec("arch must be a string".into()))?;
    name.parse::<Arch>()
        .map_err(|e| Error::InvalidSpec(e.to_string()))
}

/// Parses a result-side architecture identity: a builtin registry name
/// maps to its [`Arch`]; anything else is a custom spec name. Results
/// only store the name, so custom identities round-trip by name alone.
fn parse_arch_id_value(v: &Json) -> Result<ArchId, Error> {
    let name = v
        .as_str()
        .ok_or_else(|| Error::InvalidSpec("arch must be a string".into()))?;
    Ok(match name.parse::<Arch>() {
        Ok(a) => ArchId::Builtin(a),
        Err(_) => ArchId::custom(name),
    })
}

fn parse_sparsity(v: &Json) -> Result<f64, Error> {
    let s = v
        .as_f64()
        .ok_or_else(|| Error::InvalidSpec("sparsity must be a number".into()))?;
    if !(0.0..=1.0).contains(&s) {
        return Err(Error::InvalidSpec(format!("sparsity {s} outside [0, 1]")));
    }
    Ok(s)
}

/// The architecture a simulate job runs on: a registry builtin by name,
/// or an inline `tbstc.v1` arch-spec document interpreted by
/// [`CustomArch`]. Custom specs canonicalize as their full document, so
/// the content-addressed cache key (and with it serve's coalescing and
/// disk/LRU tiers) distinguishes them by content, not by name.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchChoice {
    /// A registry builtin, referenced by name.
    Builtin(Arch),
    /// An inline, already-validated arch-spec document.
    Custom(Box<ArchSpec>),
}

impl ArchChoice {
    /// The canonical lowercase name (builtin registry name or the spec's
    /// declared name).
    pub fn canonical_name(&self) -> &str {
        match self {
            ArchChoice::Builtin(a) => a.canonical_name(),
            ArchChoice::Custom(spec) => &spec.name,
        }
    }

    /// The builtin, when this is one.
    pub fn builtin(&self) -> Option<Arch> {
        match self {
            ArchChoice::Builtin(a) => Some(*a),
            ArchChoice::Custom(_) => None,
        }
    }
}

impl From<Arch> for ArchChoice {
    fn from(a: Arch) -> ArchChoice {
        ArchChoice::Builtin(a)
    }
}

/// One whole-model simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateSpec {
    /// Architecture to simulate.
    pub arch: ArchChoice,
    /// Workload.
    pub model: ModelSpec,
    /// Target sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Weight-sampling seed.
    pub seed: u64,
    /// Off-chip bandwidth of the platform, GB/s.
    pub bandwidth_gbps: f64,
}

/// A grid request: the cross product archs × models × sparsities × seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Architecture axis.
    pub archs: Vec<Arch>,
    /// Workload axis.
    pub models: Vec<ModelSpec>,
    /// Sparsity axis.
    pub sparsities: Vec<f64>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Off-chip bandwidth of the platform, GB/s.
    pub bandwidth_gbps: f64,
}

/// A job the serve subsystem can execute.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Simulate one model on one architecture.
    Simulate(SimulateSpec),
    /// Run a deterministic sweep grid.
    Sweep(SweepSpec),
}

impl JobSpec {
    /// Parses and validates a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on malformed JSON, [`Error::InvalidSpec`] on a
    /// well-formed body that is not a valid job.
    pub fn from_json(text: &str) -> Result<JobSpec, Error> {
        Self::from_value(&Json::parse(text)?)
    }

    /// Parses and validates a spec from a JSON value. Omitted fields take
    /// defaults: seed 0, bandwidth 64 GB/s, sweep seeds `[0]`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] when required fields are missing or out of
    /// range.
    pub fn from_value(v: &Json) -> Result<JobSpec, Error> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::InvalidSpec("job needs a `type` (simulate|sweep)".into()))?;
        let bandwidth_gbps = match v.get("bandwidth_gbps") {
            None => DEFAULT_BANDWIDTH_GBPS,
            Some(j) => {
                let b = j
                    .as_f64()
                    .ok_or_else(|| Error::InvalidSpec("bandwidth_gbps must be a number".into()))?;
                if !b.is_finite() || b <= 0.0 {
                    return Err(Error::InvalidSpec(format!(
                        "bandwidth_gbps {b} must be positive"
                    )));
                }
                b
            }
        };
        let seed_of = |j: Option<&Json>| -> Result<u64, Error> {
            match j {
                None => Ok(0),
                Some(j) => j
                    .as_u64()
                    .ok_or_else(|| Error::InvalidSpec("seed must be a non-negative int".into())),
            }
        };
        match kind {
            "simulate" => {
                reject_unknown_fields(
                    v,
                    &[
                        "type",
                        "arch",
                        "arch_spec",
                        "model",
                        "sparsity",
                        "seed",
                        "bandwidth_gbps",
                    ],
                    "",
                )?;
                let arch = match (v.get("arch"), v.get("arch_spec")) {
                    (Some(_), Some(_)) => {
                        return Err(Error::InvalidSpec(
                            "give either `arch` or `arch_spec`, not both".into(),
                        ))
                    }
                    (Some(a), None) => ArchChoice::Builtin(parse_arch_value(a)?),
                    (None, Some(s)) => ArchChoice::Custom(Box::new(archspec::spec_from_value(s)?)),
                    (None, None) => {
                        return Err(Error::InvalidSpec(
                            "simulate needs an `arch` or an `arch_spec`".into(),
                        ))
                    }
                };
                let model = model_from_value(
                    v.get("model")
                        .ok_or_else(|| Error::InvalidSpec("simulate needs a `model`".into()))?,
                )?;
                let sparsity = match v.get("sparsity") {
                    None => 0.75,
                    Some(j) => parse_sparsity(j)?,
                };
                Ok(JobSpec::Simulate(SimulateSpec {
                    arch,
                    model,
                    sparsity,
                    seed: seed_of(v.get("seed"))?,
                    bandwidth_gbps,
                }))
            }
            "sweep" => {
                reject_unknown_fields(
                    v,
                    &[
                        "type",
                        "archs",
                        "models",
                        "sparsities",
                        "seeds",
                        "bandwidth_gbps",
                    ],
                    "",
                )?;
                let list = |key: &str| -> Result<&[Json], Error> {
                    v.get(key)
                        .and_then(Json::as_arr)
                        .filter(|a| !a.is_empty())
                        .ok_or_else(|| {
                            Error::InvalidSpec(format!("sweep needs a non-empty `{key}` array"))
                        })
                };
                let archs = list("archs")?
                    .iter()
                    .map(parse_arch_value)
                    .collect::<Result<Vec<_>, _>>()?;
                let models = list("models")?
                    .iter()
                    .map(model_from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                let sparsities = list("sparsities")?
                    .iter()
                    .map(parse_sparsity)
                    .collect::<Result<Vec<_>, _>>()?;
                let seeds = match v.get("seeds") {
                    None => vec![0],
                    Some(j) => j
                        .as_arr()
                        .filter(|a| !a.is_empty())
                        .ok_or_else(|| {
                            Error::InvalidSpec("`seeds` must be a non-empty array".into())
                        })?
                        .iter()
                        .map(|s| seed_of(Some(s)))
                        .collect::<Result<Vec<_>, _>>()?,
                };
                Ok(JobSpec::Sweep(SweepSpec {
                    archs,
                    models,
                    sparsities,
                    seeds,
                    bandwidth_gbps,
                }))
            }
            other => Err(Error::InvalidSpec(format!(
                "unknown job type `{other}` (want simulate|sweep)"
            ))),
        }
    }

    /// The canonical value form: every default filled in, keys sorted.
    /// Two specs that execute identically canonicalize identically.
    pub fn to_value(&self) -> Json {
        match self {
            JobSpec::Simulate(s) => {
                let mut pairs = vec![
                    ("bandwidth_gbps", Json::Num(s.bandwidth_gbps)),
                    ("model", model_to_value(s.model)),
                    ("seed", Json::Int(s.seed as i64)),
                    ("sparsity", Json::Num(s.sparsity)),
                    ("type", Json::str("simulate")),
                ];
                match &s.arch {
                    ArchChoice::Builtin(a) => {
                        pairs.push(("arch", Json::str(a.canonical_name())));
                    }
                    ArchChoice::Custom(spec) => {
                        pairs.push(("arch_spec", archspec::spec_to_value(spec)));
                    }
                }
                Json::obj(pairs)
            }
            JobSpec::Sweep(s) => Json::obj([
                (
                    "archs",
                    Json::Arr(
                        s.archs
                            .iter()
                            .map(|&a| Json::str(a.canonical_name()))
                            .collect(),
                    ),
                ),
                ("bandwidth_gbps", Json::Num(s.bandwidth_gbps)),
                (
                    "models",
                    Json::Arr(s.models.iter().map(|&m| model_to_value(m)).collect()),
                ),
                (
                    "seeds",
                    Json::Arr(s.seeds.iter().map(|&x| Json::Int(x as i64)).collect()),
                ),
                (
                    "sparsities",
                    Json::Arr(s.sparsities.iter().map(|&x| Json::Num(x)).collect()),
                ),
                ("type", Json::str("sweep")),
            ]),
        }
    }

    /// The canonical JSON text (the byte string the cache key hashes).
    pub fn canonical_json(&self) -> String {
        self.to_value().to_string()
    }

    /// The content-addressed cache key: 128 bits of FNV-1a over the
    /// canonical JSON, as 32 hex characters.
    pub fn cache_key(&self) -> String {
        let text = self.canonical_json();
        let a = fnv1a_64(text.as_bytes(), 0xcbf2_9ce4_8422_2325);
        let b = fnv1a_64(text.as_bytes(), 0x6c62_272e_07bb_0142);
        format!("{a:016x}{b:016x}")
    }

    /// The platform bandwidth this job simulates under.
    pub fn bandwidth_gbps(&self) -> f64 {
        match self {
            JobSpec::Simulate(s) => s.bandwidth_gbps,
            JobSpec::Sweep(s) => s.bandwidth_gbps,
        }
    }

    /// The number of grid points this job expands to.
    pub fn grid_len(&self) -> usize {
        match self {
            JobSpec::Simulate(_) => 1,
            JobSpec::Sweep(s) => {
                s.archs.len() * s.models.len() * s.sparsities.len() * s.seeds.len().max(1)
            }
        }
    }

    /// The sub-spec grid of this job: every single-point [`SimJob`] it
    /// expands to, in execution order — the granularity the sweep memo
    /// is keyed at, so chunked/durable execution can warm exactly the
    /// points [`JobSpec::execute`] will consume. Simulate jobs with a
    /// builtin arch expand to their one point; custom-arch simulate
    /// jobs run through the interpreter and have no builtin-keyed grid
    /// (empty list).
    pub fn grid_jobs(&self) -> Vec<SimJob> {
        match self {
            JobSpec::Simulate(s) => match &s.arch {
                ArchChoice::Builtin(a) => vec![SimJob {
                    arch: *a,
                    model: s.model,
                    sparsity: s.sparsity,
                    seed: s.seed,
                }],
                // tbstc-lint: allow(hot-path-alloc) — empty vec, never grows
                ArchChoice::Custom(_) => Vec::new(),
            },
            JobSpec::Sweep(s) => Sweep::new()
                .archs(s.archs.iter().copied())
                .models(s.models.iter().copied())
                .sparsities(s.sparsities.iter().copied())
                .seeds(s.seeds.iter().copied())
                .jobs(),
        }
    }

    /// Executes the job on `engine` and returns the deterministic
    /// response body value. The engine must be bound to this spec's
    /// bandwidth (the serve layer keeps one engine per bandwidth).
    pub fn execute(&self, engine: &SweepRunner) -> Json {
        debug_assert_eq!(
            engine.config().dram.bytes_per_cycle,
            self.bandwidth_gbps(),
            "engine bound to a different bandwidth than the spec"
        );
        match self {
            JobSpec::Simulate(s) => {
                let result = match &s.arch {
                    ArchChoice::Builtin(a) => engine.model(SimJob {
                        arch: *a,
                        model: s.model,
                        sparsity: s.sparsity,
                        seed: s.seed,
                    }),
                    // Spec-driven archs run through the interpreter; they
                    // bypass the builtin-keyed memo but are still served
                    // by the content-addressed response caches upstream.
                    ArchChoice::Custom(spec) => match CustomArch::new((**spec).clone()) {
                        Ok(custom) => tbstc_sim::simulate_model_on(
                            &custom,
                            &s.model.build(),
                            s.sparsity,
                            s.seed,
                            engine.config(),
                        ),
                        Err(e) => {
                            // Unreachable through parsing (documents are
                            // validated); keeps programmatic misuse
                            // panic-free.
                            return Json::obj([
                                ("error", Json::str(format!("invalid arch spec: {e}"))),
                                ("schema", Json::str(SCHEMA)),
                            ]);
                        }
                    },
                };
                Json::obj([
                    ("job", self.to_value()),
                    ("result", model_result_to_value(&result)),
                    ("schema", Json::str(SCHEMA)),
                ])
            }
            JobSpec::Sweep(s) => {
                let jobs = Sweep::new()
                    .archs(s.archs.iter().copied())
                    .models(s.models.iter().copied())
                    .sparsities(s.sparsities.iter().copied())
                    .seeds(s.seeds.iter().copied())
                    .jobs();
                let report = engine.run_models(&jobs);
                let results = jobs
                    .iter()
                    .zip(&report.results)
                    .map(|(job, res)| {
                        Json::obj([
                            ("job", sim_job_to_value(job)),
                            ("result", model_result_to_value(res)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("job", self.to_value()),
                    ("results", Json::Arr(results)),
                    ("schema", Json::str(SCHEMA)),
                ])
            }
        }
    }
}

/// Serializes one grid point (the memo key of model sweeps).
pub fn sim_job_to_value(job: &SimJob) -> Json {
    Json::obj([
        ("arch", Json::str(job.arch.canonical_name())),
        ("model", model_to_value(job.model)),
        ("seed", Json::Int(job.seed as i64)),
        ("sparsity", Json::Num(job.sparsity)),
    ])
}

/// Parses one grid point.
///
/// # Errors
///
/// [`Error::InvalidSpec`] when fields are missing or malformed.
pub fn sim_job_from_value(v: &Json) -> Result<SimJob, Error> {
    let missing = |k: &str| Error::InvalidSpec(format!("sim job missing `{k}`"));
    Ok(SimJob {
        arch: parse_arch_value(v.get("arch").ok_or_else(|| missing("arch"))?)?,
        model: model_from_value(v.get("model").ok_or_else(|| missing("model"))?)?,
        sparsity: parse_sparsity(v.get("sparsity").ok_or_else(|| missing("sparsity"))?)?,
        seed: v
            .get("seed")
            .ok_or_else(|| missing("seed"))?
            .as_u64()
            .ok_or_else(|| Error::InvalidSpec("seed must be a non-negative int".into()))?,
    })
}

fn u64_value(x: u64) -> Json {
    match i64::try_from(x) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::Num(x as f64),
    }
}

fn get_u64(v: &Json, key: &str) -> Result<u64, Error> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| Error::InvalidSpec(format!("result missing counter `{key}`")))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, Error> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| Error::InvalidSpec(format!("result missing number `{key}`")))
}

/// Serializes a per-layer simulation result.
pub fn layer_result_to_value(l: &LayerResult) -> Json {
    Json::obj([
        ("arch", Json::str(l.arch.canonical_name())),
        ("bandwidth_utilization", Json::Num(l.bandwidth_utilization)),
        (
            "breakdown",
            Json::obj([
                ("codec_exposed", u64_value(l.breakdown.codec_exposed)),
                ("codec_hidden", u64_value(l.breakdown.codec_hidden)),
                ("compute", u64_value(l.breakdown.compute)),
                ("memory", u64_value(l.breakdown.memory)),
            ]),
        ),
        ("compute_utilization", Json::Num(l.compute_utilization)),
        ("cycles", u64_value(l.cycles)),
        ("energy_pj", Json::Num(l.energy_pj)),
        ("name", Json::str(l.name.clone())),
        ("traffic_bytes", Json::Num(l.traffic_bytes)),
        ("useful_macs", u64_value(l.useful_macs)),
    ])
}

/// Parses a per-layer simulation result.
///
/// # Errors
///
/// [`Error::InvalidSpec`] when the value does not match the schema.
pub fn layer_result_from_value(v: &Json) -> Result<LayerResult, Error> {
    let b = v
        .get("breakdown")
        .ok_or_else(|| Error::InvalidSpec("layer result missing `breakdown`".into()))?;
    Ok(LayerResult {
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::InvalidSpec("layer result missing `name`".into()))?
            .to_string(),
        arch: parse_arch_id_value(
            v.get("arch")
                .ok_or_else(|| Error::InvalidSpec("layer result missing `arch`".into()))?,
        )?,
        cycles: get_u64(v, "cycles")?,
        breakdown: CycleBreakdown {
            compute: get_u64(b, "compute")?,
            memory: get_u64(b, "memory")?,
            codec_hidden: get_u64(b, "codec_hidden")?,
            codec_exposed: get_u64(b, "codec_exposed")?,
        },
        useful_macs: get_u64(v, "useful_macs")?,
        compute_utilization: get_f64(v, "compute_utilization")?,
        bandwidth_utilization: get_f64(v, "bandwidth_utilization")?,
        traffic_bytes: get_f64(v, "traffic_bytes")?,
        energy_pj: get_f64(v, "energy_pj")?,
    })
}

/// Serializes a whole-model simulation result.
pub fn model_result_to_value(r: &ModelResult) -> Json {
    Json::obj([
        ("arch", Json::str(r.arch.canonical_name())),
        (
            "layers",
            Json::Arr(r.layers.iter().map(layer_result_to_value).collect()),
        ),
        ("model", Json::str(r.model.clone())),
        ("total_cycles", u64_value(r.total_cycles)),
        ("total_energy_pj", Json::Num(r.total_energy_pj)),
    ])
}

/// Parses a whole-model simulation result.
///
/// # Errors
///
/// [`Error::InvalidSpec`] when the value does not match the schema.
pub fn model_result_from_value(v: &Json) -> Result<ModelResult, Error> {
    Ok(ModelResult {
        arch: parse_arch_id_value(
            v.get("arch")
                .ok_or_else(|| Error::InvalidSpec("model result missing `arch`".into()))?,
        )?,
        model: v
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::InvalidSpec("model result missing `model`".into()))?
            .to_string(),
        layers: v
            .get("layers")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::InvalidSpec("model result missing `layers`".into()))?
            .iter()
            .map(layer_result_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        total_cycles: get_u64(v, "total_cycles")?,
        total_energy_pj: get_f64(v, "total_energy_pj")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_sim::HwConfig;

    fn gcn_spec() -> JobSpec {
        JobSpec::from_json(
            r#"{"type":"simulate","arch":"tb-stc",
                "model":{"kind":"gcn","nodes":64,"features":16},
                "sparsity":0.5}"#,
        )
        .unwrap()
    }

    #[test]
    fn defaults_fill_in_and_canonicalize() {
        let spec = gcn_spec();
        match &spec {
            JobSpec::Simulate(s) => {
                assert_eq!(s.seed, 0);
                assert_eq!(s.bandwidth_gbps, DEFAULT_BANDWIDTH_GBPS);
            }
            JobSpec::Sweep(_) => panic!("wrong variant"),
        }
        // Field order and explicit defaults do not change the key.
        let explicit = JobSpec::from_json(
            r#"{"seed":0,"bandwidth_gbps":64.0,"sparsity":0.5,
                "model":{"features":16,"kind":"gcn","nodes":64},
                "arch":"tb-stc","type":"simulate"}"#,
        )
        .unwrap();
        assert_eq!(spec.cache_key(), explicit.cache_key());
        assert_eq!(spec.canonical_json(), explicit.canonical_json());
    }

    #[test]
    fn spec_roundtrips_through_canonical_json() {
        let spec = JobSpec::Sweep(SweepSpec {
            archs: vec![Arch::TbStc, Arch::Stc],
            models: vec![
                ModelSpec::Gcn {
                    nodes: 64,
                    features: 16,
                },
                ModelSpec::BertBase { tokens: 32 },
            ],
            sparsities: vec![0.5, 0.75],
            seeds: vec![0, 7],
            bandwidth_gbps: 128.0,
        });
        let back = JobSpec::from_json(&spec.canonical_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.grid_len(), 16);
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let a = gcn_spec();
        let mut b = a.clone();
        if let JobSpec::Simulate(s) = &mut b {
            s.sparsity = 0.75;
        }
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(a.cache_key().len(), 32);
    }

    #[test]
    fn rejects_invalid_specs() {
        for bad in [
            r#"{"arch":"tb-stc"}"#,
            r#"{"type":"simulate"}"#,
            r#"{"type":"simulate","arch":"tpu","model":"bert"}"#,
            r#"{"type":"simulate","arch":"tc","model":"bert","sparsity":1.5}"#,
            r#"{"type":"simulate","arch":"tc","model":"bert","seed":-1}"#,
            r#"{"type":"simulate","arch":"tc","model":"bert","bandwidth_gbps":0}"#,
            r#"{"type":"sweep","archs":[],"models":["bert"],"sparsities":[0.5]}"#,
            r#"{"type":"train"}"#,
        ] {
            assert!(JobSpec::from_json(bad).is_err(), "{bad} should be rejected");
        }
        assert!(matches!(JobSpec::from_json("{nope"), Err(Error::Parse(_))));
    }

    #[test]
    fn rejects_unknown_fields_with_the_path() {
        let e = JobSpec::from_json(r#"{"type":"simulate","arch":"tc","model":"bert","warp":32}"#)
            .unwrap_err()
            .to_string();
        assert!(e.contains("warp: unknown field"), "{e}");

        let e = JobSpec::from_json(
            r#"{"type":"simulate","arch":"tc",
                "model":{"kind":"bert","tokens":32,"heads":12}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("model.heads: unknown field"), "{e}");

        let e = JobSpec::from_json(
            r#"{"type":"sweep","archs":["tc"],"models":["bert"],
                "sparsities":[0.5],"seed":[0]}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("seed: unknown field"), "{e}");
    }

    fn inline_spec_body() -> String {
        let doc = archspec::spec_to_value(&Arch::TbStc.model().spec());
        format!(
            r#"{{"type":"simulate","arch_spec":{doc},
                "model":{{"kind":"gcn","nodes":64,"features":16}},
                "sparsity":0.5}}"#
        )
    }

    #[test]
    fn inline_arch_spec_parses_and_keys_by_content() {
        let spec = JobSpec::from_json(&inline_spec_body()).unwrap();
        let JobSpec::Simulate(s) = &spec else {
            panic!("wrong variant");
        };
        assert_eq!(s.arch.canonical_name(), "tb-stc");
        assert_eq!(s.arch.builtin(), None);

        // Canonical round-trip through the document form.
        let back = JobSpec::from_json(&spec.canonical_json()).unwrap();
        assert_eq!(spec, back);

        // Same name, different content ⇒ different cache key; the inline
        // spec also never collides with the builtin-by-name job.
        let tweaked = JobSpec::from_json(&inline_spec_body()).map(|mut j| {
            if let JobSpec::Simulate(s) = &mut j {
                if let ArchChoice::Custom(spec) = &mut s.arch {
                    spec.dataflow.efficiency = 0.5;
                }
            }
            j
        });
        assert_ne!(spec.cache_key(), tweaked.unwrap().cache_key());
        let builtin = JobSpec::from_json(
            r#"{"type":"simulate","arch":"tb-stc",
                "model":{"kind":"gcn","nodes":64,"features":16},
                "sparsity":0.5}"#,
        )
        .unwrap();
        assert_ne!(spec.cache_key(), builtin.cache_key());

        // Both arch forms at once is ambiguous.
        let doc = archspec::spec_to_value(&Arch::TbStc.model().spec());
        let both = format!(r#"{{"type":"simulate","arch":"tc","arch_spec":{doc},"model":"bert"}}"#);
        assert!(JobSpec::from_json(&both).is_err());

        // Malformed inline documents name the offending field.
        let mut doc = archspec::spec_to_value(&Arch::TbStc.model().spec());
        if let Json::Obj(m) = &mut doc {
            m.insert("wave_size".into(), Json::Int(32));
        }
        let body = format!(r#"{{"type":"simulate","arch_spec":{doc},"model":"bert"}}"#);
        let e = JobSpec::from_json(&body).unwrap_err().to_string();
        assert!(e.contains("arch_spec.wave_size"), "{e}");
    }

    #[test]
    fn inline_spec_execute_matches_builtin() {
        let engine = SweepRunner::new(HwConfig::with_bandwidth_gbps(DEFAULT_BANDWIDTH_GBPS));
        let inline = JobSpec::from_json(&inline_spec_body()).unwrap();
        let builtin = gcn_spec();
        let a = inline.execute(&engine);
        let b = builtin.execute(&engine);
        // Same simulation, different job documents: results identical.
        assert_eq!(a.get("result"), b.get("result"));
        assert_ne!(a.get("job"), b.get("job"));
    }

    #[test]
    fn arch_names_roundtrip() {
        for arch in Arch::ALL {
            assert_eq!(arch.canonical_name().parse::<Arch>(), Ok(arch));
        }
    }

    #[test]
    fn execute_is_deterministic_and_results_roundtrip() {
        let engine = SweepRunner::new(HwConfig::with_bandwidth_gbps(DEFAULT_BANDWIDTH_GBPS));
        let spec = gcn_spec();
        let a = spec.execute(&engine).to_string();
        let b = spec.execute(&engine).to_string();
        assert_eq!(a, b, "identical spec, identical body");

        let body = Json::parse(&a).unwrap();
        assert_eq!(body.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let result = model_result_from_value(body.get("result").unwrap()).unwrap();
        let again = model_result_to_value(&result);
        assert_eq!(body.get("result").unwrap(), &again, "result round-trips");
    }

    #[test]
    fn sim_job_roundtrips() {
        let job = SimJob {
            arch: Arch::RmStc,
            model: ModelSpec::Opt6_7b { tokens: 128 },
            sparsity: 0.75,
            seed: 3,
        };
        let back = sim_job_from_value(&sim_job_to_value(&job)).unwrap();
        assert_eq!(job, back);
    }
}
