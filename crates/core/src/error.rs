//! The shared error type of the experiment helpers and the serve
//! subsystem.

/// Errors the experiment helpers and the serve subsystem report instead
/// of panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An accuracy curve holds no measured points.
    EmptyCurve,
    /// A geometric mean was requested over a non-positive value.
    NonPositive {
        /// The offending value.
        value: f64,
    },
    /// Malformed JSON text (job spec, cached result, memo file).
    Parse(String),
    /// Well-formed JSON that is not a valid job spec or result.
    InvalidSpec(String),
    /// An I/O failure in the serve store or the HTTP transport.
    Io(String),
    /// An HTTP request/response violated the protocol subset we speak.
    Http(String),
    /// An internal invariant failed (poisoned lock, panicking job);
    /// the serve layer maps this to HTTP 500 instead of aborting.
    Internal(String),
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyCurve => write!(f, "accuracy curve has no measured points"),
            Error::NonPositive { value } => {
                write!(f, "geometric mean requires positive values, got {value}")
            }
            Error::Parse(msg) => write!(f, "json parse error: {msg}"),
            Error::InvalidSpec(msg) => write!(f, "invalid job spec: {msg}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::Http(msg) => write!(f, "http error: {msg}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        assert!(Error::EmptyCurve.to_string().contains("no measured points"));
        assert!(Error::NonPositive { value: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
