//! The shared error type of the experiment helpers.

/// Errors the experiment helpers can report instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An accuracy curve holds no measured points.
    EmptyCurve,
    /// A geometric mean was requested over a non-positive value.
    NonPositive {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyCurve => write!(f, "accuracy curve has no measured points"),
            Error::NonPositive { value } => {
                write!(f, "geometric mean requires positive values, got {value}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        assert!(Error::EmptyCurve.to_string().contains("no measured points"));
        assert!(Error::NonPositive { value: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
