//! Spec-driven architecture parity.
//!
//! Three guarantees, in increasing strength:
//!
//! 1. Every bundled `tbstc.v1` document is byte-canonical and decodes to
//!    exactly the spec its registry architecture reports.
//! 2. Interpreting a bundled document with [`CustomArch`] reproduces the
//!    native architecture's [`LayerResult`]s **bit-identically** over the
//!    same grid the sim crate's golden fixture pins (8 archs ×
//!    sparsities {0.5, 0.75, 0.9375} × two model layers, seed 1234).
//! 3. Any *valid* spec — not just the bundled eight — round-trips
//!    through canonical JSON byte-identically (property test).

use proptest::prelude::*;
use tbstc::archspec::{bundled, spec_from_json, spec_to_value};
use tbstc::models::LayerShape;
use tbstc::prelude::*;
use tbstc::sim::compute::SchedulePolicy;
use tbstc::sim::sched::{InterBlockPolicy, IntraBlockPolicy};
use tbstc::sim::{
    archs, simulate_layer_on, ArchSpec, CodecSpec, CustomArch, Dataflow, DatapathKind,
    DenseInfoPolicy, LayerResult, SimOptions, SlotTerm,
};

const SEED: u64 = 1234;
const SPARSITIES: [f64; 3] = [0.5, 0.75, 0.9375];

fn fixture_layers() -> Vec<LayerShape> {
    vec![
        bert_base(128).layers[0].clone(), // attn.q: 768 x 768 x 128
        resnet50(64).layers[3].clone(),   // conv2 3x3: 64 x 576 x 256
    ]
}

#[test]
fn bundled_documents_match_the_registry() {
    for (name, text) in bundled() {
        let model = archs::by_name(name).unwrap_or_else(|| panic!("no registry arch `{name}`"));
        let spec = spec_from_json(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            spec,
            model.spec(),
            "{name}: bundled spec drifted from the registry"
        );
        assert_eq!(
            text.trim_end(),
            spec_to_value(&model.spec()).to_string(),
            "{name}: bundled document is not the canonical rendering"
        );
    }
}

/// Bit-exact comparison of every `LayerResult` field except the arch id
/// (which is `Builtin` natively and `Custom` under interpretation, but
/// must agree on the canonical name).
fn assert_bit_identical(native: &LayerResult, custom: &LayerResult, ctx: &str) {
    assert_eq!(
        native.arch.canonical_name(),
        custom.arch.canonical_name(),
        "{ctx}: arch name"
    );
    assert_eq!(native.name, custom.name, "{ctx}: layer name");
    assert_eq!(native.cycles, custom.cycles, "{ctx}: cycles");
    assert_eq!(
        native.breakdown.compute, custom.breakdown.compute,
        "{ctx}: compute"
    );
    assert_eq!(
        native.breakdown.memory, custom.breakdown.memory,
        "{ctx}: memory"
    );
    assert_eq!(
        native.breakdown.codec_hidden, custom.breakdown.codec_hidden,
        "{ctx}: codec_hidden"
    );
    assert_eq!(
        native.breakdown.codec_exposed, custom.breakdown.codec_exposed,
        "{ctx}: codec_exposed"
    );
    assert_eq!(native.useful_macs, custom.useful_macs, "{ctx}: useful_macs");
    let bits = [
        (
            "compute_utilization",
            native.compute_utilization,
            custom.compute_utilization,
        ),
        (
            "bandwidth_utilization",
            native.bandwidth_utilization,
            custom.bandwidth_utilization,
        ),
        ("traffic_bytes", native.traffic_bytes, custom.traffic_bytes),
        ("energy_pj", native.energy_pj, custom.energy_pj),
    ];
    for (field, a, b) in bits {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: {field} {a:e} vs {b:e}");
    }
}

#[test]
fn interpreted_specs_are_bit_identical_to_native() {
    let cfg = HwConfig::paper_default();
    let opts = SimOptions::native();
    for (name, text) in bundled() {
        let native = archs::by_name(name).unwrap();
        let arch: Arch = name.parse().unwrap();
        let custom = CustomArch::new(spec_from_json(text).unwrap())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for shape in fixture_layers() {
            for sparsity in SPARSITIES {
                let layer = LayerSim::new(&shape)
                    .arch(arch)
                    .sparsity(sparsity)
                    .seed(SEED)
                    .build(&cfg);
                let a = simulate_layer_on(native, &layer, &cfg, &opts);
                let b = simulate_layer_on(&custom, &layer, &cfg, &opts);
                let ctx = format!("{name} sparsity={sparsity} layer={}", shape.name);
                assert_bit_identical(&a, &b, &ctx);
            }
        }
    }
}

/// Builds a valid spec from bounded integer choices — every combination
/// this produces must pass `ArchSpec::validate`.
#[allow(clippy::too_many_arguments)]
fn spec_from_choices(
    name_i: usize,
    pattern_i: usize,
    inter_i: usize,
    intra_i: usize,
    hier: usize,
    n_terms: usize,
    term_kind: usize,
    group: usize,
    mult_c: u32,
    eff_c: u32,
    row_frontend: usize,
    codec_i: usize,
    dense_info_i: usize,
    consumes: usize,
    bw_c: u32,
    lanes_c: usize,
    datapath_i: usize,
    mac_c: u32,
) -> ArchSpec {
    let pattern = match pattern_i {
        0 => PatternKind::Dense,
        1 => PatternKind::Unstructured,
        2 => PatternKind::TileNm,
        3 => PatternKind::RowWiseVegeta,
        4 => PatternKind::RowWiseHighlight,
        _ => PatternKind::Tbs,
    };
    let terms = (0..n_terms)
        .map(|i| match (term_kind + i) % 4 {
            0 => SlotTerm::Dense,
            1 => SlotTerm::Nnz,
            2 => SlotTerm::Lockstep { group },
            _ => SlotTerm::RatioGrouped { width: group },
        })
        .collect();
    let codec = match codec_i {
        0 => CodecSpec::DenseRows,
        1 => CodecSpec::AlignedNm,
        2 => CodecSpec::GroupedSdc { group },
        3 => CodecSpec::Sdc,
        4 => CodecSpec::Bitmap,
        5 => CodecSpec::DdcOrDense,
        _ => CodecSpec::Csr,
    };
    let datapath = match datapath_i {
        0 => DatapathKind::TensorCore,
        1 => DatapathKind::NvidiaStc,
        2 => DatapathKind::Vegeta,
        3 => DatapathKind::Highlight,
        4 => DatapathKind::RmStc,
        5 => DatapathKind::TbStc,
        6 => DatapathKind::DvpeWithFan,
        _ => DatapathKind::Sgcn,
    };
    ArchSpec {
        name: format!("arch-{name_i}"),
        display: format!("Arch {name_i}"),
        summary: "property-generated spec".into(),
        pattern,
        schedule: SchedulePolicy {
            inter: if inter_i == 0 {
                InterBlockPolicy::Direct
            } else {
                InterBlockPolicy::SparsityAware
            },
            intra: if intra_i == 0 {
                IntraBlockPolicy::Naive
            } else {
                IntraBlockPolicy::Balanced
            },
        },
        hierarchical_scheduling: hier != 0,
        dataflow: Dataflow {
            terms,
            multiplier: 1.0 + f64::from(mult_c) / 4.0,
            efficiency: f64::from(eff_c) / 100.0,
        },
        row_frontend: row_frontend != 0,
        codec,
        dense_info: match dense_info_i {
            0 => DenseInfoPolicy::Never,
            1 => DenseInfoPolicy::Always,
            _ => DenseInfoPolicy::NonTbsNative,
        },
        consumes_ddc: consumes != 0,
        bandwidth_gbps: (bw_c > 0).then(|| f64::from(bw_c) * 64.0 + 0.5),
        lanes: (lanes_c > 0).then_some(lanes_c * 8),
        datapath,
        mac_energy_multiplier: 1.0 + f64::from(mac_c) / 16.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A valid random spec renders to canonical JSON, decodes back to an
    /// equal spec, and re-renders to the exact same bytes.
    #[test]
    fn random_specs_round_trip_byte_identically(
        name_i in 0usize..50,
        pattern_i in 0usize..6,
        inter_i in 0usize..2,
        intra_i in 0usize..2,
        hier in 0usize..2,
        n_terms in 1usize..4,
        term_kind in 0usize..4,
        group in 1usize..9,
        mult_c in 0u32..50,
        eff_c in 1u32..101,
        row_frontend in 0usize..2,
        codec_i in 0usize..7,
        dense_info_i in 0usize..3,
        consumes in 0usize..2,
        bw_c in 0u32..5,
        lanes_c in 0usize..5,
        datapath_i in 0usize..8,
        mac_c in 0u32..20,
    ) {
        let spec = spec_from_choices(
            name_i, pattern_i, inter_i, intra_i, hier, n_terms, term_kind, group,
            mult_c, eff_c, row_frontend, codec_i, dense_info_i, consumes, bw_c,
            lanes_c, datapath_i, mac_c,
        );
        prop_assert_eq!(spec.validate(), Ok(()), "generator must only emit valid specs");
        let text = spec_to_value(&spec).to_string();
        let parsed = spec_from_json(&text).expect("canonical rendering must decode");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(spec_to_value(&parsed).to_string(), text);
    }
}
