//! 8-bit weight quantization (paper Fig. 15(b)).
//!
//! The paper applies symmetric per-row (per-output-channel) int8
//! quantization to TBS-pruned weights and reports that the additional
//! accuracy loss is almost negligible while halving weight traffic.
//! [`QuantizedMatrix`] implements exactly that scheme: each row gets a
//! scale `max|w| / 127` and weights are stored as `i8`.

use crate::matrix::Matrix;

/// A symmetric per-row int8 quantized matrix.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::{Matrix, quant::QuantizedMatrix};
///
/// let w = Matrix::from_rows(&[vec![0.5, -1.0], vec![0.25, 0.125]]).unwrap();
/// let q = QuantizedMatrix::quantize(&w);
/// let back = q.dequantize();
/// assert!(w.max_abs_diff(&back).unwrap() < 1.0 / 127.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major int8 codes.
    codes: Vec<i8>,
    /// Per-row dequantization scales.
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `w` with symmetric per-row scaling.
    ///
    /// Zero weights quantize to the zero code, so sparsity is preserved
    /// exactly — the property the pruned-then-quantized pipeline relies on.
    pub fn quantize(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let mut codes = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = w.row(r);
            let maxabs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
            scales.push(scale);
            for &x in row {
                let q = (x / scale).round().clamp(-127.0, 127.0);
                codes.push(q as i8);
            }
        }
        QuantizedMatrix {
            rows,
            cols,
            codes,
            scales,
        }
    }

    /// Reconstructs the floating-point matrix.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.codes[r * self.cols + c]) * self.scales[r]
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bytes occupied by the codes (1 byte per element).
    ///
    /// fp16 storage is 2 bytes per element, so int8 halves weight traffic —
    /// the source of the Fig. 15(b) speedup.
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Worst-case round-trip error bound for row `r`: half a quantization
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_error_bound(&self, r: usize) -> f32 {
        self.scales[r] * 0.5
    }
}

/// Bytes needed to store `elements` fp16 values.
pub fn fp16_bytes(elements: usize) -> usize {
    elements * 2
}

/// Bytes needed to store `elements` int8 values.
pub fn int8_bytes(elements: usize) -> usize {
    elements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;
    use proptest::prelude::*;

    #[test]
    fn round_trip_error_bounded() {
        let mut rng = MatrixRng::seed_from(11);
        let w = rng.weights(16, 64);
        let q = QuantizedMatrix::quantize(&w);
        let back = q.dequantize();
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                let err = (w[(r, c)] - back[(r, c)]).abs();
                assert!(err <= q.row_error_bound(r) + 1e-6);
            }
        }
    }

    #[test]
    fn zeros_stay_zero() {
        let mut rng = MatrixRng::seed_from(12);
        let w = rng.sparse_gaussian(16, 16, 0.5, 1.0);
        let back = QuantizedMatrix::quantize(&w).dequantize();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0, "sparsity must survive quantization");
            }
        }
        // Quantization may create new zeros (tiny values round to code 0)
        // but never destroys one.
        assert!(back.count_zeros() >= w.count_zeros());
    }

    #[test]
    fn all_zero_row_is_safe() {
        let w = Matrix::zeros(2, 4);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.dequantize(), w);
    }

    #[test]
    fn storage_halves_versus_fp16() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(8, 8));
        assert_eq!(q.code_bytes() * 2, fp16_bytes(64));
        assert_eq!(int8_bytes(64) * 2, fp16_bytes(64));
    }

    #[test]
    fn extreme_value_uses_full_range() {
        let w = Matrix::from_rows(&[vec![2.0, -2.0, 1.0, 0.0]]).unwrap();
        let q = QuantizedMatrix::quantize(&w);
        let back = q.dequantize();
        assert!((back[(0, 0)] - 2.0).abs() < 1e-6);
        assert!((back[(0, 1)] + 2.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn quantization_is_idempotent(seed in 0u64..500) {
            // Quantizing an already-dequantized matrix reproduces it exactly.
            let mut rng = MatrixRng::seed_from(seed);
            let w = rng.weights(4, 8);
            let once = QuantizedMatrix::quantize(&w).dequantize();
            let twice = QuantizedMatrix::quantize(&once).dequantize();
            prop_assert!(once.max_abs_diff(&twice).unwrap() < 1e-5);
        }
    }
}
