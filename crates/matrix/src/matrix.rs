//! Row-major dense matrix used throughout the reproduction.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::{DimError, Result};

/// A row-major dense `f32` matrix.
///
/// `Matrix` is the common currency between the sparsity algorithms, the
/// training substrate and the hardware simulator. It deliberately stays
/// small: the interesting numerics live in [`crate::gemm`] and the sparsity
/// logic lives in `tbstc-sparsity`.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`DimError`] if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let ncols = rows.first().map_or(0, Vec::len);
        for r in rows {
            if r.len() != ncols {
                return Err(DimError {
                    op: "from_rows",
                    lhs: (rows.len(), ncols),
                    rhs: (1, r.len()),
                });
            }
        }
        Ok(Matrix {
            rows: rows.len(),
            cols: ncols,
            data: rows.concat(),
        })
    }

    /// Creates a matrix that owns `data` laid out row-major.
    ///
    /// # Errors
    ///
    /// Returns [`DimError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(DimError {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (1, data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns element `(r, c)` or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns the transposed matrix.
    ///
    /// Walks `self` in cache-friendly square tiles so both the source rows
    /// and the destination rows stay resident while a tile is copied; the
    /// strided writes are confined to one tile-sized working set instead of
    /// sweeping the whole destination per source row.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] into a caller-owned buffer, reusing its
    /// allocation when the capacity suffices (the zero-realloc variant for
    /// workspaces refreshed every call).
    pub fn transpose_into(&self, out: &mut Matrix) {
        const TILE: usize = 32;
        out.reset(self.cols, self.rows);
        for r0 in (0..self.rows).step_by(TILE) {
            let rend = (r0 + TILE).min(self.rows);
            for c0 in (0..self.cols).step_by(TILE) {
                let cend = (c0 + TILE).min(self.cols);
                for r in r0..rend {
                    let src = &self.data[r * self.cols + c0..r * self.cols + cend];
                    for (c, &v) in (c0..cend).zip(src) {
                        out.data[c * self.rows + r] = v;
                    }
                }
            }
        }
    }

    /// Reshapes `self` to `rows × cols` filled with zeros, reusing the
    /// existing allocation when its capacity suffices.
    ///
    /// This is the zero-realloc counterpart of [`Matrix::zeros`] for
    /// workspace buffers that are resized every call with (eventually)
    /// stable dimensions.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an element-wise copy of `src`, reusing the existing
    /// allocation when its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Copies the sub-matrix starting at `(row0, col0)` of size
    /// `height × width`, zero-padding parts that fall outside `self`.
    ///
    /// Zero-padding (rather than erroring) matches how the hardware tiles a
    /// matrix whose dimensions are not multiples of the block size. For
    /// hot loops that only *read* a block, prefer [`Matrix::block_view`],
    /// which borrows instead of allocating.
    pub fn block(&self, row0: usize, col0: usize, height: usize, width: usize) -> Matrix {
        Matrix::from_fn(height, width, |r, c| {
            self.get(row0 + r, col0 + c).unwrap_or(0.0)
        })
    }

    /// Borrows the sub-matrix starting at `(row0, col0)` of size
    /// `height × width` without copying; reads outside `self` yield `0.0`,
    /// exactly like the padding in [`Matrix::block`].
    pub fn block_view(
        &self,
        row0: usize,
        col0: usize,
        height: usize,
        width: usize,
    ) -> BlockView<'_> {
        BlockView {
            source: self,
            row0,
            col0,
            height,
            width,
        }
    }

    /// Writes `block` into `self` at `(row0, col0)`, ignoring parts that
    /// fall outside `self` (the inverse of the padding in [`Matrix::block`]).
    pub fn set_block(&mut self, row0: usize, col0: usize, block: &Matrix) {
        for r in 0..block.rows {
            for c in 0..block.cols {
                if row0 + r < self.rows && col0 + c < self.cols {
                    self[(row0 + r, col0 + c)] = block[(r, c)];
                }
            }
        }
    }

    /// Counts elements that are exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Counts non-zero elements.
    pub fn count_nonzeros(&self) -> usize {
        self.len() - self.count_zeros()
    }

    /// Fraction of elements that are zero (the paper's *sparsity degree*).
    ///
    /// Returns `0.0` for an empty matrix.
    pub fn sparsity(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.count_zeros() as f64 / self.len() as f64
        }
    }

    /// Sum of `|x|` over all elements (the `L1` mass used by Algorithm 1).
    pub fn l1_norm(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x.abs())).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise maximum absolute difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`DimError`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(DimError {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Element-wise product (Hadamard), used to apply binary masks.
    ///
    /// # Errors
    ///
    /// Returns [`DimError`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(DimError {
                op: "hadamard",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

/// A borrowed, zero-padded window into a [`Matrix`].
///
/// Created by [`Matrix::block_view`]. Reads at coordinates whose source
/// position falls outside the underlying matrix return `0.0`, mirroring
/// the padding semantics of [`Matrix::block`] — but without allocating a
/// sub-matrix, which is what makes per-block loops (the TBS sparsifier
/// visits every `M × M` block of every layer) allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    source: &'a Matrix,
    row0: usize,
    col0: usize,
    height: usize,
    width: usize,
}

impl BlockView<'_> {
    /// Number of rows in the window (including padding).
    pub fn rows(&self) -> usize {
        self.height
    }

    /// Number of columns in the window (including padding).
    pub fn cols(&self) -> usize {
        self.width
    }

    /// Element `(r, c)` of the window; `0.0` where the window hangs off
    /// the underlying matrix.
    ///
    /// # Panics
    ///
    /// Panics when `(r, c)` is outside the window itself.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.height && c < self.width,
            "view index ({r}, {c}) out of bounds for {}x{} view",
            self.height,
            self.width
        );
        self.source.get(self.row0 + r, self.col0 + c).unwrap_or(0.0)
    }

    /// Sum of `|x|` over the window (the `L1` mass used by Algorithm 1).
    ///
    /// Padding contributes zero, so this equals
    /// `self.to_matrix().l1_norm()` without the copy.
    pub fn l1_norm(&self) -> f64 {
        let rmax = (self.row0 + self.height).min(self.source.rows);
        let cmax = (self.col0 + self.width).min(self.source.cols);
        let mut sum = 0.0f64;
        for r in self.row0..rmax {
            let row = &self.source.row(r)[self.col0..cmax];
            sum += row.iter().map(|&x| f64::from(x.abs())).sum::<f64>();
        }
        sum
    }

    /// Materializes the window as an owned [`Matrix`] (equivalent to
    /// [`Matrix::block`]).
    pub fn to_matrix(&self) -> Matrix {
        self.source
            .block(self.row0, self.col0, self.height, self.width)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row: Vec<String> = self.row(r)[..self.cols.min(8)]
                .iter()
                .map(|x| format!("{x:8.3}"))
                .collect();
            let ellipsis = if self.cols > 8 { " ..." } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert_eq!(m.count_zeros(), 12);
        assert_eq!(m.sparsity(), 1.0);
    }

    #[test]
    fn identity_multiown_diag() {
        let m = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(err.op, "from_rows");
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn block_pads_with_zero() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c + 1) as f32);
        let b = m.block(2, 2, 2, 2);
        assert_eq!(b[(0, 0)], 9.0);
        assert_eq!(b[(0, 1)], 0.0);
        assert_eq!(b[(1, 0)], 0.0);
        assert_eq!(b[(1, 1)], 0.0);
    }

    #[test]
    fn set_block_roundtrip() {
        let m = Matrix::from_fn(6, 6, |r, c| (r * 6 + c) as f32);
        let mut out = Matrix::zeros(6, 6);
        for r0 in (0..6).step_by(2) {
            for c0 in (0..6).step_by(2) {
                out.set_block(r0, c0, &m.block(r0, c0, 2, 2));
            }
        }
        assert_eq!(out, m);
    }

    #[test]
    fn set_block_ignores_out_of_bounds() {
        let mut m = Matrix::zeros(2, 2);
        m.set_block(1, 1, &Matrix::filled(2, 2, 7.0));
        assert_eq!(m[(1, 1)], 7.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn sparsity_counts() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap();
        assert_eq!(m.count_zeros(), 2);
        assert_eq!(m.count_nonzeros(), 2);
        assert_eq!(m.sparsity(), 0.5);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, -4.0]]).unwrap();
        assert_eq!(m.l1_norm(), 7.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_applies_mask() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mask = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let out = m.hadamard(&mask).unwrap();
        assert_eq!(out[(0, 1)], 0.0);
        assert_eq!(out[(1, 1)], 4.0);
    }

    #[test]
    fn hadamard_rejects_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.hadamard(&b).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn debug_is_nonempty() {
        let dbg = format!("{:?}", Matrix::zeros(1, 1));
        assert!(dbg.contains("Matrix 1x1"));
    }

    #[test]
    fn transpose_matches_naive_on_odd_shapes() {
        // Exercise the tiled path with dimensions straddling tile edges.
        for (rows, cols) in [(1, 1), (7, 3), (33, 65), (64, 64), (100, 37)] {
            let m = Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
            let t = m.transpose();
            assert_eq!(t.shape(), (cols, rows));
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(t[(c, r)], m[(r, c)], "({rows}x{cols}) at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn block_view_matches_block() {
        let m = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32 - 10.0);
        let v = m.block_view(3, 5, 4, 4);
        let b = m.block(3, 5, 4, 4);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.cols(), 4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(v.get(r, c), b[(r, c)]);
            }
        }
        assert_eq!(v.to_matrix(), b);
        assert!((v.l1_norm() - b.l1_norm()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_view_checks_window_bounds() {
        let m = Matrix::zeros(4, 4);
        let _ = m.block_view(0, 0, 2, 2).get(2, 0);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut m = Matrix::filled(8, 8, 3.0);
        let cap = m.data.capacity();
        m.reset(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap, "shrinking reset must not realloc");
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let mut dst = Matrix::filled(9, 9, 1.0);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(1, 1)] = 1.5;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
    }
}
