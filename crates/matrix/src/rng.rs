//! Deterministic matrix generators.
//!
//! Every experiment in the benchmark harness is seeded so that repeated runs
//! regenerate the same tables. [`MatrixRng`] wraps a seeded [`StdRng`] with
//! matrix-shaped convenience constructors, including generators that mimic
//! trained-weight statistics (approximately Gaussian with a heavy spike near
//! zero), which is what makes magnitude pruning meaningful.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// A seeded random generator that produces matrices.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::rng::MatrixRng;
///
/// let mut a = MatrixRng::seed_from(42);
/// let mut b = MatrixRng::seed_from(42);
/// assert_eq!(a.gaussian(4, 4, 0.0, 1.0), b.gaussian(4, 4, 0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct MatrixRng {
    rng: StdRng,
}

impl MatrixRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        MatrixRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform values in `[lo, hi)`.
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        let dist = Uniform::new(lo, hi);
        Matrix::from_fn(rows, cols, |_, _| dist.sample(&mut self.rng))
    }

    /// Gaussian values via Box–Muller (mean `mu`, standard deviation `sigma`).
    pub fn gaussian(&mut self, rows: usize, cols: usize, mu: f32, sigma: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| mu + sigma * self.standard_normal())
    }

    /// One standard-normal sample.
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller; u is kept away from 0 to avoid ln(0).
        let u: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let v: f32 = self.rng.gen_range(0.0..std::f32::consts::TAU);
        (-2.0 * u.ln()).sqrt() * v.cos()
    }

    /// Weight-like values: Gaussian scaled by `1/sqrt(fan_in)` (Kaiming-ish),
    /// matching the magnitude statistics of trained layers closely enough
    /// for pruning experiments.
    pub fn weights(&mut self, rows: usize, cols: usize) -> Matrix {
        let sigma = (2.0 / cols as f32).sqrt();
        self.gaussian(rows, cols, 0.0, sigma)
    }

    /// A matrix whose elements are zero with probability `sparsity`, and
    /// otherwise Gaussian — an *unstructured* sparse matrix.
    pub fn sparse_gaussian(
        &mut self,
        rows: usize,
        cols: usize,
        sparsity: f64,
        sigma: f32,
    ) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            if self.rng.gen_bool(sparsity) {
                0.0
            } else {
                sigma * self.standard_normal()
            }
        })
    }

    /// Weight-like values with *block-local lane structure*: the matrix is
    /// tiled into `m × m` blocks and each block concentrates its magnitude
    /// in a few random rows or columns (or stays uniform).
    ///
    /// Trained DNN weights exhibit exactly this local heterogeneity — it is
    /// what makes the choice of sparsity *dimension* matter per block
    /// (TB-STC paper Fig. 17 measures ~46 % column-oriented blocks on
    /// ResNet-50). I.i.d. Gaussian weights have no such structure and make
    /// all N:M patterns look alike.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn block_structured_weights(&mut self, rows: usize, cols: usize, m: usize) -> Matrix {
        self.block_structured_weights_with(rows, cols, m, 2.0, 0.15, 1.3)
    }

    /// [`MatrixRng::block_structured_weights`] with explicit structure
    /// strength: heavy lanes are scaled by `heavy`, light lanes by
    /// `light`, and per-block magnitudes span `2^±block_range`. Smaller
    /// contrast models late-training weights whose importance is spread
    /// more evenly.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn block_structured_weights_with(
        &mut self,
        rows: usize,
        cols: usize,
        m: usize,
        heavy: f32,
        light: f32,
        block_range: f32,
    ) -> Matrix {
        assert!(m > 0, "block size must be positive");
        let sigma = (2.0 / cols as f32).sqrt();
        let grid_rows = rows.div_ceil(m);
        let grid_cols = cols.div_ceil(m);
        // Per block: an overall magnitude scale (blocks of a trained layer
        // differ strongly in importance, which is what lets per-block N
        // selection beat a uniform ratio), an orientation
        // (0 = row-heavy, 1 = col-heavy, 2 = flat) and per-lane scales.
        let mut block_scale = vec![1.0f32; grid_rows * grid_cols];
        let mut lane_scale = vec![vec![1.0f32; m]; grid_rows * grid_cols];
        let mut orient = vec![2u8; grid_rows * grid_cols];
        for b in 0..grid_rows * grid_cols {
            // Log-uniform block magnitude over 2^±block_range.
            block_scale[b] = f32::powf(2.0, self.rng.gen_range(-block_range..block_range));
            // Trained conv/attention layers concentrate importance in a few
            // *rows* (output channels / heads) of a block more often than in
            // columns — the TB-STC paper measures ~46 % column-direction vs
            // ~19 % row-direction blocks on ResNet-50 (Fig. 17), and
            // row-heavy blocks are the ones that need the column
            // (independent-dimension) constraint.
            let u = self.rng.gen_range(0.0f64..1.0);
            let o = if u < 0.40 {
                0 // row-heavy
            } else if u < 0.62 {
                1 // col-heavy
            } else {
                2 // flat
            };
            orient[b] = o;
            if o != 2 {
                // A few heavy lanes, the rest attenuated.
                let heavy_lanes = self.rng.gen_range(1..=m.div_ceil(2));
                let mut lanes: Vec<usize> = (0..m).collect();
                self.shuffle(&mut lanes);
                for (i, &lane) in lanes.iter().enumerate() {
                    lane_scale[b][lane] = if i < heavy_lanes { heavy } else { light };
                }
            }
        }
        Matrix::from_fn(rows, cols, |r, c| {
            let b = (r / m) * grid_cols + (c / m);
            let scale = block_scale[b]
                * match orient[b] {
                    0 => lane_scale[b][r % m], // row-heavy: scale by block row
                    1 => lane_scale[b][c % m], // col-heavy: scale by block column
                    _ => 1.0,
                };
            sigma * scale * self.standard_normal()
        })
    }

    /// One uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// One integer sample in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = MatrixRng::seed_from(1);
        let mut b = MatrixRng::seed_from(1);
        assert_eq!(a.uniform(3, 3, 0.0, 1.0), b.uniform(3, 3, 0.0, 1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MatrixRng::seed_from(1);
        let mut b = MatrixRng::seed_from(2);
        assert_ne!(a.uniform(8, 8, 0.0, 1.0), b.uniform(8, 8, 0.0, 1.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = MatrixRng::seed_from(3);
        let m = rng.uniform(20, 20, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = MatrixRng::seed_from(4);
        let m = rng.gaussian(100, 100, 1.0, 2.0);
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().map(|&x| f64::from(x)).sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn sparse_gaussian_hits_target_sparsity() {
        let mut rng = MatrixRng::seed_from(5);
        let m = rng.sparse_gaussian(100, 100, 0.75, 1.0);
        assert!((m.sparsity() - 0.75).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = MatrixRng::seed_from(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weights_scale_with_fan_in() {
        let mut rng = MatrixRng::seed_from(7);
        let wide = rng.weights(10, 1000);
        let narrow = rng.weights(10, 10);
        assert!(
            wide.frobenius_norm() / (wide.len() as f64).sqrt()
                < narrow.frobenius_norm() / (narrow.len() as f64).sqrt()
        );
    }
}
