//! Software emulation of IEEE-754 binary16 ("half precision").
//!
//! The TB-STC datapath computes in FP16 (8 FP16 multipliers per DVPE). The
//! simulator does not need bit-exact FP16 arithmetic, but the accuracy
//! experiments do need the *rounding behaviour* so that quantization studies
//! (paper Fig. 15(b)) compare fp16 weights against int8 weights honestly.
//!
//! [`F16`] stores the 16-bit pattern and converts to/from `f32` with
//! round-to-nearest-even, matching hardware conversion units.

use std::fmt;

/// An IEEE-754 binary16 value stored as its raw 16-bit pattern.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::F16;
///
/// let x = F16::from_f32(1.0);
/// assert_eq!(x.to_f32(), 1.0);
/// // binary16 has 10 mantissa bits: 1 + 2^-11 rounds to 1.0.
/// let y = F16::from_f32(1.0 + f32::powi(2.0, -11));
/// assert_eq!(y.to_f32(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The largest finite binary16 value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);

    /// Creates an `F16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values above the binary16 range become infinity; subnormal results
    /// are rounded correctly.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
            let m = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | m);
        }

        // Re-bias exponent: f32 bias 127 -> f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7C00); // overflow to infinity
        }
        if unbiased >= -14 {
            // Normal range. Keep top 10 mantissa bits, round to nearest even.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let shifted = mant >> 13;
            let rounding = round_bit(mant, 13);
            let mut out = sign | half_exp | shifted as u16;
            out = out.wrapping_add(rounding as u16);
            return F16(out); // carry into exponent is correct by construction
        }
        if unbiased >= -24 {
            // Subnormal range: implicit leading 1 becomes explicit.
            let full = mant | 0x0080_0000;
            let shift = (-unbiased - 14 + 13) as u32;
            let shifted = full >> shift;
            let rounding = round_bit(full, shift);
            let out = sign | (shifted as u16).wrapping_add(rounding as u16);
            return F16(out);
        }
        F16(sign) // underflow to zero
    }

    /// Converts this binary16 value to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;
        let bits = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: value = mant * 2^-24. Normalize so the leading
                // one becomes the implicit f32 bit.
                let shift = mant.leading_zeros() - 21; // 10 - position of leading one
                let m = (mant << shift) & 0x03FF;
                let e = 113 - shift; // biased exponent: (9 - shift + 1) - 24 + 127
                sign | (e << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Rounds an `f32` through binary16 precision and back.
    ///
    /// This is the "store to fp16 register, read back" operation the
    /// accuracy experiments use to emulate the datapath precision.
    pub fn round_trip(value: f32) -> f32 {
        Self::from_f32(value).to_f32()
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

/// Computes the round-to-nearest-even increment when truncating the low
/// `shift` bits of `mant`.
fn round_bit(mant: u32, shift: u32) -> u32 {
    let halfway = 1u32 << (shift - 1);
    let low = mant & ((1 << shift) - 1);
    let kept_lsb = (mant >> shift) & 1;
    u32::from(low > halfway || (low == halfway && kept_lsb == 1))
}

impl From<F16> for f32 {
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::round_trip(x), x, "integer {i} should be exact");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let x = f32::powi(2.0, e);
            assert_eq!(F16::round_trip(x), x);
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn max_value_is_65504() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-10).to_f32(), 0.0);
    }

    #[test]
    fn subnormals_are_representable() {
        // Smallest positive subnormal is 2^-24.
        let tiny = f32::powi(2.0, -24);
        assert_eq!(F16::round_trip(tiny), tiny);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10;
        // even mantissa (1.0) wins.
        assert_eq!(F16::round_trip(1.0 + f32::powi(2.0, -11)), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; the even
        // neighbour is 1 + 2^-9... mantissa of 1+2^-10 is odd (1), so round up.
        let up = F16::round_trip(1.0 + 3.0 * f32::powi(2.0, -11));
        assert_eq!(up, 1.0 + f32::powi(2.0, -9));
    }

    proptest! {
        #[test]
        fn round_trip_is_idempotent(x in -65504.0f32..65504.0) {
            let once = F16::round_trip(x);
            let twice = F16::round_trip(once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn relative_error_within_half_ulp(x in 1e-3f32..6e4) {
            let r = F16::round_trip(x);
            // binary16 has 10 mantissa bits -> rel error <= 2^-11.
            let rel = ((r - x) / x).abs();
            prop_assert!(rel <= f32::powi(2.0, -11) + f32::EPSILON);
        }

        #[test]
        fn sign_symmetry(x in -6e4f32..6e4) {
            prop_assert_eq!(F16::round_trip(-x), -F16::round_trip(x));
        }

        #[test]
        fn monotone_on_positives(a in 0.0f32..6e4, b in 0.0f32..6e4) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(F16::round_trip(lo) <= F16::round_trip(hi));
        }
    }
}
