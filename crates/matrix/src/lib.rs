//! Dense-matrix substrate for the TB-STC reproduction.
//!
//! This crate provides the numeric foundation every other crate builds on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with block/tile views,
//! * [`F16`] — a software emulation of IEEE-754 binary16 (the datatype the
//!   TB-STC datapath computes in),
//! * [`gemm`] — reference dense and masked matrix-multiplication kernels
//!   (`D = A × B + C`), used as the golden model the simulator and the
//!   storage-format round-trips are checked against,
//! * [`tile`] — iterators over `M × M` blocks (the granularity of the TBS
//!   sparsity pattern),
//! * [`pool`] — the scoped thread pool used by the blocked kernels and
//!   re-exported by `tbstc-runner` for experiment fan-out,
//! * [`quant`] — 8-bit weight quantization (paper Fig. 15(b)),
//! * [`rng`] — deterministic matrix generators for workloads and tests.
//!
//! # Examples
//!
//! ```
//! use tbstc_matrix::{Matrix, gemm};
//!
//! let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::identity(3);
//! let d = gemm::matmul(&a, &b);
//! assert_eq!(d, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod f16;
mod matrix;

pub mod gemm;
pub mod pool;
pub mod quant;
pub mod rng;
pub mod tile;

pub use error::{DimError, Result};
pub use f16::F16;
pub use matrix::{BlockView, Matrix};
