//! Block/tile iteration over matrices.
//!
//! The TBS pattern operates on `M × M` blocks of the weight matrix
//! (paper §III-A); the hardware schedulers operate on the same granularity.
//! [`Blocks`] enumerates the blocks of a matrix in row-major block order,
//! zero-padding edge blocks, together with their [`BlockCoord`].

use crate::matrix::Matrix;

/// Grid coordinates of a block within a tiled matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockCoord {
    /// Block-row index (not element row).
    pub block_row: usize,
    /// Block-column index (not element column).
    pub block_col: usize,
}

impl BlockCoord {
    /// Element-space origin of this block for block size `m`.
    pub fn origin(&self, m: usize) -> (usize, usize) {
        (self.block_row * m, self.block_col * m)
    }
}

/// Number of blocks needed to cover `len` elements with blocks of size `m`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn blocks_along(len: usize, m: usize) -> usize {
    assert!(m > 0, "block size must be positive");
    len.div_ceil(m)
}

/// Iterator over the `M × M` blocks of a matrix.
///
/// Edge blocks are zero-padded, matching [`Matrix::block`].
///
/// # Examples
///
/// ```
/// use tbstc_matrix::{Matrix, tile::Blocks};
///
/// let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
/// let blocks: Vec<_> = Blocks::new(&m, 2).collect();
/// assert_eq!(blocks.len(), 4);
/// assert_eq!(blocks[3].1[(0, 0)], 10.0); // bottom-right block
/// ```
#[derive(Debug)]
pub struct Blocks<'a> {
    matrix: &'a Matrix,
    m: usize,
    grid_rows: usize,
    grid_cols: usize,
    next: usize,
}

impl<'a> Blocks<'a> {
    /// Creates a block iterator with block size `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(matrix: &'a Matrix, m: usize) -> Self {
        Blocks {
            matrix,
            m,
            grid_rows: blocks_along(matrix.rows(), m),
            grid_cols: blocks_along(matrix.cols(), m),
            next: 0,
        }
    }

    /// The block-grid shape `(block_rows, block_cols)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }
}

impl Iterator for Blocks<'_> {
    type Item = (BlockCoord, Matrix);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.grid_rows * self.grid_cols {
            return None;
        }
        let coord = BlockCoord {
            block_row: self.next / self.grid_cols,
            block_col: self.next % self.grid_cols,
        };
        self.next += 1;
        let (r0, c0) = coord.origin(self.m);
        Some((coord, self.matrix.block(r0, c0, self.m, self.m)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.grid_rows * self.grid_cols - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Blocks<'_> {}

/// Reassembles a matrix of shape `(rows, cols)` from `(coord, block)` pairs
/// produced by [`Blocks`].
pub fn assemble(
    rows: usize,
    cols: usize,
    m: usize,
    blocks: impl IntoIterator<Item = (BlockCoord, Matrix)>,
) -> Matrix {
    let mut out = Matrix::zeros(rows, cols);
    for (coord, block) in blocks {
        let (r0, c0) = coord.origin(m);
        out.set_block(r0, c0, &block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_count_covers_matrix() {
        let m = Matrix::zeros(10, 7);
        let blocks = Blocks::new(&m, 4);
        assert_eq!(blocks.grid(), (3, 2));
        assert_eq!(blocks.count(), 6);
    }

    #[test]
    fn exact_size_hint() {
        let m = Matrix::zeros(8, 8);
        let mut it = Blocks::new(&m, 4);
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn blocks_are_row_major() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let coords: Vec<_> = Blocks::new(&m, 2).map(|(c, _)| c).collect();
        assert_eq!(
            coords,
            vec![
                BlockCoord {
                    block_row: 0,
                    block_col: 0
                },
                BlockCoord {
                    block_row: 0,
                    block_col: 1
                },
                BlockCoord {
                    block_row: 1,
                    block_col: 0
                },
                BlockCoord {
                    block_row: 1,
                    block_col: 1
                },
            ]
        );
    }

    #[test]
    fn edge_blocks_zero_padded() {
        let m = Matrix::filled(3, 3, 5.0);
        let last = Blocks::new(&m, 2).last().unwrap().1;
        assert_eq!(last[(0, 0)], 5.0);
        assert_eq!(last[(1, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = Blocks::new(&m, 0);
    }

    proptest! {
        #[test]
        fn assemble_inverts_blocks(rows in 1usize..20, cols in 1usize..20, m in 1usize..9) {
            let mat = Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32 + 1.0);
            let rebuilt = assemble(rows, cols, m, Blocks::new(&mat, m));
            prop_assert_eq!(rebuilt, mat);
        }
    }
}
