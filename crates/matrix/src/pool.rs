//! The scoped thread pool shared by the GEMM kernels and the experiment
//! runner.
//!
//! Workers are plain `std::thread::scope` threads pulling job indices
//! from a shared atomic counter (work-stealing at index granularity), so
//! the pool needs no channels, no job queue and no dependencies. Results
//! land in per-job slots, which makes the output order — and therefore
//! every downstream aggregate — independent of scheduling.
//!
//! The pool lives in `tbstc-matrix` (the bottom of the crate graph) so the
//! cache-blocked kernels in [`crate::gemm`] can split their output over row
//! panels; `tbstc-runner` re-exports everything here unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker count (like `make -jN`).
pub const JOBS_ENV: &str = "TBSTC_JOBS";

/// The worker count the runner uses by default: `TBSTC_JOBS` when set to
/// a positive integer, otherwise [`std::thread::available_parallelism`].
pub fn available_workers() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on up to `workers` threads, returning the
/// results **in input order** together with each job's wall time.
///
/// `f` receives `(index, &item)`. With one worker (or one item) the map
/// runs inline on the caller's thread — no spawn overhead, and a handy
/// reference implementation for the determinism guarantee: because each
/// result depends only on its item, the parallel output is bit-identical
/// to this serial path.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<(R, Duration)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let timed = |i: usize, item: &T| {
        let start = Instant::now();
        let r = f(i, item);
        (r, start.elapsed())
    };
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| timed(i, t)).collect();
    }

    let slots: Vec<Mutex<Option<(R, Duration)>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(items.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = timed(i, item);
                // Poison here only means another worker panicked while
                // writing a *different* slot; this slot's write is whole.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // tbstc-lint: allow(panic-surface) — scope() already
                // propagated any worker panic; an empty slot is a logic bug.
                .expect("worker exited before filling its slot")
        })
        .collect()
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` on up to `workers`
/// threads.
///
/// Chunks are disjoint `&mut` slices, so each invocation exclusively owns
/// its output range: the result is **bit-identical** to the serial loop
/// regardless of scheduling. Chunk indices are dealt round-robin before any
/// thread starts, keeping the primitive allocation-light and lock-free.
///
/// With one worker (or a single chunk) the loop runs inline on the caller's
/// thread.
///
/// # Panics
///
/// Panics if `chunk_len == 0` and `data` is non-empty.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let nchunks = data.len().div_ceil(chunk_len);
    if workers <= 1 || nchunks <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }

    let w = workers.min(nchunks);
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..w).map(|_| Vec::new()).collect();
    for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
        buckets[ci % w].push((ci, chunk));
    }
    std::thread::scope(|s| {
        for bucket in buckets {
            let f = &f;
            s.spawn(move || {
                for (ci, chunk) in bucket {
                    f(ci, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&items, 8, |_, &x| x * 2);
        let vals: Vec<usize> = out.iter().map(|(r, _)| *r).collect();
        assert_eq!(vals, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..33).collect();
        let f = |i: usize, x: &u64| x.wrapping_mul(0x9e3779b97f4a7c15) ^ i as u64;
        let serial: Vec<u64> = parallel_map(&items, 1, f)
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        let parallel: Vec<u64> = parallel_map(&items, 7, f)
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn index_is_passed_through() {
        let items = vec!["a", "b", "c"];
        let out = parallel_map(&items, 2, |i, _| i);
        assert_eq!(
            out.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let out = parallel_map::<u32, u32, _>(&[], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_floor_is_one() {
        assert!(available_workers() >= 1);
    }

    #[test]
    fn chunks_cover_everything_once() {
        for workers in [1, 3, 8] {
            let mut data = vec![0u32; 103];
            parallel_chunks_mut(&mut data, 10, workers, |ci, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x = (ci * 10 + off) as u32 + 1;
                }
            });
            let expect: Vec<u32> = (1..=103).collect();
            assert_eq!(data, expect, "workers={workers}");
        }
    }

    #[test]
    fn chunks_parallel_matches_serial() {
        let fill = |ci: usize, chunk: &mut [f32]| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = (ci as f32).mul_add(1.5, off as f32 * 0.25);
            }
        };
        let mut serial = vec![0.0f32; 77];
        parallel_chunks_mut(&mut serial, 8, 1, fill);
        let mut parallel = vec![0.0f32; 77];
        parallel_chunks_mut(&mut parallel, 8, 5, fill);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunks_empty_input_is_fine() {
        let mut data: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut data, 0, 4, |_, _| unreachable!());
    }
}
