//! Reference matrix-multiplication kernels.
//!
//! These are the golden models for SpMM (`D = A × B + C`, paper §II-A).
//! The cycle-level simulator never *computes* with them (it only counts
//! cycles), but every storage-format round-trip and every dataflow variant
//! is validated against these kernels in the integration tests.

use crate::error::{DimError, Result};
use crate::f16::F16;
use crate::matrix::Matrix;

/// Computes `A × B` with dimension checking.
///
/// # Errors
///
/// Returns [`DimError`] when `A.cols() != B.rows()`.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::{Matrix, gemm};
///
/// let a = Matrix::filled(2, 3, 1.0);
/// let b = Matrix::filled(3, 2, 1.0);
/// let d = gemm::try_matmul(&a, &b)?;
/// assert_eq!(d[(0, 0)], 3.0);
/// # Ok::<(), tbstc_matrix::DimError>(())
/// ```
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(DimError {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut d = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let drow = d.row_mut(i);
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue; // skip zeros: same arithmetic, faster golden model
            }
            let brow = b.row(p);
            for (j, out) in drow.iter_mut().enumerate() {
                *out += aval * brow[j];
            }
        }
    }
    debug_assert_eq!(k, b.rows());
    Ok(d)
}

/// Computes `A × B`.
///
/// # Panics
///
/// Panics when `A.cols() != B.rows()`; use [`try_matmul`] to handle the
/// error instead.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    try_matmul(a, b).expect("matmul dimension mismatch")
}

/// Computes the full SpMM operator `D = A × B + C` (paper §II-A).
///
/// # Errors
///
/// Returns [`DimError`] when the inner dimensions disagree or `C` does not
/// have shape `(A.rows(), B.cols())`.
pub fn try_spmm(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix> {
    let mut d = try_matmul(a, b)?;
    if c.shape() != d.shape() {
        return Err(DimError {
            op: "spmm bias add",
            lhs: d.shape(),
            rhs: c.shape(),
        });
    }
    for (out, &bias) in d.as_mut_slice().iter_mut().zip(c.as_slice()) {
        *out += bias;
    }
    Ok(d)
}

/// Computes `A × B` with every product and accumulation rounded through
/// binary16, emulating the FP16 DVPE datapath.
///
/// # Errors
///
/// Returns [`DimError`] when `A.cols() != B.rows()`.
pub fn try_matmul_f16(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(DimError {
            op: "matmul_f16",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, _) = a.shape();
    let n = b.cols();
    let mut d = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..a.cols() {
                let prod = F16::round_trip(F16::round_trip(a[(i, p)]) * F16::round_trip(b[(p, j)]));
                acc = F16::round_trip(acc + prod);
            }
            d[(i, j)] = acc;
        }
    }
    Ok(d)
}

/// Number of scalar multiply-accumulate operations a dense `A × B` performs.
pub fn dense_macs(a: &Matrix, b: &Matrix) -> u64 {
    a.rows() as u64 * a.cols() as u64 * b.cols() as u64
}

/// Number of MACs a sparsity-skipping kernel performs: one per non-zero of
/// `A` per column of `B`.
pub fn sparse_macs(a: &Matrix, b_cols: usize) -> u64 {
    a.count_nonzeros() as u64 * b_cols as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;
    use proptest::prelude::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + 2 * c) as f32);
        assert_eq!(matmul(&a, &Matrix::identity(3)), a);
        assert_eq!(matmul(&Matrix::identity(3), &a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let d = matmul(&a, &b);
        assert_eq!(
            d,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn spmm_adds_bias() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let c = Matrix::filled(2, 2, 10.0);
        let d = try_spmm(&a, &b, &c).unwrap();
        assert_eq!(d, Matrix::filled(2, 2, 11.0));
    }

    #[test]
    fn spmm_rejects_bad_bias_shape() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let c = Matrix::zeros(3, 3);
        assert!(try_spmm(&a, &b, &c).is_err());
    }

    #[test]
    fn mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = try_matmul(&a, &b).unwrap_err();
        assert_eq!(err.lhs, (2, 3));
    }

    #[test]
    fn mac_counts() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0]]).unwrap();
        let b = Matrix::zeros(3, 4);
        assert_eq!(dense_macs(&a, &b), 12);
        assert_eq!(sparse_macs(&a, 4), 8);
    }

    #[test]
    fn f16_matmul_close_to_f32() {
        let mut rng = MatrixRng::seed_from(7);
        let a = rng.uniform(8, 8, -1.0, 1.0);
        let b = rng.uniform(8, 8, -1.0, 1.0);
        let exact = matmul(&a, &b);
        let half = try_matmul_f16(&a, &b).unwrap();
        // 8-term fp16 accumulation of O(1) values: generous tolerance.
        assert!(exact.max_abs_diff(&half).unwrap() < 0.05);
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_transpose(seed in 0u64..1000) {
            // (A B)^T == B^T A^T
            let mut rng = MatrixRng::seed_from(seed);
            let a = rng.uniform(4, 6, -2.0, 2.0);
            let b = rng.uniform(6, 3, -2.0, 2.0);
            let lhs = matmul(&a, &b).transpose();
            let rhs = matmul(&b.transpose(), &a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-4);
        }

        #[test]
        fn zero_rows_skip_is_equivalent(seed in 0u64..1000) {
            // Masking A then multiplying equals multiplying the masked A:
            // exercises the zero-skip fast path against the dense path.
            let mut rng = MatrixRng::seed_from(seed);
            let mut a = rng.uniform(5, 5, -2.0, 2.0);
            for c in 0..5 {
                a[(2, c)] = 0.0;
            }
            let b = rng.uniform(5, 5, -2.0, 2.0);
            let d = matmul(&a, &b);
            for c in 0..5 {
                prop_assert_eq!(d[(2, c)], 0.0);
            }
        }
    }
}
