//! Reference matrix-multiplication kernels.
//!
//! These are the golden models for SpMM (`D = A × B + C`, paper §II-A).
//! The cycle-level simulator never *computes* with them (it only counts
//! cycles), but every storage-format round-trip and every dataflow variant
//! is validated against these kernels in the integration tests.

use crate::error::{DimError, Result};
use crate::f16::F16;
use crate::matrix::Matrix;
use crate::pool;

/// Reusable workspace for the blocked kernels.
///
/// [`matmul_at_b_into`] packs strided column panels of its left operand
/// and [`matmul_transb_into`] packs lane-interleaved row tiles of `B` into
/// this buffer so the inner loops run over contiguous memory; keeping the
/// scratch alive across calls (one per training loop, say) means the
/// kernels allocate nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    packed: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty workspace; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        GemmScratch::default()
    }
}

/// Lane width of the packed micro-kernels: the `A·Bᵀ` kernel interleaves
/// `A`-rows in groups of this many, giving the inner loop that many
/// independent accumulation chains (vectorizable without reordering any
/// single element's sum); [`accumulate_row`] uses the same width for its
/// column tiles.
const TILE_J: usize = 32;
/// Column-panel width packed per pass of `Aᵀ·B`.
const PANEL_O: usize = 32;
/// Sub-tile width of the ragged column tails and the f16 kernel: narrow
/// enough to fit any tail, wide enough that the independent accumulation
/// chains still vectorize.
const TAIL_J: usize = 8;
/// Below this many scalar MACs the kernels stay serial: thread spawn and
/// join overhead would dominate.
const PAR_MIN_MACS: usize = 1 << 21;

/// Computes `A × B` with dimension checking.
///
/// # Errors
///
/// Returns [`DimError`] when `A.cols() != B.rows()`.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::{Matrix, gemm};
///
/// let a = Matrix::filled(2, 3, 1.0);
/// let b = Matrix::filled(3, 2, 1.0);
/// let d = gemm::try_matmul(&a, &b)?;
/// assert_eq!(d[(0, 0)], 3.0);
/// # Ok::<(), tbstc_matrix::DimError>(())
/// ```
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(DimError {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut d = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let drow = d.row_mut(i);
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue; // skip zeros: same arithmetic, faster golden model
            }
            let brow = b.row(p);
            for (j, out) in drow.iter_mut().enumerate() {
                *out += aval * brow[j];
            }
        }
    }
    debug_assert_eq!(k, b.rows());
    Ok(d)
}

/// Computes `A × B`.
///
/// # Panics
///
/// Panics when `A.cols() != B.rows()`; use [`try_matmul`] to handle the
/// error instead.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    // tbstc-lint: allow(panic-surface) — documented panicking wrapper
    // over try_matmul.
    try_matmul(a, b).expect("matmul dimension mismatch")
}

/// Computes `A × B` into `out`, reusing `out`'s allocation.
///
/// Identical arithmetic (and accumulation order) to [`try_matmul`]; the
/// only difference is that the result lands in a caller-owned buffer, so a
/// loop that multiplies matrices of stable shape allocates nothing after
/// the first call.
///
/// # Panics
///
/// Panics when `A.cols() != B.rows()`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_into dimension mismatch: {:?} × {:?}",
        a.shape(),
        b.shape()
    );
    let (m, _) = a.shape();
    let n = b.cols();
    out.reset(m, n);
    for i in 0..m {
        accumulate_row(a.row(i), b, out.row_mut(i));
    }
}

/// Register-blocked row accumulation shared by [`matmul_into`] and
/// [`matmul_at_b_into`]: `orow[j] = Σ_p mult[p] * b[p][j]`.
///
/// Full [`TILE_J`]-wide column tiles accumulate into a stack array (the
/// lanes are independent chains, so the loop vectorizes without reordering
/// any element's sum); the ragged remainder runs the same shape at
/// [`TAIL_J`] width, with a scalar loop for the final sub-[`TAIL_J`]
/// columns. Per element, products are added in ascending `p` with `±0`
/// multipliers skipped — exactly [`try_matmul`]'s arithmetic.
fn accumulate_row(mult: &[f32], b: &Matrix, orow: &mut [f32]) {
    let n = orow.len();
    debug_assert_eq!(n, b.cols());
    debug_assert_eq!(mult.len(), b.rows());
    let mut j0 = 0;
    while j0 + TILE_J <= n {
        let mut acc = [0.0f32; TILE_J];
        for (p, &av) in mult.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let lanes = &b.row(p)[j0..j0 + TILE_J];
            for (acc_l, &bv) in acc.iter_mut().zip(lanes) {
                *acc_l += av * bv;
            }
        }
        orow[j0..j0 + TILE_J].copy_from_slice(&acc);
        j0 += TILE_J;
    }
    while j0 + TAIL_J <= n {
        let mut acc = [0.0f32; TAIL_J];
        for (p, &av) in mult.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let lanes = &b.row(p)[j0..j0 + TAIL_J];
            for (acc_l, &bv) in acc.iter_mut().zip(lanes) {
                *acc_l += av * bv;
            }
        }
        orow[j0..j0 + TAIL_J].copy_from_slice(&acc);
        j0 += TAIL_J;
    }
    if j0 < n {
        for (p, &av) in mult.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let lanes = &b.row(p)[j0..];
            for (o, &bv) in orow[j0..].iter_mut().zip(lanes) {
                *o += av * bv;
            }
        }
    }
}

/// Computes `A × Bᵀ` directly from row-major storage — no materialized
/// transpose.
///
/// `A`'s rows are packed lane-interleaved into the scratch workspace
/// ([`TILE_J`] rows per tile, zero-padded at the edge), so the inner loop
/// runs [`TILE_J`] independent accumulation chains over contiguous memory.
/// The multiplier is the `B` element, and `±0` multipliers are skipped —
/// when `B` carries masked weights the kernel does work proportional to
/// the surviving non-zeros. Each output element still receives its
/// non-zero products in ascending-`p` order — skipping `±0` products is
/// bitwise neutral, so the result is bit-identical to [`try_matmul`] on a
/// materialized transpose. Work is split over output-row panels on the
/// [`crate::pool`] above a size threshold; each panel exclusively owns its
/// output rows, so the parallel result is bit-identical to the serial one.
///
/// # Errors
///
/// Returns [`DimError`] when `A.cols() != B.cols()`.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::{Matrix, gemm};
///
/// let a = Matrix::filled(2, 3, 1.0);
/// let b = Matrix::filled(4, 3, 2.0);
/// let d = gemm::try_matmul_transb(&a, &b)?;
/// assert_eq!(d.shape(), (2, 4));
/// assert_eq!(d[(1, 3)], 6.0);
/// # Ok::<(), tbstc_matrix::DimError>(())
/// ```
pub fn try_matmul_transb(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(DimError {
            op: "matmul_transb",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(0, 0);
    let mut scratch = GemmScratch::new();
    matmul_transb_into(a, b, &mut out, &mut scratch);
    Ok(out)
}

/// Computes `A × Bᵀ`.
///
/// # Panics
///
/// Panics when `A.cols() != B.cols()`; use [`try_matmul_transb`] to handle
/// the error instead.
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    // tbstc-lint: allow(panic-surface) — documented panicking wrapper
    // over try_matmul_transb.
    try_matmul_transb(a, b).expect("matmul_transb dimension mismatch")
}

/// Computes `A × Bᵀ` into `out`, packing `B` through `scratch` and reusing
/// both allocations (see [`try_matmul_transb`] for the kernel; this entry
/// adds the automatic parallelism threshold).
///
/// # Panics
///
/// Panics when `A.cols() != B.cols()`.
pub fn matmul_transb_into(a: &Matrix, b: &Matrix, out: &mut Matrix, scratch: &mut GemmScratch) {
    let macs = a.rows() * a.cols() * b.rows();
    let workers = if macs >= PAR_MIN_MACS {
        pool::available_workers()
    } else {
        1
    };
    matmul_transb_with_workers(a, b, out, workers, scratch);
}

/// [`matmul_transb_into`] with an explicit worker count instead of the
/// size-threshold heuristic.
///
/// Exposed so determinism tests and the perf harness can pin the worker
/// count; `workers <= 1` runs inline on the caller's thread. `A` is packed
/// once (serially) before the panels are dispatched, so every worker reads
/// the same packed tiles.
///
/// # Panics
///
/// Panics when `A.cols() != B.cols()`.
pub fn matmul_transb_with_workers(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    workers: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transb dimension mismatch: {:?} × {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    out.reset(m, n);
    if n == 0 || m == 0 {
        return;
    }
    // Pack A lane-interleaved: tile `it` holds rows `it*TILE_J ..` with
    // element `p` of all TILE_J rows adjacent (edge lanes zero-padded).
    let mtiles = m.div_ceil(TILE_J);
    scratch.packed.clear();
    scratch.packed.resize(mtiles * k * TILE_J, 0.0);
    for it in 0..mtiles {
        let slab = &mut scratch.packed[it * k * TILE_J..(it + 1) * k * TILE_J];
        for lane in 0..TILE_J.min(m - it * TILE_J) {
            for (p, &v) in a.row(it * TILE_J + lane).iter().enumerate() {
                slab[p * TILE_J + lane] = v;
            }
        }
    }
    let packed = &scratch.packed;
    pool::parallel_chunks_mut(out.as_mut_slice(), TILE_J * n, workers, |ci, panel| {
        transb_tile(&packed[ci * k * TILE_J..(ci + 1) * k * TILE_J], b, n, panel);
    });
}

/// Serial `A·Bᵀ` over one output-row panel (one lane tile of `A`-rows),
/// reading the tile's lane-interleaved packed slab.
///
/// The multiplier is the `B` element: rows of masked weights drive work
/// proportional to their non-zeros, and skipping the `±0` multipliers is
/// bitwise neutral (adding `±0` never changes an accumulator that started
/// at `+0`).
fn transb_tile(slab: &[f32], b: &Matrix, n: usize, panel: &mut [f32]) {
    let rows_here = panel.len() / n;
    for j in 0..n {
        let mut acc = [0.0f32; TILE_J];
        for (p, &bv) in b.row(j).iter().enumerate() {
            if bv == 0.0 {
                continue; // bitwise neutral: skipping ±0 products
            }
            let lanes = &slab[p * TILE_J..(p + 1) * TILE_J];
            for (acc_l, &av) in acc.iter_mut().zip(lanes) {
                *acc_l += av * bv;
            }
        }
        for (lane, &v) in acc[..rows_here].iter().enumerate() {
            panel[lane * n + j] = v;
        }
    }
}

/// Computes `Aᵀ × B` directly from row-major storage — no materialized
/// transpose.
///
/// # Errors
///
/// Returns [`DimError`] when `A.rows() != B.rows()`.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::{Matrix, gemm};
///
/// let a = Matrix::filled(3, 2, 1.0);
/// let b = Matrix::filled(3, 4, 2.0);
/// let d = gemm::try_matmul_at_b(&a, &b)?;
/// assert_eq!(d.shape(), (2, 4));
/// assert_eq!(d[(1, 0)], 6.0);
/// # Ok::<(), tbstc_matrix::DimError>(())
/// ```
pub fn try_matmul_at_b(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(DimError {
            op: "matmul_at_b",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(0, 0);
    let mut scratch = GemmScratch::new();
    matmul_at_b_into(a, b, &mut out, &mut scratch);
    Ok(out)
}

/// Computes `Aᵀ × B`.
///
/// # Panics
///
/// Panics when `A.rows() != B.rows()`; use [`try_matmul_at_b`] to handle
/// the error instead.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    // tbstc-lint: allow(panic-surface) — documented panicking wrapper
    // over try_matmul_at_b.
    try_matmul_at_b(a, b).expect("matmul_at_b dimension mismatch")
}

/// Computes `Aᵀ × B` into `out`, packing column panels of `A` through
/// `scratch` so the inner loops run over contiguous memory.
///
/// `A`'s columns (rows of `Aᵀ`) are gathered [`PANEL_O`] at a time into
/// the scratch workspace — the only strided traversal in the kernel — and
/// the accumulation then streams rows of `B` and `out` contiguously,
/// skipping zero multipliers exactly like [`try_matmul`] (gradients gated
/// through ReLU are mostly zeros, so the skip is worth a branch).
///
/// # Panics
///
/// Panics when `A.rows() != B.rows()`.
pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix, scratch: &mut GemmScratch) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b dimension mismatch: {:?}ᵀ × {:?}",
        a.shape(),
        b.shape()
    );
    let nn = a.rows();
    let o_dim = a.cols();
    out.reset(o_dim, b.cols());
    for o0 in (0..o_dim).step_by(PANEL_O) {
        let ow = (o_dim - o0).min(PANEL_O);
        scratch.packed.clear();
        scratch.packed.resize(ow * nn, 0.0);
        for nrow in 0..nn {
            let arow = a.row(nrow);
            for t in 0..ow {
                scratch.packed[t * nn + nrow] = arow[o0 + t];
            }
        }
        for t in 0..ow {
            let acol = &scratch.packed[t * nn..(t + 1) * nn];
            accumulate_row(acol, b, out.row_mut(o0 + t));
        }
    }
}

/// Computes the full SpMM operator `D = A × B + C` (paper §II-A).
///
/// # Errors
///
/// Returns [`DimError`] when the inner dimensions disagree or `C` does not
/// have shape `(A.rows(), B.cols())`.
pub fn try_spmm(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix> {
    let mut d = try_matmul(a, b)?;
    if c.shape() != d.shape() {
        return Err(DimError {
            op: "spmm bias add",
            lhs: d.shape(),
            rhs: c.shape(),
        });
    }
    for (out, &bias) in d.as_mut_slice().iter_mut().zip(c.as_slice()) {
        *out += bias;
    }
    Ok(d)
}

/// Computes `A × B` with every product and accumulation rounded through
/// binary16, emulating the FP16 DVPE datapath.
///
/// Both operands are rounded through binary16 once up front
/// (`F16::round_trip` is pure, so hoisting it out of the inner loop is
/// bit-identical to rounding at each use) and the columns run in
/// [`TAIL_J`]-wide lane groups — independent accumulation chains, each
/// still rounding every product and every partial sum in ascending-`p`
/// order.
///
/// # Errors
///
/// Returns [`DimError`] when `A.cols() != B.rows()`.
pub fn try_matmul_f16(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(DimError {
            op: "matmul_f16",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let ra: Vec<f32> = a.as_slice().iter().map(|&v| F16::round_trip(v)).collect();
    let rb: Vec<f32> = b.as_slice().iter().map(|&v| F16::round_trip(v)).collect();
    let mut d = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = &ra[i * k..(i + 1) * k];
        let drow = d.row_mut(i);
        let mut j0 = 0;
        while j0 + TAIL_J <= n {
            let mut acc = [0.0f32; TAIL_J];
            for (p, &av) in arow.iter().enumerate() {
                let lanes = &rb[p * n + j0..p * n + j0 + TAIL_J];
                for (acc_l, &bv) in acc.iter_mut().zip(lanes) {
                    *acc_l = F16::round_trip(*acc_l + F16::round_trip(av * bv));
                }
            }
            drow[j0..j0 + TAIL_J].copy_from_slice(&acc);
            j0 += TAIL_J;
        }
        for (j, out) in drow.iter_mut().enumerate().skip(j0) {
            let mut acc = 0.0f32;
            for (p, &av) in arow.iter().enumerate() {
                acc = F16::round_trip(acc + F16::round_trip(av * rb[p * n + j]));
            }
            *out = acc;
        }
    }
    Ok(d)
}

/// Number of scalar multiply-accumulate operations a dense `A × B` performs.
pub fn dense_macs(a: &Matrix, b: &Matrix) -> u64 {
    a.rows() as u64 * a.cols() as u64 * b.cols() as u64
}

/// Number of MACs a sparsity-skipping kernel performs: one per non-zero of
/// `A` per column of `B`.
pub fn sparse_macs(a: &Matrix, b_cols: usize) -> u64 {
    a.count_nonzeros() as u64 * b_cols as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;
    use proptest::prelude::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + 2 * c) as f32);
        assert_eq!(matmul(&a, &Matrix::identity(3)), a);
        assert_eq!(matmul(&Matrix::identity(3), &a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let d = matmul(&a, &b);
        assert_eq!(
            d,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn spmm_adds_bias() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let c = Matrix::filled(2, 2, 10.0);
        let d = try_spmm(&a, &b, &c).unwrap();
        assert_eq!(d, Matrix::filled(2, 2, 11.0));
    }

    #[test]
    fn spmm_rejects_bad_bias_shape() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let c = Matrix::zeros(3, 3);
        assert!(try_spmm(&a, &b, &c).is_err());
    }

    #[test]
    fn mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = try_matmul(&a, &b).unwrap_err();
        assert_eq!(err.lhs, (2, 3));
    }

    #[test]
    fn mac_counts() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0]]).unwrap();
        let b = Matrix::zeros(3, 4);
        assert_eq!(dense_macs(&a, &b), 12);
        assert_eq!(sparse_macs(&a, 4), 8);
    }

    #[test]
    fn f16_matmul_close_to_f32() {
        let mut rng = MatrixRng::seed_from(7);
        let a = rng.uniform(8, 8, -1.0, 1.0);
        let b = rng.uniform(8, 8, -1.0, 1.0);
        let exact = matmul(&a, &b);
        let half = try_matmul_f16(&a, &b).unwrap();
        // 8-term fp16 accumulation of O(1) values: generous tolerance.
        assert!(exact.max_abs_diff(&half).unwrap() < 0.05);
    }

    #[test]
    fn transb_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        // A·Bᵀ == matmul(A, transpose(B))
        assert_eq!(matmul_transb(&a, &b), matmul(&a, &b.transpose()));
    }

    #[test]
    fn at_b_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(matmul_at_b(&a, &b), matmul(&a.transpose(), &b));
    }

    #[test]
    fn transb_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let err = try_matmul_transb(&a, &b).unwrap_err();
        assert_eq!(err.op, "matmul_transb");
    }

    #[test]
    fn at_b_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let err = try_matmul_at_b(&a, &b).unwrap_err();
        assert_eq!(err.op, "matmul_at_b");
    }

    #[test]
    fn into_kernels_reuse_allocations() {
        let mut rng = MatrixRng::seed_from(3);
        let a = rng.uniform(24, 17, -1.0, 1.0);
        let b = rng.uniform(24, 9, -1.0, 1.0);
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = GemmScratch::new();
        matmul_at_b_into(&a, &b, &mut out, &mut scratch);
        let first = out.clone();
        // Second call with the same shapes must only rewrite in place.
        matmul_at_b_into(&a, &b, &mut out, &mut scratch);
        assert_eq!(out, first);
        matmul_into(&a.transpose(), &b, &mut out);
        assert_eq!(out, first);
    }

    #[test]
    fn transb_parallel_is_bit_identical_to_serial() {
        let mut rng = MatrixRng::seed_from(41);
        // Enough rows for many panels; odd shapes to stress panel edges.
        let a = rng.uniform(131, 45, -2.0, 2.0);
        let b = rng.uniform(77, 45, -2.0, 2.0);
        let mut scratch = GemmScratch::new();
        let mut serial = Matrix::zeros(0, 0);
        matmul_transb_with_workers(&a, &b, &mut serial, 1, &mut scratch);
        for workers in [2, 3, 8] {
            let mut parallel = Matrix::zeros(0, 0);
            matmul_transb_with_workers(&a, &b, &mut parallel, workers, &mut scratch);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    /// Relative-tolerance comparison against the golden kernel.
    fn assert_close_to_golden(fast: &Matrix, golden: &Matrix) {
        assert_eq!(fast.shape(), golden.shape());
        for r in 0..golden.rows() {
            for c in 0..golden.cols() {
                let (f, g) = (fast[(r, c)], golden[(r, c)]);
                let rel = (f - g).abs() / g.abs().max(1.0);
                assert!(rel <= 1e-5, "({r},{c}): fast={f} golden={g}");
            }
        }
    }

    proptest! {
        #[test]
        fn transb_matches_golden(seed in 0u64..200) {
            // Shapes deliberately include non-multiples of 8 and tiny dims.
            let mut rng = MatrixRng::seed_from(seed);
            let m = 1 + (seed as usize * 7) % 37;
            let k = 1 + (seed as usize * 5) % 29;
            let n = 1 + (seed as usize * 3) % 41;
            let a = rng.uniform(m, k, -2.0, 2.0);
            let b = rng.uniform(n, k, -2.0, 2.0);
            let golden = try_matmul(&a, &b.transpose()).unwrap();
            assert_close_to_golden(&matmul_transb(&a, &b), &golden);
        }

        #[test]
        fn at_b_matches_golden(seed in 0u64..200) {
            let mut rng = MatrixRng::seed_from(seed.wrapping_add(9999));
            let n = 1 + (seed as usize * 7) % 37;
            let o = 1 + (seed as usize * 5) % 29;
            let i = 1 + (seed as usize * 3) % 41;
            let a = rng.uniform(n, o, -2.0, 2.0);
            let b = rng.uniform(n, i, -2.0, 2.0);
            let golden = try_matmul(&a.transpose(), &b).unwrap();
            assert_close_to_golden(&matmul_at_b(&a, &b), &golden);
        }

        #[test]
        fn at_b_skips_gated_gradients(seed in 0u64..100) {
            // Zeroing rows of A (ReLU-gated gradients) must not change the
            // arithmetic relative to the golden model.
            let mut rng = MatrixRng::seed_from(seed);
            let mut a = rng.uniform(16, 11, -1.0, 1.0);
            for r in (0..16).step_by(2) {
                for v in a.row_mut(r) {
                    *v = 0.0;
                }
            }
            let b = rng.uniform(16, 13, -1.0, 1.0);
            let golden = try_matmul(&a.transpose(), &b).unwrap();
            prop_assert_eq!(matmul_at_b(&a, &b), golden);
        }

        #[test]
        fn matmul_distributes_over_transpose(seed in 0u64..1000) {
            // (A B)^T == B^T A^T
            let mut rng = MatrixRng::seed_from(seed);
            let a = rng.uniform(4, 6, -2.0, 2.0);
            let b = rng.uniform(6, 3, -2.0, 2.0);
            let lhs = matmul(&a, &b).transpose();
            let rhs = matmul(&b.transpose(), &a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-4);
        }

        #[test]
        fn zero_rows_skip_is_equivalent(seed in 0u64..1000) {
            // Masking A then multiplying equals multiplying the masked A:
            // exercises the zero-skip fast path against the dense path.
            let mut rng = MatrixRng::seed_from(seed);
            let mut a = rng.uniform(5, 5, -2.0, 2.0);
            for c in 0..5 {
                a[(2, c)] = 0.0;
            }
            let b = rng.uniform(5, 5, -2.0, 2.0);
            let d = matmul(&a, &b);
            for c in 0..5 {
                prop_assert_eq!(d[(2, c)], 0.0);
            }
        }
    }
}
