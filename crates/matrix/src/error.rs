//! Error types for dimension-checked matrix operations.

use std::error::Error;
use std::fmt;

/// Error returned when matrix dimensions are incompatible for an operation.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::{DimError, Matrix};
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(4, 5);
/// let err = tbstc_matrix::gemm::try_matmul(&a, &b).unwrap_err();
/// assert!(matches!(err, DimError { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimError {
    /// Human-readable description of the operation that failed.
    pub op: &'static str,
    /// Dimensions of the left-hand operand, `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Dimensions of the right-hand operand, `(rows, cols)`.
    pub rhs: (usize, usize),
}

impl fmt::Display for DimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension mismatch in {}: lhs is {}x{}, rhs is {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for DimError {}

/// Convenience alias for results of dimension-checked operations.
pub type Result<T> = std::result::Result<T, DimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DimError {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DimError>();
    }
}
