//! Mask similarity to the unstructured pattern (paper Fig. 4(b)).
//!
//! The paper measures how close each structured pattern's mask is to the
//! unstructured mask produced from the same weights at the same sparsity,
//! reporting that TBS reaches 85.31 % – 91.62 % similarity while the other
//! N:M patterns fall well short.

use tbstc_matrix::Matrix;

use crate::mask::Mask;
use crate::pattern::{paper_pattern, Pattern, PatternKind, Unstructured};

/// Fraction of the unstructured mask's kept positions that `mask` also
/// keeps: `|kept(mask) ∩ kept(us)| / |kept(us)|`.
///
/// Returns 1.0 when the unstructured mask keeps nothing (vacuous match).
///
/// # Panics
///
/// Panics when the shapes differ.
pub fn similarity_to(mask: &Mask, us: &Mask) -> f64 {
    assert_eq!(mask.shape(), us.shape(), "mask shape mismatch");
    let us_kept = us.count_kept();
    if us_kept == 0 {
        return 1.0;
    }
    mask.intersection_kept(us) as f64 / us_kept as f64
}

/// Per-pattern similarity to US for one weight matrix at one sparsity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityRow {
    /// Pattern measured.
    pub kind: PatternKind,
    /// Similarity in `[0, 1]`.
    pub similarity: f64,
}

/// Measures the Fig. 4(b) similarity of every structured pattern against
/// the unstructured mask on `weights` at `target` sparsity, using the
/// paper-default pattern configurations.
pub fn similarity_sweep(weights: &Matrix, target: f64) -> Vec<SimilarityRow> {
    let us = Unstructured.project(weights, target);
    [
        PatternKind::TileNm,
        PatternKind::RowWiseVegeta,
        PatternKind::RowWiseHighlight,
        PatternKind::Tbs,
    ]
    .into_iter()
    .map(|kind| {
        let mask = paper_pattern(kind).project(weights, target);
        SimilarityRow {
            kind,
            similarity: similarity_to(&mask, &us),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_matrix::rng::MatrixRng;

    #[test]
    fn identical_masks_have_similarity_one() {
        let w = MatrixRng::seed_from(0).weights(32, 32);
        let us = Unstructured.project(&w, 0.5);
        assert_eq!(similarity_to(&us, &us), 1.0);
    }

    #[test]
    fn disjoint_masks_have_similarity_zero() {
        let a = Mask::from_fn(2, 2, |r, _| r == 0);
        let b = Mask::from_fn(2, 2, |r, _| r == 1);
        assert_eq!(similarity_to(&a, &b), 0.0);
    }

    #[test]
    fn empty_us_mask_is_vacuously_similar() {
        let a = Mask::all(2, 2);
        let none = Mask::none(2, 2);
        assert_eq!(similarity_to(&a, &none), 1.0);
    }

    #[test]
    fn tbs_similarity_in_paper_band() {
        // Paper: TBS reaches 85.31%-91.62% similarity with US on
        // ResNet-50-like weights; other patterns are clearly lower.
        let mut rng = MatrixRng::seed_from(42);
        let w = rng.block_structured_weights(128, 128, 8);
        for &target in &[0.5, 0.75] {
            let rows = similarity_sweep(&w, target);
            let get = |k: PatternKind| rows.iter().find(|r| r.kind == k).unwrap().similarity;
            let tbs = get(PatternKind::Tbs);
            let ts = get(PatternKind::TileNm);
            let rsv = get(PatternKind::RowWiseVegeta);
            assert!(tbs > 0.8, "TBS similarity {tbs} at target {target}");
            assert!(tbs > ts, "TBS {tbs} > TS {ts}");
            assert!(tbs > rsv, "TBS {tbs} > RS-V {rsv}");
        }
    }

    #[test]
    fn sweep_reports_all_structured_patterns() {
        let w = MatrixRng::seed_from(1).weights(32, 32);
        let rows = similarity_sweep(&w, 0.5);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.similarity)));
    }
}
