//! Binary pruning masks.
//!
//! A [`Mask`] records which elements of a weight matrix are *kept*
//! (`true`) versus pruned to zero (`false`). Every sparsity pattern in this
//! crate is ultimately a procedure that maps an importance-score matrix to
//! a `Mask` subject to the pattern's structural constraint.

use std::fmt;

use tbstc_matrix::Matrix;

/// A binary keep/prune mask with the same shape as the matrix it applies to.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::Matrix;
/// use tbstc_sparsity::Mask;
///
/// let w = Matrix::from_rows(&[vec![3.0, -1.0], vec![0.5, 2.0]]).unwrap();
/// // Keep the 2 largest-magnitude elements.
/// let mask = Mask::top_k(&w.map(f32::abs), 2);
/// assert!(mask.get(0, 0) && mask.get(1, 1));
/// assert_eq!(mask.count_kept(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Mask {
    rows: usize,
    cols: usize,
    keep: Vec<bool>,
}

impl Mask {
    /// An all-pruned (dense-zero) mask.
    pub fn none(rows: usize, cols: usize) -> Self {
        Mask {
            rows,
            cols,
            keep: vec![false; rows * cols],
        }
    }

    /// An all-kept (dense) mask.
    pub fn all(rows: usize, cols: usize) -> Self {
        Mask {
            rows,
            cols,
            keep: vec![true; rows * cols],
        }
    }

    /// Builds a mask by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut keep = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                keep.push(f(r, c));
            }
        }
        Mask { rows, cols, keep }
    }

    /// Builds the mask of non-zero elements of `m`.
    pub fn nonzeros(m: &Matrix) -> Self {
        Mask::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)] != 0.0)
    }

    /// Keeps the `k` highest-scoring elements of `scores` (global top-k, the
    /// unstructured-pruning projection).
    ///
    /// Ties are broken by position (earlier row-major positions win), which
    /// keeps the procedure deterministic. The ordering `(score desc, index
    /// asc)` is a strict total order, so the kept *set* is unique — which
    /// is what lets the selection below replace the historical full sort
    /// without changing any mask.
    pub fn top_k(scores: &Matrix, k: usize) -> Self {
        let data = scores.as_slice();
        let k = k.min(data.len());
        let mut keep = vec![false; data.len()];
        if k == data.len() {
            keep.iter_mut().for_each(|b| *b = true);
        } else if k > 0 {
            let mut idx: Vec<usize> = (0..data.len()).collect();
            // O(n) selection: after this call, idx[..k] holds exactly the
            // top-k indices under (score desc, index asc).
            idx.select_nth_unstable_by(k, |&a, &b| {
                data[b]
                    .partial_cmp(&data[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for &i in &idx[..k] {
                keep[i] = true;
            }
        }
        Mask {
            rows: scores.rows(),
            cols: scores.cols(),
            keep,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of positions.
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// Returns `true` when the mask covers no positions.
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Whether position `(r, c)` is kept.
    ///
    /// # Panics
    ///
    /// Panics when the position is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "mask index out of bounds");
        self.keep[r * self.cols + c]
    }

    /// Sets position `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the position is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, kept: bool) {
        assert!(r < self.rows && c < self.cols, "mask index out of bounds");
        self.keep[r * self.cols + c] = kept;
    }

    /// Number of kept positions.
    pub fn count_kept(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Fraction of pruned positions (sparsity degree, paper §II-A).
    ///
    /// Returns `0.0` for an empty mask.
    pub fn sparsity(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            1.0 - self.count_kept() as f64 / self.len() as f64
        }
    }

    /// Number of kept positions in row `r`.
    pub fn row_kept(&self, r: usize) -> usize {
        (0..self.cols).filter(|&c| self.get(r, c)).count()
    }

    /// Number of kept positions in column `c`.
    pub fn col_kept(&self, c: usize) -> usize {
        (0..self.rows).filter(|&r| self.get(r, c)).count()
    }

    /// Borrows row `r` as a slice of keep flags (contiguous, `cols` long).
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[bool] {
        assert!(r < self.rows, "mask row out of bounds");
        &self.keep[r * self.cols..(r + 1) * self.cols]
    }

    /// The transposed mask.
    pub fn transpose(&self) -> Mask {
        Mask::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Copies the `height × width` sub-mask at `(row0, col0)`, treating
    /// out-of-bounds positions as pruned.
    pub fn block(&self, row0: usize, col0: usize, height: usize, width: usize) -> Mask {
        Mask::from_fn(height, width, |r, c| {
            let (rr, cc) = (row0 + r, col0 + c);
            rr < self.rows && cc < self.cols && self.get(rr, cc)
        })
    }

    /// Borrows the `height × width` sub-mask at `(row0, col0)` without
    /// copying; out-of-bounds positions read as pruned, exactly like
    /// [`Mask::block`].
    pub fn block_view(
        &self,
        row0: usize,
        col0: usize,
        height: usize,
        width: usize,
    ) -> MaskBlockView<'_> {
        MaskBlockView {
            source: self,
            row0,
            col0,
            height,
            width,
        }
    }

    /// Writes `block` into `self` at `(row0, col0)`, ignoring out-of-bounds
    /// positions.
    pub fn set_block(&mut self, row0: usize, col0: usize, block: &Mask) {
        for r in 0..block.rows {
            for c in 0..block.cols {
                if row0 + r < self.rows && col0 + c < self.cols {
                    self.set(row0 + r, col0 + c, block.get(r, c));
                }
            }
        }
    }

    /// Hamming distance: number of positions where the masks disagree.
    ///
    /// This is the `L1` distance of Algorithm 1 step 3 when masks are viewed
    /// as 0/1 matrices.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn hamming(&self, other: &Mask) -> usize {
        assert_eq!(self.shape(), other.shape(), "mask shape mismatch");
        self.keep
            .iter()
            .zip(&other.keep)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Number of positions kept by both masks.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn intersection_kept(&self, other: &Mask) -> usize {
        assert_eq!(self.shape(), other.shape(), "mask shape mismatch");
        self.keep
            .iter()
            .zip(&other.keep)
            .filter(|(&a, &b)| a && b)
            .count()
    }

    /// Applies the mask: returns `w` with pruned positions zeroed.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn apply(&self, w: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.apply_into(w, &mut out);
        out
    }

    /// Applies the mask into `out`, reusing `out`'s allocation — the
    /// zero-realloc path behind the effective-weight cache in
    /// `tbstc-train`.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn apply_into(&self, w: &Matrix, out: &mut Matrix) {
        assert_eq!(self.shape(), w.shape(), "mask/matrix shape mismatch");
        out.reset(self.rows, self.cols);
        for ((o, &v), &kept) in out
            .as_mut_slice()
            .iter_mut()
            .zip(w.as_slice())
            .zip(&self.keep)
        {
            if kept {
                *o = v;
            }
        }
    }

    /// Converts the mask to a 0/1 matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(u8::from(self.get(r, c)))
        })
    }

    /// Iterates over the kept coordinates in row-major order.
    pub fn iter_kept(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        self.keep
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(move |(i, _)| (i / cols, i % cols))
    }
}

/// A borrowed, pruned-padded window into a [`Mask`].
///
/// Created by [`Mask::block_view`]. Positions whose source coordinates
/// fall outside the underlying mask read as pruned (`false`), mirroring
/// [`Mask::block`] — but without allocating a sub-mask, which keeps the
/// per-block loops of the TBS sparsifier allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct MaskBlockView<'a> {
    source: &'a Mask,
    row0: usize,
    col0: usize,
    height: usize,
    width: usize,
}

impl MaskBlockView<'_> {
    /// Number of rows in the window (including padding).
    pub fn rows(&self) -> usize {
        self.height
    }

    /// Number of columns in the window (including padding).
    pub fn cols(&self) -> usize {
        self.width
    }

    /// Whether window position `(r, c)` is kept; `false` where the window
    /// hangs off the underlying mask.
    ///
    /// # Panics
    ///
    /// Panics when `(r, c)` is outside the window itself.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.height && c < self.width,
            "view index out of bounds"
        );
        let (rr, cc) = (self.row0 + r, self.col0 + c);
        rr < self.source.rows && cc < self.source.cols && self.source.get(rr, cc)
    }

    /// Number of kept positions in the window (padding counts as pruned),
    /// equal to `self.to_mask().count_kept()` without the copy.
    pub fn count_kept(&self) -> usize {
        let rmax = (self.row0 + self.height).min(self.source.rows);
        let cmax = (self.col0 + self.width).min(self.source.cols);
        let mut kept = 0;
        for r in self.row0..rmax {
            kept += self.source.keep[r * self.source.cols + self.col0..r * self.source.cols + cmax]
                .iter()
                .filter(|&&k| k)
                .count();
        }
        kept
    }

    /// Materializes the window as an owned [`Mask`] (equivalent to
    /// [`Mask::block`]).
    pub fn to_mask(&self) -> Mask {
        self.source
            .block(self.row0, self.col0, self.height, self.width)
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Mask {}x{} ({} kept, sparsity {:.3}) [",
            self.rows,
            self.cols,
            self.count_kept(),
            self.sparsity()
        )?;
        for r in 0..self.rows.min(16) {
            let row: String = (0..self.cols.min(64))
                .map(|c| if self.get(r, c) { '#' } else { '.' })
                .collect();
            writeln!(f, "  {row}")?;
        }
        if self.rows > 16 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tbstc_matrix::rng::MatrixRng;

    #[test]
    fn none_and_all() {
        assert_eq!(Mask::none(2, 3).count_kept(), 0);
        assert_eq!(Mask::all(2, 3).count_kept(), 6);
        assert_eq!(Mask::none(2, 3).sparsity(), 1.0);
        assert_eq!(Mask::all(2, 3).sparsity(), 0.0);
    }

    #[test]
    fn top_k_keeps_largest() {
        let s = Matrix::from_rows(&[vec![1.0, 9.0, 3.0], vec![7.0, 2.0, 8.0]]).unwrap();
        let m = Mask::top_k(&s, 3);
        assert!(m.get(0, 1) && m.get(1, 0) && m.get(1, 2));
        assert_eq!(m.count_kept(), 3);
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let s = Matrix::filled(2, 2, 1.0);
        let m = Mask::top_k(&s, 2);
        assert!(m.get(0, 0) && m.get(0, 1));
        assert!(!m.get(1, 0) && !m.get(1, 1));
    }

    #[test]
    fn top_k_clamps_to_len() {
        let m = Mask::top_k(&Matrix::zeros(2, 2), 100);
        assert_eq!(m.count_kept(), 4);
    }

    #[test]
    fn apply_zeroes_pruned() {
        let w = Matrix::filled(2, 2, 3.0);
        let mut mask = Mask::all(2, 2);
        mask.set(0, 1, false);
        let out = mask.apply(&w);
        assert_eq!(out[(0, 1)], 0.0);
        assert_eq!(out[(1, 1)], 3.0);
    }

    #[test]
    fn hamming_counts_disagreements() {
        let a = Mask::all(2, 2);
        let mut b = Mask::all(2, 2);
        b.set(0, 0, false);
        b.set(1, 1, false);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn transpose_preserves_counts() {
        let s = MatrixRng::seed_from(1).uniform(5, 7, 0.0, 1.0);
        let m = Mask::top_k(&s, 13);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t.count_kept(), 13);
        assert!(m.get(2, 4) == t.get(4, 2));
    }

    #[test]
    fn block_round_trip() {
        let s = MatrixRng::seed_from(2).uniform(8, 8, 0.0, 1.0);
        let m = Mask::top_k(&s, 20);
        let mut rebuilt = Mask::none(8, 8);
        for r0 in (0..8).step_by(4) {
            for c0 in (0..8).step_by(4) {
                rebuilt.set_block(r0, c0, &m.block(r0, c0, 4, 4));
            }
        }
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn block_out_of_bounds_is_pruned() {
        let m = Mask::all(3, 3);
        let b = m.block(2, 2, 2, 2);
        assert!(b.get(0, 0));
        assert!(!b.get(1, 1));
    }

    #[test]
    fn block_view_matches_block() {
        let s = MatrixRng::seed_from(5).uniform(7, 9, 0.0, 1.0);
        let m = Mask::top_k(&s, 30);
        // Window hanging off both edges.
        let v = m.block_view(5, 6, 4, 4);
        let b = m.block(5, 6, 4, 4);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.cols(), 4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(v.get(r, c), b.get(r, c));
            }
        }
        assert_eq!(v.count_kept(), b.count_kept());
        assert_eq!(v.to_mask(), b);
    }

    #[test]
    fn apply_into_matches_apply() {
        let s = MatrixRng::seed_from(6).uniform(6, 6, -1.0, 1.0);
        let m = Mask::top_k(&s.map(f32::abs), 20);
        let mut out = Matrix::filled(2, 2, 9.0);
        m.apply_into(&s, &mut out);
        assert_eq!(out, m.apply(&s));
    }

    #[test]
    fn row_col_counts() {
        let m = Mask::from_fn(3, 3, |r, c| r == c);
        assert_eq!(m.row_kept(1), 1);
        assert_eq!(m.col_kept(2), 1);
    }

    #[test]
    fn iter_kept_row_major() {
        let m = Mask::from_fn(2, 2, |r, c| r != c);
        let v: Vec<_> = m.iter_kept().collect();
        assert_eq!(v, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn nonzeros_matches_matrix() {
        let w = Matrix::from_rows(&[vec![0.0, 1.0], vec![-2.0, 0.0]]).unwrap();
        let m = Mask::nonzeros(&w);
        assert!(!m.get(0, 0) && m.get(0, 1) && m.get(1, 0) && !m.get(1, 1));
    }

    #[test]
    fn debug_shows_grid() {
        let m = Mask::all(1, 3);
        assert!(format!("{m:?}").contains("###"));
    }

    proptest! {
        #[test]
        fn top_k_exact_count(k in 0usize..64, seed in 0u64..100) {
            let s = MatrixRng::seed_from(seed).uniform(8, 8, 0.0, 1.0);
            prop_assert_eq!(Mask::top_k(&s, k).count_kept(), k.min(64));
        }

        #[test]
        fn apply_then_nonzeros_subset(seed in 0u64..100) {
            let mut rng = MatrixRng::seed_from(seed);
            let w = rng.uniform(6, 6, 0.5, 1.0); // strictly non-zero weights
            let m = Mask::top_k(&w, 18);
            let kept = Mask::nonzeros(&m.apply(&w));
            prop_assert_eq!(kept, m);
        }

        #[test]
        fn transpose_involution(seed in 0u64..100) {
            let s = MatrixRng::seed_from(seed).uniform(5, 9, 0.0, 1.0);
            let m = Mask::top_k(&s, 11);
            prop_assert_eq!(m.transpose().transpose(), m);
        }
    }
}
