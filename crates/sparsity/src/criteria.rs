//! Pruning criteria: how element importance is scored.
//!
//! The paper stresses (§III-B note) that *the sparsity pattern is orthogonal
//! to the pruning criterion*: any criterion produces an importance-score
//! matrix, and any pattern projects those scores onto its structural
//! constraint. Table II evaluates the patterns under two one-shot LLM
//! criteria, both implemented here:
//!
//! * [`magnitude_scores`] — classic `|w|` magnitude pruning,
//! * [`wanda_scores`] — Wanda: `|w| · ‖x_j‖₂` (weight times input-feature
//!   activation norm),
//! * [`SparseGpt`] — SparseGPT: OBS-style saliency `w² / [H⁻¹]_jj` with the
//!   sequential error-compensating weight update.

use tbstc_matrix::Matrix;

use crate::mask::Mask;

/// Importance scores for magnitude pruning: `score = |w|`.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::Matrix;
/// use tbstc_sparsity::criteria::magnitude_scores;
///
/// let w = Matrix::from_rows(&[vec![-3.0, 1.0]]).unwrap();
/// let s = magnitude_scores(&w);
/// assert_eq!(s[(0, 0)], 3.0);
/// ```
pub fn magnitude_scores(w: &Matrix) -> Matrix {
    w.map(f32::abs)
}

/// Importance scores for Wanda pruning: `score_ij = |w_ij| · ‖x_j‖₂`.
///
/// `act_norms[j]` is the L2 norm of input feature `j` over a calibration
/// set. Weights are laid out `output × input`, so column `j` of `w`
/// multiplies input feature `j`.
///
/// # Panics
///
/// Panics when `act_norms.len() != w.cols()`.
pub fn wanda_scores(w: &Matrix, act_norms: &[f32]) -> Matrix {
    assert_eq!(
        act_norms.len(),
        w.cols(),
        "one activation norm per input feature"
    );
    Matrix::from_fn(w.rows(), w.cols(), |r, c| w[(r, c)].abs() * act_norms[c])
}

/// Computes per-input-feature L2 activation norms from a calibration batch
/// `x` laid out `samples × features`.
pub fn activation_norms(x: &Matrix) -> Vec<f32> {
    (0..x.cols())
        .map(|c| {
            (0..x.rows())
                .map(|r| x[(r, c)] * x[(r, c)])
                .sum::<f32>()
                .sqrt()
        })
        .collect()
}

/// SparseGPT one-shot pruner (diagonal-Hessian OBS variant).
///
/// The exact SparseGPT algorithm factorizes the full inverse Hessian; this
/// reproduction keeps the two ingredients that drive its accuracy advantage
/// over plain magnitude pruning and that Table II exercises:
///
/// 1. the OBS saliency `w² / [H⁻¹]_jj` with `H = X Xᵀ + λI` (diagonal
///    approximation), and
/// 2. the sequential error-compensating update: when column `j` is pruned,
///    the remaining weights of the same row absorb the reconstruction error
///    in proportion to their input correlation.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::rng::MatrixRng;
/// use tbstc_sparsity::criteria::SparseGpt;
///
/// let mut rng = MatrixRng::seed_from(0);
/// let w = rng.weights(8, 16);
/// let x = rng.gaussian(32, 16, 0.0, 1.0);
/// let pruner = SparseGpt::new(&x, 0.01);
/// let scores = pruner.scores(&w);
/// assert_eq!(scores.shape(), w.shape());
/// ```
#[derive(Debug, Clone)]
pub struct SparseGpt {
    /// Diagonal of `H = X Xᵀ + λI` (per input feature).
    hessian_diag: Vec<f32>,
    /// Mean input per feature, used by the compensation update.
    feature_mean: Vec<f32>,
}

impl SparseGpt {
    /// Builds the pruner from a calibration batch `x` (`samples × features`)
    /// and Tikhonov damping `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn new(x: &Matrix, lambda: f32) -> Self {
        assert!(x.rows() > 0, "calibration batch must be non-empty");
        let n = x.rows() as f32;
        let hessian_diag = (0..x.cols())
            .map(|c| (0..x.rows()).map(|r| x[(r, c)] * x[(r, c)]).sum::<f32>() / n + lambda)
            .collect();
        let feature_mean = (0..x.cols())
            .map(|c| (0..x.rows()).map(|r| x[(r, c)]).sum::<f32>() / n)
            .collect();
        SparseGpt {
            hessian_diag,
            feature_mean,
        }
    }

    /// OBS saliency scores: `w² · H_jj` (equivalent ordering to
    /// `w² / [H⁻¹]_jj` under the diagonal approximation).
    ///
    /// # Panics
    ///
    /// Panics when `w.cols()` disagrees with the calibration features.
    pub fn scores(&self, w: &Matrix) -> Matrix {
        assert_eq!(w.cols(), self.hessian_diag.len(), "feature count mismatch");
        Matrix::from_fn(w.rows(), w.cols(), |r, c| {
            w[(r, c)] * w[(r, c)] * self.hessian_diag[c]
        })
    }

    /// Applies the mask with the error-compensating update: pruned weight
    /// `w_ij` redistributes `w_ij · mean(x_j) / mean(x_k)`-scaled mass onto
    /// the kept weights `k` of the same row, preserving the row's expected
    /// output on the calibration distribution.
    ///
    /// The mean-based compensation is only meaningful for features whose
    /// mean is a substantial fraction of their RMS (count-like or biased
    /// activations). For zero-mean features the expected output is already
    /// preserved by plain masking, and dividing by a near-zero mean would
    /// explode the weights — such features are left untouched, and every
    /// correction is clamped to a fraction of the weight's own magnitude.
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree.
    pub fn prune_with_update(&self, w: &Matrix, mask: &Mask) -> Matrix {
        assert_eq!(w.shape(), mask.shape(), "mask shape mismatch");
        assert_eq!(w.cols(), self.hessian_diag.len(), "feature count mismatch");
        // A feature is "biased" when |mean| >= 0.5 × RMS.
        let biased: Vec<bool> = (0..w.cols())
            .map(|c| {
                let rms = self.hessian_diag[c].max(0.0).sqrt();
                self.feature_mean[c].abs() >= 0.5 * rms && rms > 0.0
            })
            .collect();
        let mut out = mask.apply(w);
        for r in 0..w.rows() {
            // Expected output lost by pruning this row's biased features.
            let mut lost = 0.0f64;
            for c in 0..w.cols() {
                if !mask.get(r, c) && biased[c] {
                    lost += f64::from(w[(r, c)]) * f64::from(self.feature_mean[c]);
                }
            }
            if lost == 0.0 {
                continue;
            }
            // Distribute onto kept biased weights proportionally to their
            // Hessian weight (better-conditioned features absorb more).
            let kept: Vec<usize> = (0..w.cols())
                .filter(|&c| mask.get(r, c) && biased[c])
                .collect();
            let total_h: f64 = kept.iter().map(|&c| f64::from(self.hessian_diag[c])).sum();
            if total_h == 0.0 {
                continue;
            }
            for &c in &kept {
                let share = f64::from(self.hessian_diag[c]) / total_h;
                let mean = f64::from(self.feature_mean[c]);
                let delta = (lost * share / mean) as f32;
                // Never let a correction dwarf the weight it lands on.
                let cap = out[(r, c)].abs().max(1e-3);
                out[(r, c)] += delta.clamp(-cap, cap);
            }
        }
        out
    }
}

/// The pruning criterion used by an experiment, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// `|w|` magnitude.
    Magnitude,
    /// Wanda: `|w| · ‖x‖`.
    Wanda,
    /// SparseGPT diagonal-OBS.
    SparseGpt,
}

impl std::fmt::Display for Criterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Criterion::Magnitude => "Magnitude",
            Criterion::Wanda => "Wanda",
            Criterion::SparseGpt => "SparseGPT",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_matrix::rng::MatrixRng;

    #[test]
    fn magnitude_is_abs() {
        let w = Matrix::from_rows(&[vec![-2.0, 0.5]]).unwrap();
        let s = magnitude_scores(&w);
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(0, 1)], 0.5);
    }

    #[test]
    fn wanda_weights_by_activation() {
        let w = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let s = wanda_scores(&w, &[10.0, 0.1]);
        assert!(s[(0, 0)] > s[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "one activation norm")]
    fn wanda_checks_lengths() {
        let w = Matrix::zeros(1, 3);
        let _ = wanda_scores(&w, &[1.0]);
    }

    #[test]
    fn activation_norms_known_values() {
        let x = Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 2.0]]).unwrap();
        let n = activation_norms(&x);
        assert!((n[0] - 5.0).abs() < 1e-6);
        assert!((n[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sparsegpt_scores_prefer_high_variance_features() {
        let mut rng = MatrixRng::seed_from(3);
        let mut x = rng.gaussian(64, 2, 0.0, 1.0);
        for r in 0..64 {
            x[(r, 0)] *= 10.0; // feature 0 has much larger energy
        }
        let pruner = SparseGpt::new(&x, 0.0);
        let w = Matrix::filled(1, 2, 1.0);
        let s = pruner.scores(&w);
        assert!(s[(0, 0)] > s[(0, 1)] * 10.0);
    }

    #[test]
    fn sparsegpt_update_reduces_output_error() {
        let mut rng = MatrixRng::seed_from(4);
        let x = rng.gaussian(128, 16, 1.5, 1.0); // clearly biased inputs
        let w = rng.weights(4, 16);
        let pruner = SparseGpt::new(&x, 0.01);
        let mask = Mask::top_k(&pruner.scores(&w), 32); // 50% sparsity

        let plain = mask.apply(&w);
        let updated = pruner.prune_with_update(&w, &mask);

        // Compare expected (mean) outputs against the dense row outputs.
        let mean_err = |pruned: &Matrix| -> f64 {
            (0..w.rows())
                .map(|r| {
                    let e: f64 = (0..w.cols())
                        .map(|c| {
                            f64::from(w[(r, c)] - pruned[(r, c)])
                                * f64::from(pruner.feature_mean[c])
                        })
                        .sum();
                    e.abs()
                })
                .sum()
        };
        assert!(
            mean_err(&updated) < mean_err(&plain) * 0.5,
            "OBS update should shrink the expected output error: {} vs {}",
            mean_err(&updated),
            mean_err(&plain)
        );
    }

    #[test]
    fn sparsegpt_update_is_safe_on_zero_mean_inputs() {
        // Zero-mean calibration: masking already preserves the expected
        // output; the update must not blow weights up (this was a real
        // failure mode of mean-division compensation).
        let mut rng = MatrixRng::seed_from(6);
        let x = rng.gaussian(128, 16, 0.0, 1.0);
        let w = rng.weights(4, 16);
        let pruner = SparseGpt::new(&x, 0.01);
        let mask = Mask::top_k(&pruner.scores(&w), 32);
        let updated = pruner.prune_with_update(&w, &mask);
        let plain = mask.apply(&w);
        // Every weight stays within 2x of its plain-masked value.
        for (a, b) in updated.as_slice().iter().zip(plain.as_slice()) {
            assert!(
                (a - b).abs() <= b.abs().max(1e-3),
                "update exploded: {a} vs {b}"
            );
        }
    }

    #[test]
    fn sparsegpt_update_preserves_mask_zeros() {
        let mut rng = MatrixRng::seed_from(5);
        let x = rng.gaussian(32, 8, 0.0, 1.0);
        let w = rng.weights(2, 8);
        let pruner = SparseGpt::new(&x, 0.01);
        let mask = Mask::top_k(&pruner.scores(&w), 8);
        let updated = pruner.prune_with_update(&w, &mask);
        for (r, c) in (0..2).flat_map(|r| (0..8).map(move |c| (r, c))) {
            if !mask.get(r, c) {
                assert_eq!(updated[(r, c)], 0.0);
            }
        }
    }

    #[test]
    fn criterion_display() {
        assert_eq!(Criterion::Wanda.to_string(), "Wanda");
    }
}
