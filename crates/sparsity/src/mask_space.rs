//! The Mask-Space (MS) measure — paper §III-A2, equations (1)–(4).
//!
//! MS counts, for a given sparsity pattern and granularity, the number of
//! distinct masks the pattern can express on an `X × Y` matrix. The counts
//! are astronomically large (the paper plots them up to 10^4000), so all
//! arithmetic here is done in the **log₂ domain** via the log-gamma
//! function.
//!
//! The paper's notation: `C_p^q = p! / (q!(p−q)!)`, `M` is the sparsity
//! granularity, `k = log₂ M`, and `Y` is the reduction dimension.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~1e-13 relative error for positive arguments, which is far
/// beyond what the MS plots need.
pub fn ln_gamma(x: f64) -> f64 {
    // The published Lanczos(g = 7) coefficients, digits kept verbatim.
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const G: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma needs a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `log₂ C(p, q)`, the log-domain binomial coefficient.
///
/// Returns negative infinity when `q > p` (the combination is impossible).
pub fn log2_choose(p: u64, q: u64) -> f64 {
    if q > p {
        return f64::NEG_INFINITY;
    }
    if q == 0 || q == p {
        return 0.0;
    }
    let ln = ln_gamma(p as f64 + 1.0) - ln_gamma(q as f64 + 1.0) - ln_gamma((p - q) as f64 + 1.0);
    ln / std::f64::consts::LN_2
}

/// `log₂(2^a + 2^b)` computed stably (log-sum-exp in base 2).
pub fn log2_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

/// The density candidate ladder the paper sums over: `N = 2^i` for
/// `i = 0..=k` with `k = log₂ M` (i.e. `N ∈ {1, 2, 4, …, M}`).
fn power_candidates(m: u64) -> Vec<u64> {
    assert!(m.is_power_of_two(), "granularity M must be a power of two");
    let k = m.trailing_zeros();
    (0..=k).map(|i| 1u64 << i).collect()
}

/// Equation (1): `MS_TS = Σ_i C(M, 2^i)^(X·Y/M)` in log₂.
///
/// Tile-wise N:M: one global `N`, every tile chooses positions
/// independently.
pub fn ms_tile(x: u64, y: u64, m: u64) -> f64 {
    let tiles = x * y / m;
    power_candidates(m)
        .into_iter()
        .map(|n| log2_choose(m, n) * tiles as f64)
        .fold(f64::NEG_INFINITY, log2_add)
}

/// Equation (2): `MS_RS-V = [Σ_i C(M, 2^i)^(Y/M)]^X` in log₂.
///
/// VEGETA: each row picks its own `N`, tiles within the row choose
/// positions independently.
pub fn ms_rs_vegeta(x: u64, y: u64, m: u64) -> f64 {
    let tiles_per_row = y / m;
    let per_row = power_candidates(m)
        .into_iter()
        .map(|n| log2_choose(m, n) * tiles_per_row as f64)
        .fold(f64::NEG_INFINITY, log2_add);
    per_row * x as f64
}

/// Equation (3): HighLight's hierarchical mask space in log₂:
///
/// `MS_RS-H = Σ_{i=M}^{2M−1} [(C(i, M) · C(M, M/2)^M)^(X·Y/(i·M)) + 2·C(i, M)^(X·Y/(i·M))]`
pub fn ms_rs_highlight(x: u64, y: u64, m: u64) -> f64 {
    assert!(m >= 2, "HighLight needs M >= 2");
    let xy = (x * y) as f64;
    let mut total = f64::NEG_INFINITY;
    for i in m..(2 * m) {
        let exponent = xy / (i as f64 * m as f64);
        let term1 = (log2_choose(i, m) + log2_choose(m, m / 2) * m as f64) * exponent;
        let term2 = 1.0 + log2_choose(i, m) * exponent; // log2(2 · C^e)
        total = log2_add(total, log2_add(term1, term2));
    }
    total
}

/// Equation (4): `MS_TBS = [Σ_i 2 · C(M, 2^i)^M]^(X·Y/M²)` in log₂.
///
/// TBS: each `M × M` block picks `N` (sum), a dimension (factor 2), and
/// positions per lane (`C(M, N)^M`).
pub fn ms_tbs(x: u64, y: u64, m: u64) -> f64 {
    let blocks = (x * y) as f64 / (m * m) as f64;
    let per_block = power_candidates(m)
        .into_iter()
        .map(|n| 1.0 + log2_choose(m, n) * m as f64) // log2(2 · C(M,N)^M)
        .fold(f64::NEG_INFINITY, log2_add);
    per_block * blocks
}

/// The unstructured mask space: every subset of the `X·Y` positions, i.e.
/// `log₂ MS_US = X·Y`.
pub fn ms_unstructured(x: u64, y: u64) -> f64 {
    (x * y) as f64
}

/// Mask-space summary for one matrix size, all patterns (Fig. 4(c) x-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskSpaceRow {
    /// Matrix is `x × y`, granularity `m`.
    pub x: u64,
    /// Reduction-dimension size.
    pub y: u64,
    /// Sparsity granularity.
    pub m: u64,
    /// log₂ MS for TS.
    pub ts: f64,
    /// log₂ MS for RS-V.
    pub rs_v: f64,
    /// log₂ MS for RS-H.
    pub rs_h: f64,
    /// log₂ MS for TBS.
    pub tbs: f64,
    /// log₂ MS for US.
    pub us: f64,
}

/// Computes all mask spaces for an `x × y` matrix at granularity `m`.
pub fn mask_space_row(x: u64, y: u64, m: u64) -> MaskSpaceRow {
    MaskSpaceRow {
        x,
        y,
        m,
        ts: ms_tile(x, y, m),
        rs_v: ms_rs_vegeta(x, y, m),
        rs_h: ms_rs_highlight(x, y, m),
        tbs: ms_tbs(x, y, m),
        us: ms_unstructured(x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - (3628800.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn log2_choose_small_cases() {
        assert_eq!(log2_choose(4, 0), 0.0);
        assert_eq!(log2_choose(4, 4), 0.0);
        assert!((log2_choose(4, 2) - (6.0f64).log2()).abs() < 1e-10);
        assert!((log2_choose(8, 4) - (70.0f64).log2()).abs() < 1e-10);
        assert_eq!(log2_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn log2_add_is_stable() {
        assert!((log2_add(10.0, 10.0) - 11.0).abs() < 1e-12);
        assert_eq!(log2_add(f64::NEG_INFINITY, 5.0), 5.0);
        // Huge difference: result is the max.
        assert_eq!(log2_add(1e4, 0.0), 1e4);
    }

    #[test]
    fn tiny_exhaustive_ts_check() {
        // 1x4 matrix, M=4: TS masks = C(4,1)+C(4,2)+C(4,4) = 4+6+1 = 11.
        let ms = ms_tile(1, 4, 4);
        assert!((ms.exp2() - 11.0).abs() < 1e-6, "{}", ms.exp2());
    }

    #[test]
    fn tiny_exhaustive_tbs_check() {
        // 2x2 matrix, M=2, one block: N in {1,2}, 2 dims:
        // N=1: 2 * C(2,1)^2 = 8 ; N=2: 2 * C(2,2)^2 = 2 ; total 10.
        let ms = ms_tbs(2, 2, 2);
        assert!((ms.exp2() - 10.0).abs() < 1e-6, "{}", ms.exp2());
    }

    #[test]
    fn ordering_matches_fig4c() {
        // For the paper's typical setting (X = Y, M = 8):
        // TS < RS-V < TBS < US. (RS-H interleaves between TS and TBS.)
        for &dim in &[64u64, 256, 1024] {
            let row = mask_space_row(dim, dim, 8);
            // TS <= RS-V: can be equal at f64 precision for large matrices,
            // where the sub-dominant terms of Eqs. (1)-(2) differ by less
            // than 2^-100 and vanish in the log-sum. Same for RS-H vs TS.
            assert!(row.ts <= row.rs_v, "TS {} <= RS-V {}", row.ts, row.rs_v);
            assert!(row.rs_h >= row.ts, "RS-H {} >= TS {}", row.rs_h, row.ts);
            // TBS strictly exceeds RS-V thanks to the per-block direction
            // bit (the `2 ·` of Eq. 4), and US strictly exceeds everything.
            assert!(row.rs_v < row.tbs, "RS-V {} < TBS {}", row.rs_v, row.tbs);
            assert!(row.tbs < row.us, "TBS {} < US {}", row.tbs, row.us);
        }
        // At a moderate size the TS < RS-V gap is representable and strict.
        let row = mask_space_row(64, 64, 8);
        assert!(row.ts < row.rs_v, "TS {} < RS-V {}", row.ts, row.rs_v);
    }

    #[test]
    fn tbs_exceeds_vegeta_by_dimension_freedom() {
        // TBS ~ per-block choice beats per-row choice at the same ladder.
        let row = mask_space_row(512, 512, 8);
        assert!(row.tbs > row.rs_v * 1.01);
    }

    #[test]
    fn scaling_with_matrix_size_is_linear_in_log() {
        let small = ms_tbs(64, 64, 8);
        let big = ms_tbs(128, 128, 8);
        assert!((big / small - 4.0).abs() < 1e-9, "log-MS scales with area");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_granularity() {
        let _ = ms_tile(8, 8, 6);
    }
}

/// Mask-Diversity (MD), the measure of NM-T the paper's footnote 2
/// discusses: the number of masks a pattern can express *at one fixed
/// sparsity ratio* `n:m` (MS generalizes MD by summing over ratios, which
/// is what lets it compare patterns across sparsity degrees).
pub mod mask_diversity {
    use super::{log2_add, log2_choose};

    /// `log₂ MD` of the tile-wise pattern at fixed `n:m` on `x × y`.
    pub fn md_tile(x: u64, y: u64, m: u64, n: u64) -> f64 {
        log2_choose(m, n) * (x * y / m) as f64
    }

    /// `log₂ MD` of the transposable block-wise pattern at fixed `n:m`:
    /// per block, a direction bit times `C(m, n)^m` placements.
    pub fn md_tbs(x: u64, y: u64, m: u64, n: u64) -> f64 {
        let per_block = if n == 0 || n == m {
            0.0 // direction is immaterial for empty/full blocks
        } else {
            1.0 + log2_choose(m, n) * m as f64
        };
        per_block * ((x * y) as f64 / (m * m) as f64)
    }

    /// `log₂ MD` of the unstructured pattern at a fixed kept count `k`.
    pub fn md_unstructured(x: u64, y: u64, k: u64) -> f64 {
        log2_choose(x * y, k)
    }

    /// `log₂` of the total MS recovered by summing MD over the power-of-
    /// two ratio ladder — sanity link between the two measures.
    pub fn ms_from_md_tile(x: u64, y: u64, m: u64) -> f64 {
        assert!(m.is_power_of_two(), "granularity must be a power of two");
        let mut total = f64::NEG_INFINITY;
        let mut n = 1;
        while n <= m {
            total = log2_add(total, md_tile(x, y, m, n));
            n *= 2;
        }
        total
    }
}

#[cfg(test)]
mod md_tests {
    use super::mask_diversity::*;
    use super::*;

    #[test]
    fn md_tile_small_case() {
        // 1x4, 2:4: C(4,2) = 6 masks.
        assert!((md_tile(1, 4, 4, 2).exp2() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn md_tbs_exceeds_md_tile_at_same_ratio() {
        // The dimension bit and per-lane placement freedom dominate.
        for n in [1u64, 2, 4] {
            assert!(md_tbs(64, 64, 8, n) > md_tile(64, 64, 8, n), "n = {n}");
        }
    }

    #[test]
    fn md_degenerate_ratios_have_one_mask() {
        assert_eq!(md_tbs(64, 64, 8, 0), 0.0);
        assert_eq!(md_tbs(64, 64, 8, 8), 0.0);
        assert_eq!(md_tile(64, 64, 8, 8), 0.0);
    }

    #[test]
    fn md_unstructured_dominates_everything() {
        // At 2:4-equivalent sparsity on a 64x64 matrix.
        let us = md_unstructured(64, 64, 64 * 64 / 2);
        assert!(us > md_tbs(64, 64, 8, 4));
    }

    #[test]
    fn ms_is_sum_of_md_over_ratios() {
        // The footnote's point: MD at one ratio cannot compare patterns
        // across sparsity degrees; summing MD over the ladder recovers MS
        // (up to TS's N=2^i ladder definition).
        let recovered = ms_from_md_tile(64, 64, 8);
        let direct = ms_tile(64, 64, 8);
        assert!((recovered - direct).abs() < 1e-9);
    }
}
