//! The sparsity-pattern family the paper compares (§II-A, Fig. 4(a)).
//!
//! Every pattern is a projection from an importance-score matrix onto a
//! structurally-constrained binary mask at a target sparsity degree:
//!
//! | Pattern | Paper name | Structure |
//! |---|---|---|
//! | [`Dense`] | Dense | keep everything |
//! | [`Unstructured`] | US | global top-k |
//! | [`TileNm`] | TS | fixed N:M in every M-element tile (NVIDIA STC) |
//! | [`RowWiseVegeta`] | RS-V | per-row N, N:M tiles within the row (VEGETA) |
//! | [`RowWiseHighlight`] | RS-H | hierarchical tile-level + element-level ratio (HighLight) |
//! | [`Tbs`] | TBS | per-block N **and** per-block dimension (this paper) |

use std::fmt;

use tbstc_matrix::Matrix;

use crate::mask::Mask;
use crate::tbs::{TbsConfig, TbsPattern};

/// Identifies a sparsity pattern for reporting, using the paper's names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternKind {
    /// No pruning.
    Dense,
    /// Unstructured (element-wise top-k).
    Unstructured,
    /// Tile-wise N:M (NVIDIA Sparse Tensor Core).
    TileNm,
    /// Row-wise N:M with per-row N (VEGETA).
    RowWiseVegeta,
    /// Hierarchical row-wise sparsity (HighLight).
    RowWiseHighlight,
    /// Transposable block-wise N:M (this paper).
    Tbs,
}

impl PatternKind {
    /// All pattern kinds in the order the paper's tables list them.
    pub const ALL: [PatternKind; 6] = [
        PatternKind::Dense,
        PatternKind::Unstructured,
        PatternKind::TileNm,
        PatternKind::RowWiseVegeta,
        PatternKind::RowWiseHighlight,
        PatternKind::Tbs,
    ];

    /// The sparse patterns compared in Tables I and II (everything but
    /// dense).
    pub const SPARSE: [PatternKind; 5] = [
        PatternKind::Unstructured,
        PatternKind::TileNm,
        PatternKind::RowWiseVegeta,
        PatternKind::RowWiseHighlight,
        PatternKind::Tbs,
    ];
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PatternKind::Dense => "Dense",
            PatternKind::Unstructured => "US",
            PatternKind::TileNm => "TS",
            PatternKind::RowWiseVegeta => "RS-V",
            PatternKind::RowWiseHighlight => "RS-H",
            PatternKind::Tbs => "TBS",
        };
        f.write_str(name)
    }
}

/// A sparsity pattern: a structured projection of importance scores onto a
/// binary mask.
///
/// Implementations must return a mask of the same shape as `scores` whose
/// sparsity is as close to `target` as the pattern's structure permits.
pub trait Pattern: fmt::Debug {
    /// Which pattern this is, for reporting.
    fn kind(&self) -> PatternKind;

    /// Projects `scores` onto the pattern's constraint at sparsity `target`.
    fn project(&self, scores: &Matrix, target: f64) -> Mask;
}

/// Constructs the paper-default instance of each pattern kind
/// (block/tile size 8, candidate ladder `{0, 1, 2, 4, 8}`).
pub fn paper_pattern(kind: PatternKind) -> Box<dyn Pattern> {
    match kind {
        PatternKind::Dense => Box::new(Dense),
        PatternKind::Unstructured => Box::new(Unstructured),
        PatternKind::TileNm => Box::new(TileNm::for_target(8)),
        PatternKind::RowWiseVegeta => Box::new(RowWiseVegeta::paper_default()),
        PatternKind::RowWiseHighlight => Box::new(RowWiseHighlight::paper_default()),
        PatternKind::Tbs => Box::new(Tbs(TbsConfig::paper_default())),
    }
}

/// The dense non-pattern: keeps everything regardless of target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dense;

impl Pattern for Dense {
    fn kind(&self) -> PatternKind {
        PatternKind::Dense
    }

    fn project(&self, scores: &Matrix, _target: f64) -> Mask {
        Mask::all(scores.rows(), scores.cols())
    }
}

/// Unstructured pruning: global top-k by score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unstructured;

impl Pattern for Unstructured {
    fn kind(&self) -> PatternKind {
        PatternKind::Unstructured
    }

    fn project(&self, scores: &Matrix, target: f64) -> Mask {
        let keep = ((1.0 - target) * scores.len() as f64).round() as usize;
        Mask::top_k(&scores.map(f32::abs), keep)
    }
}

/// Tile-wise N:M sparsity (TS): every `M`-element tile along the reduction
/// dimension keeps at most `N` elements, with the same `N` everywhere.
///
/// This is the NVIDIA Sparse Tensor Core pattern; the hardware supports
/// 2:4 (the paper evaluates its 4:8 equivalent, 50 % sparsity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileNm {
    n: usize,
    m: usize,
}

impl TileNm {
    /// A fixed `N:M` tile pattern.
    ///
    /// # Panics
    ///
    /// Panics when `n > m` or `m == 0`.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(m > 0 && n <= m, "need N <= M and M > 0");
        TileNm { n, m }
    }

    /// A tile pattern with tile size `m` whose `N` is chosen per projection
    /// from the target sparsity (`N = round((1 − target) · M)`).
    pub fn for_target(m: usize) -> Self {
        // `n` is recomputed in `project`; stored value marks "adaptive".
        TileNm { n: m, m }
    }

    /// The tile size `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `N` for a given target sparsity (at least the structure allows).
    fn n_for(&self, target: f64) -> usize {
        (((1.0 - target) * self.m as f64).round() as usize).min(self.m)
    }
}

impl Pattern for TileNm {
    fn kind(&self) -> PatternKind {
        PatternKind::TileNm
    }

    fn project(&self, scores: &Matrix, target: f64) -> Mask {
        let n = self.n.min(self.n_for(target));
        let abs = scores.map(f32::abs);
        let mut mask = Mask::none(scores.rows(), scores.cols());
        for r in 0..scores.rows() {
            for tile0 in (0..scores.cols()).step_by(self.m) {
                let width = self.m.min(scores.cols() - tile0);
                let mut idx: Vec<usize> = (0..width).collect();
                idx.sort_by(|&a, &b| {
                    abs[(r, tile0 + b)]
                        .partial_cmp(&abs[(r, tile0 + a)])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                for &i in idx.iter().take(n) {
                    mask.set(r, tile0 + i, true);
                }
            }
        }
        mask
    }
}

/// VEGETA's row-wise N:M (RS-V): each row chooses its own `N` from a
/// candidate ladder; tiles within the row share that `N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowWiseVegeta {
    m: usize,
    candidates: Vec<usize>,
}

impl RowWiseVegeta {
    /// The paper-default configuration: `M = 8`, `N ∈ {0, 1, 2, 4, 8}`.
    pub fn paper_default() -> Self {
        RowWiseVegeta {
            m: 8,
            candidates: vec![0, 1, 2, 4, 8],
        }
    }

    /// Custom tile size and candidate ladder.
    ///
    /// # Panics
    ///
    /// Panics when candidates are not strictly increasing or exceed `m`.
    pub fn new(m: usize, candidates: Vec<usize>) -> Self {
        assert!(m > 0, "tile size must be positive");
        assert!(
            candidates.windows(2).all(|w| w[0] < w[1]),
            "sorted candidates"
        );
        // tbstc-lint: allow(panic-surface) — the constructor IS the validation; candidates come from builtin arch tables
        assert!(*candidates.last().expect("non-empty") <= m, "N <= M");
        RowWiseVegeta { m, candidates }
    }
}

impl Pattern for RowWiseVegeta {
    fn kind(&self) -> PatternKind {
        PatternKind::RowWiseVegeta
    }

    fn project(&self, scores: &Matrix, target: f64) -> Mask {
        let abs = scores.map(f32::abs);
        let keep_total = ((1.0 - target) * scores.len() as f64).round() as usize;
        let unstructured = Mask::top_k(&abs, keep_total);

        // Per-row N matching the row's unstructured density.
        let mut row_n: Vec<usize> = (0..scores.rows())
            .map(|r| {
                let density = unstructured.row_kept(r) as f64 / scores.cols() as f64;
                nearest(&self.candidates, density, self.m)
            })
            .collect();
        // Global adjustment towards the target kept count.
        let row_mass: Vec<f64> = (0..scores.rows())
            .map(|r| abs.row(r).iter().map(|&x| f64::from(x)).sum())
            .collect();
        adjust_rows(
            &mut row_n,
            &self.candidates,
            &row_mass,
            scores.cols(),
            self.m,
            keep_total,
        );

        let mut mask = Mask::none(scores.rows(), scores.cols());
        for (r, &n) in row_n.iter().enumerate() {
            for tile0 in (0..scores.cols()).step_by(self.m) {
                let width = self.m.min(scores.cols() - tile0);
                let mut idx: Vec<usize> = (0..width).collect();
                idx.sort_by(|&a, &b| {
                    abs[(r, tile0 + b)]
                        .partial_cmp(&abs[(r, tile0 + a)])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                for &i in idx.iter().take(n) {
                    mask.set(r, tile0 + i, true);
                }
            }
        }
        mask
    }
}

/// HighLight's hierarchical sparsity (RS-H): a tensor-wide two-level ratio.
/// Level 1 keeps `T` of every `G` tiles (chosen by mass); level 2 keeps
/// `N` of every `M` elements inside kept tiles.
///
/// The achievable density ladder `T/G × N/M` is finer than TS's single
/// ratio, which is where HighLight's flexibility comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowWiseHighlight {
    m: usize,
    group: usize,
    candidates: Vec<usize>,
}

impl RowWiseHighlight {
    /// The paper-default configuration: `M = 8`, groups of `G = 2` tiles,
    /// element candidates `{1, 2, 4, 8}`.
    pub fn paper_default() -> Self {
        RowWiseHighlight {
            m: 8,
            group: 2,
            candidates: vec![1, 2, 4, 8],
        }
    }

    /// Enumerates achievable `(tiles_kept, n)` configurations with their
    /// densities.
    fn configs(&self) -> Vec<(usize, usize, f64)> {
        let mut v = Vec::new();
        v.push((0, 0, 0.0));
        for t in 1..=self.group {
            for &n in &self.candidates {
                let density = (t as f64 / self.group as f64) * (n as f64 / self.m as f64);
                v.push((t, n, density));
            }
        }
        v
    }
}

impl Pattern for RowWiseHighlight {
    fn kind(&self) -> PatternKind {
        PatternKind::RowWiseHighlight
    }

    fn project(&self, scores: &Matrix, target: f64) -> Mask {
        let abs = scores.map(f32::abs);
        let density = 1.0 - target;
        // Tensor-wide hierarchical ratio closest to the target density.
        let (tiles_kept, n, _) = self
            .configs()
            .into_iter()
            .min_by(|a, b| {
                (a.2 - density)
                    .abs()
                    .partial_cmp(&(b.2 - density).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Prefer denser configs on ties (conservative on
                    // accuracy), and among equal densities keep *more
                    // tiles* — spreading the budget (e.g. two 4:8 tiles)
                    // retains far more information than one dense tile.
                    .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                    .then(b.0.cmp(&a.0))
            })
            // tbstc-lint: allow(panic-surface) — configs is a non-empty builtin table, max_by cannot return None
            .expect("configs non-empty");

        let mut mask = Mask::none(scores.rows(), scores.cols());
        let group_span = self.group * self.m;
        for r in 0..scores.rows() {
            for g0 in (0..scores.cols()).step_by(group_span) {
                // Rank the group's tiles by mass; keep the heaviest.
                let tiles: Vec<usize> = (0..self.group)
                    .map(|t| g0 + t * self.m)
                    .filter(|&t0| t0 < scores.cols())
                    .collect();
                let mut ranked = tiles.clone();
                ranked.sort_by(|&a, &b| {
                    let mass = |t0: usize| -> f64 {
                        (t0..(t0 + self.m).min(scores.cols()))
                            .map(|c| f64::from(abs[(r, c)]))
                            .sum()
                    };
                    mass(b)
                        .partial_cmp(&mass(a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for &t0 in ranked.iter().take(tiles_kept) {
                    let width = self.m.min(scores.cols() - t0);
                    let mut idx: Vec<usize> = (0..width).collect();
                    idx.sort_by(|&a, &b| {
                        abs[(r, t0 + b)]
                            .partial_cmp(&abs[(r, t0 + a)])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    });
                    for &i in idx.iter().take(n) {
                        mask.set(r, t0 + i, true);
                    }
                }
            }
        }
        mask
    }
}

/// TBS as a [`Pattern`], delegating to [`TbsPattern::sparsify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tbs(pub TbsConfig);

impl Pattern for Tbs {
    fn kind(&self) -> PatternKind {
        PatternKind::Tbs
    }

    fn project(&self, scores: &Matrix, target: f64) -> Mask {
        TbsPattern::sparsify(scores, target, &self.0).into_mask()
    }
}

fn nearest(candidates: &[usize], density: f64, m: usize) -> usize {
    *candidates
        .iter()
        .min_by(|&&a, &&b| {
            let da = (a as f64 / m as f64 - density).abs();
            let db = (b as f64 / m as f64 - density).abs();
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        })
        // tbstc-lint: allow(panic-surface) — callers pass constructor-validated non-empty candidate sets
        .expect("candidates non-empty")
}

/// Adjusts per-row `N` choices so that the total kept count approaches
/// `keep_total` (same greedy scheme as TBS's block adjustment, at row
/// granularity).
fn adjust_rows(
    row_n: &mut [usize],
    candidates: &[usize],
    row_mass: &[f64],
    cols: usize,
    m: usize,
    keep_total: usize,
) {
    let tiles_per_row = cols.div_ceil(m);
    let kept_of = |n: usize| n * tiles_per_row;
    let mut total: i64 = row_n.iter().map(|&n| kept_of(n) as i64).sum();
    let target = keep_total as i64;
    loop {
        let deficit = target - total;
        if deficit == 0 {
            break;
        }
        let up = deficit > 0;
        let mut best: Option<(usize, usize, i64, f64)> = None;
        for (r, &n) in row_n.iter().enumerate() {
            // tbstc-lint: allow(panic-surface) — every row_n entry was drawn from `candidates`, so position always finds it
            let pos = candidates.iter().position(|&c| c == n).unwrap();
            let new_n = if up {
                match candidates.get(pos + 1) {
                    Some(&c) => c,
                    None => continue,
                }
            } else if pos > 0 {
                candidates[pos - 1]
            } else {
                continue;
            };
            let delta = kept_of(new_n) as i64 - kept_of(n) as i64;
            if (total + delta - target).abs() >= deficit.abs() {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, _, _, bm)) => {
                    if up {
                        row_mass[r] > *bm
                    } else {
                        row_mass[r] < *bm
                    }
                }
            };
            if better {
                best = Some((r, new_n, delta, row_mass[r]));
            }
        }
        let Some((r, new_n, delta, _)) = best else {
            break;
        };
        row_n[r] = new_n;
        total += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_matrix::rng::MatrixRng;

    fn weights(seed: u64) -> Matrix {
        MatrixRng::seed_from(seed).weights(64, 64)
    }

    #[test]
    fn kinds_display_paper_names() {
        assert_eq!(PatternKind::Tbs.to_string(), "TBS");
        assert_eq!(PatternKind::RowWiseVegeta.to_string(), "RS-V");
        assert_eq!(PatternKind::RowWiseHighlight.to_string(), "RS-H");
        assert_eq!(PatternKind::TileNm.to_string(), "TS");
        assert_eq!(PatternKind::Unstructured.to_string(), "US");
    }

    #[test]
    fn dense_keeps_everything() {
        let m = Dense.project(&weights(0), 0.9);
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn unstructured_hits_exact_target() {
        let m = Unstructured.project(&weights(1), 0.75);
        assert!((m.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn tile_nm_respects_structure() {
        let w = weights(2);
        let mask = TileNm::new(4, 8).project(&w, 0.5);
        for r in 0..w.rows() {
            for t0 in (0..w.cols()).step_by(8) {
                let kept = (t0..t0 + 8).filter(|&c| mask.get(r, c)).count();
                assert!(kept <= 4, "tile at ({r},{t0}) keeps {kept}");
            }
        }
        assert!((mask.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tile_nm_adaptive_n() {
        let w = weights(3);
        let mask = TileNm::for_target(8).project(&w, 0.75);
        assert!((mask.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn tile_nm_cannot_exceed_its_ratio() {
        // A 4:8 pattern asked for 25% sparsity still prunes 50%: the
        // hardware ratio is the ceiling (paper Table I footnote).
        let w = weights(4);
        let mask = TileNm::new(4, 8).project(&w, 0.25);
        assert!((mask.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vegeta_rows_use_different_n() {
        // Construct scores with very dense first rows and sparse last rows.
        let w = Matrix::from_fn(16, 64, |r, c| {
            if r < 8 {
                1.0 + (c as f32)
            } else if c % 8 == 0 {
                1.0
            } else {
                0.001
            }
        });
        let mask = RowWiseVegeta::paper_default().project(&w, 0.5);
        let first = mask.row_kept(0);
        let last = mask.row_kept(15);
        assert!(
            first > last,
            "dense row kept {first}, sparse row kept {last}"
        );
    }

    #[test]
    fn vegeta_close_to_target() {
        let mask = RowWiseVegeta::paper_default().project(&weights(5), 0.75);
        assert!((mask.sparsity() - 0.75).abs() < 0.05, "{}", mask.sparsity());
    }

    #[test]
    fn highlight_respects_hierarchy() {
        let w = weights(6);
        let mask = RowWiseHighlight::paper_default().project(&w, 0.75);
        // 75% sparsity => density 0.25 => e.g. keep 1 of 2 tiles at 4:8.
        // Per 16-element group at most 8 kept, and zero tiles are common.
        for r in 0..w.rows() {
            for g0 in (0..w.cols()).step_by(16) {
                let kept = (g0..g0 + 16).filter(|&c| mask.get(r, c)).count();
                assert!(kept <= 8, "group keeps {kept}");
            }
        }
        assert!((mask.sparsity() - 0.75).abs() < 0.1, "{}", mask.sparsity());
    }

    #[test]
    fn highlight_achieves_degrees_ts_cannot() {
        // 1/16 density (93.75% sparsity) is achievable hierarchically.
        let mask = RowWiseHighlight::paper_default().project(&weights(7), 0.9375);
        assert!(
            (mask.sparsity() - 0.9375).abs() < 0.05,
            "{}",
            mask.sparsity()
        );
    }

    #[test]
    fn retained_mass_ordering_matches_paper() {
        // The mechanism behind Tables I and II: patterns with larger
        // mask-space retain more importance mass. Expect
        // US >= TBS >= max(RS-V, RS-H) >= TS at equal sparsity.
        // Uses block-structured weights: on i.i.d. weights all N:M
        // projections coincide and the ordering is vacuous (see
        // MatrixRng::block_structured_weights docs).
        let w = MatrixRng::seed_from(8).block_structured_weights(64, 64, 8);
        let target = 0.75;
        let mass = |kind: PatternKind| -> f64 {
            let mask = paper_pattern(kind).project(&w, target);
            mask.iter_kept()
                .map(|(r, c)| f64::from(w[(r, c)].abs()))
                .sum()
        };
        let us = mass(PatternKind::Unstructured);
        let tbs = mass(PatternKind::Tbs);
        let rsv = mass(PatternKind::RowWiseVegeta);
        let rsh = mass(PatternKind::RowWiseHighlight);
        let ts = mass(PatternKind::TileNm);
        assert!(us >= tbs, "US {us} >= TBS {tbs}");
        assert!(
            tbs >= rsv.max(rsh) * 0.999,
            "TBS {tbs} vs RS {}",
            rsv.max(rsh)
        );
        assert!(rsv >= ts * 0.999, "RS-V {rsv} vs TS {ts}");
    }

    #[test]
    fn paper_pattern_constructs_all() {
        for kind in PatternKind::ALL {
            let p = paper_pattern(kind);
            assert_eq!(p.kind(), kind);
            let mask = p.project(&weights(9), 0.5);
            assert_eq!(mask.shape(), (64, 64));
        }
    }

    #[test]
    fn patterns_are_object_safe() {
        let patterns: Vec<Box<dyn Pattern>> = vec![
            Box::new(Dense),
            Box::new(Unstructured),
            Box::new(TileNm::new(2, 4)),
        ];
        assert_eq!(patterns.len(), 3);
    }
}
