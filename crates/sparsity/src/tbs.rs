//! The Transposable Block-wise N:M (TBS) sparsity pattern — Algorithm 1.
//!
//! TBS (paper §III-A) splits a weight matrix into `M × M` blocks. Each
//! block independently chooses
//!
//! 1. a density level `N ∈ N_candidate` (a divisor chain of `M`, the paper
//!    uses `{0, 1, 2, 4, 8}` for `M = 8`), and
//! 2. a *sparsity dimension*: whether the N:M constraint runs along the
//!    **reduction** dimension (row-wise within the block) or the
//!    **independent** dimension (column-wise within the block).
//!
//! The sparsification procedure (Algorithm 1) finds the TBS pattern closest
//! to the unstructured pattern:
//!
//! * **Step 1** — unstructured pruning at the target sparsity,
//! * **Step 2** — per block, pick the `N` whose density `N/M` is closest to
//!   the block's unstructured density,
//! * **Step 3** — build the N:M mask in both dimensions (keeping top-`N`
//!   absolute values per row / per column) and keep whichever is closer in
//!   `L1` (Hamming) distance to the unstructured mask.
//!
//! A final global adjustment nudges the per-block `N` choices so that the
//! overall sparsity meets the predetermined target, as required by step 2
//! of the paper's algorithm.

use tbstc_matrix::tile::{blocks_along, BlockCoord};
use tbstc_matrix::Matrix;

use crate::mask::Mask;

/// The sparsity dimension a block's N:M constraint runs along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparsityDim {
    /// N:M within each row of the block (reduction dimension). This is the
    /// computation-friendly orientation that needs no format conversion.
    Reduction,
    /// N:M within each column of the block (independent dimension); the
    /// codec converts it to computation format on the fly.
    Independent,
}

impl SparsityDim {
    /// The other dimension.
    pub fn flip(self) -> Self {
        match self {
            SparsityDim::Reduction => SparsityDim::Independent,
            SparsityDim::Independent => SparsityDim::Reduction,
        }
    }
}

/// Configuration of the TBS pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsConfig {
    /// Block size `M` (the paper uses 8).
    pub m: usize,
    /// Candidate non-zero counts per `M` (the paper uses `{0, 1, 2, 4, 8}`).
    pub n_candidates: Vec<usize>,
}

impl TbsConfig {
    /// The paper's configuration: `M = 8`, `N ∈ {0, 1, 2, 4, 8}`.
    pub fn paper_default() -> Self {
        TbsConfig {
            m: 8,
            n_candidates: vec![0, 1, 2, 4, 8],
        }
    }

    /// A configuration with block size `m` and the power-of-two candidate
    /// ladder `{0, 1, 2, …, m}` (plus `m` itself).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two or is zero.
    pub fn with_block_size(m: usize) -> Self {
        assert!(
            m > 0 && m.is_power_of_two(),
            "block size must be a power of two"
        );
        let mut n_candidates = vec![0];
        let mut n = 1;
        while n <= m {
            n_candidates.push(n);
            n *= 2;
        }
        TbsConfig { m, n_candidates }
    }

    /// Validates invariants: `m > 0`, candidates sorted, unique, `≤ m`.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert!(self.m > 0, "block size must be positive");
        assert!(
            !self.n_candidates.is_empty(),
            "need at least one N candidate"
        );
        assert!(
            self.n_candidates.windows(2).all(|w| w[0] < w[1]),
            "N candidates must be strictly increasing"
        );
        assert!(
            // tbstc-lint: allow(panic-surface) — validate() is the panic point by design; the preceding assert guarantees non-empty
            *self.n_candidates.last().unwrap() <= self.m,
            "N candidates cannot exceed M"
        );
    }
}

/// Per-block metadata of a TBS pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Grid position of the block.
    pub coord: BlockCoord,
    /// Chosen `N` (non-zeros per `M` along the sparsity dimension).
    pub n: usize,
    /// Chosen sparsity dimension.
    pub dim: SparsityDim,
}

impl BlockInfo {
    /// The block's density `N/M` for block size `m`.
    pub fn density(&self, m: usize) -> f64 {
        self.n as f64 / m as f64
    }
}

/// A complete TBS pattern: the mask plus per-block metadata.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::rng::MatrixRng;
/// use tbstc_sparsity::{TbsConfig, TbsPattern};
///
/// let w = MatrixRng::seed_from(1).weights(32, 32);
/// let p = TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default());
/// // Every block satisfies N:M along its chosen dimension.
/// p.assert_valid();
/// assert!((p.mask().sparsity() - 0.75).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TbsPattern {
    mask: Mask,
    blocks: Vec<BlockInfo>,
    config: TbsConfig,
}

impl TbsPattern {
    /// Runs Algorithm 1 on importance scores `scores` (higher = more
    /// important) at target sparsity `target` ∈ `[0, 1]`.
    ///
    /// For magnitude pruning pass `w.map(f32::abs)` (or the raw weights —
    /// only `|scores|` ordering matters); for Wanda/SparseGPT pass those
    /// criteria's score matrices (see [`crate::criteria`]).
    ///
    /// # Panics
    ///
    /// Panics when `target` is outside `[0, 1]` or `config` is invalid.
    pub fn sparsify(scores: &Matrix, target: f64, config: &TbsConfig) -> Self {
        assert!((0.0..=1.0).contains(&target), "target sparsity in [0, 1]");
        config.validate();
        let m = config.m;
        let abs_scores = scores.map(f32::abs);

        // Step 1: unstructured pruning at the target sparsity.
        let total = scores.len();
        let keep_total = ((1.0 - target) * total as f64).round() as usize;
        let unstructured = Mask::top_k(&abs_scores, keep_total);

        // Step 2: choose N per block to match the block's unstructured
        // density, then globally adjust so overall sparsity hits the target.
        // Blocks are walked through borrowed views: nothing in the per-block
        // loops allocates.
        let grid_rows = blocks_along(scores.rows(), m);
        let grid_cols = blocks_along(scores.cols(), m);
        let mut chosen: Vec<(BlockCoord, usize)> = Vec::with_capacity(grid_rows * grid_cols);
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                let coord = BlockCoord {
                    block_row: br,
                    block_col: bc,
                };
                let (r0, c0) = coord.origin(m);
                let kept = unstructured.block_view(r0, c0, m, m).count_kept();
                let density = kept as f64 / (m * m) as f64;
                let n = nearest_candidate(&config.n_candidates, density, m);
                chosen.push((coord, n));
            }
        }
        adjust_to_target(&mut chosen, &abs_scores, config, keep_total);

        // Step 3: per block, build both directional candidate sets and keep
        // the one closer (L1/Hamming) to the unstructured mask. The winner
        // is written straight into the full-size mask (out-of-bounds padded
        // positions dropped). The current block's scores and unstructured
        // flags are staged into zero-padded contiguous scratch buffers
        // (refilled from row slices), so the lane sorts and overlap counts
        // run on flat memory instead of bounds-checked views; one index
        // buffer and two candidate lists are likewise reused across blocks.
        let mut mask = Mask::none(scores.rows(), scores.cols());
        let mut blocks = Vec::with_capacity(chosen.len());
        let mut idx = Vec::with_capacity(m);
        let mut row_cand: Vec<(usize, usize)> = Vec::with_capacity(m * m);
        let mut col_cand: Vec<(usize, usize)> = Vec::with_capacity(m * m);
        let mut s_buf = vec![0.0f32; m * m];
        let mut u_buf = vec![false; m * m];
        for (coord, n) in chosen {
            let (r0, c0) = coord.origin(m);
            let rmax = (r0 + m).min(scores.rows());
            let cmax = (c0 + m).min(scores.cols());
            let w = cmax - c0;
            s_buf.fill(0.0);
            u_buf.fill(false);
            let mut un_kept = 0usize;
            for r in r0..rmax {
                let dst = (r - r0) * m;
                s_buf[dst..dst + w].copy_from_slice(&abs_scores.row(r)[c0..cmax]);
                for (d, &k) in u_buf[dst..dst + w]
                    .iter_mut()
                    .zip(&unstructured.row(r)[c0..cmax])
                {
                    *d = k;
                    un_kept += usize::from(k);
                }
            }

            row_cand.clear();
            col_cand.clear();
            for lane in 0..m {
                lane_top_n(&s_buf, m, lane, n, SparsityDim::Reduction, &mut idx);
                row_cand.extend(idx.iter().map(|&i| (lane, i)));
                lane_top_n(&s_buf, m, lane, n, SparsityDim::Independent, &mut idx);
                col_cand.extend(idx.iter().map(|&i| (i, lane)));
            }

            // Hamming(A, U) = |A| + |U| − 2|A ∩ U|; every candidate set
            // keeps exactly n·m positions (padding included, matching
            // `nm_block_mask` on a zero-padded block copy).
            let overlap =
                |cand: &[(usize, usize)]| cand.iter().filter(|&&(r, c)| u_buf[r * m + c]).count();
            let ham_row = n * m + un_kept - 2 * overlap(&row_cand);
            let ham_col = n * m + un_kept - 2 * overlap(&col_cand);
            let (dim, winner) = if ham_row <= ham_col {
                (SparsityDim::Reduction, &row_cand)
            } else {
                (SparsityDim::Independent, &col_cand)
            };
            for &(r, c) in winner {
                if r0 + r < scores.rows() && c0 + c < scores.cols() {
                    mask.set(r0 + r, c0 + c, true);
                }
            }
            blocks.push(BlockInfo { coord, n, dim });
        }

        TbsPattern {
            mask,
            blocks,
            config: config.clone(),
        }
    }

    /// Consumes the pattern and returns its mask without cloning.
    pub fn into_mask(self) -> Mask {
        self.mask
    }

    /// The combined keep/prune mask.
    pub fn mask(&self) -> &Mask {
        &self.mask
    }

    /// Per-block metadata in row-major block order.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// The configuration the pattern was built with.
    pub fn config(&self) -> &TbsConfig {
        &self.config
    }

    /// Block-grid shape `(block_rows, block_cols)`.
    pub fn grid(&self) -> (usize, usize) {
        let m = self.config.m;
        (
            blocks_along(self.mask.rows(), m),
            blocks_along(self.mask.cols(), m),
        )
    }

    /// The transposed pattern — the paper's titular property.
    ///
    /// DL training multiplies by `W` in the forward pass and by `Wᵀ` in
    /// the backward pass (§I challenge 1). A TBS pattern stays TBS under
    /// transposition: each `M × M` block transposes in place with its
    /// sparsity dimension flipped (a row-wise N:M block becomes a
    /// column-wise one and vice versa), so the *same* hardware
    /// accelerates both passes. One-dimensional patterns (TS/RS) lose
    /// their structure when transposed — this closure property is what
    /// earns TBS its name.
    ///
    /// # Examples
    ///
    /// ```
    /// use tbstc_matrix::rng::MatrixRng;
    /// use tbstc_sparsity::{TbsConfig, TbsPattern};
    ///
    /// let w = MatrixRng::seed_from(3).block_structured_weights(32, 32, 8);
    /// let p = TbsPattern::sparsify(&w, 0.5, &TbsConfig::paper_default());
    /// let t = p.transpose();
    /// t.assert_valid(); // still a structurally valid TBS pattern
    /// assert_eq!(t.transpose(), p); // involution
    /// ```
    pub fn transpose(&self) -> TbsPattern {
        let mut blocks: Vec<BlockInfo> = self
            .blocks
            .iter()
            .map(|b| BlockInfo {
                coord: BlockCoord {
                    block_row: b.coord.block_col,
                    block_col: b.coord.block_row,
                },
                n: b.n,
                dim: b.dim.flip(),
            })
            .collect();
        // Keep row-major block order in the transposed grid.
        blocks.sort_by_key(|b| (b.coord.block_row, b.coord.block_col));
        TbsPattern {
            mask: self.mask.transpose(),
            blocks,
            config: self.config.clone(),
        }
    }

    /// Checks the structural invariant: every block keeps at most `N`
    /// elements per lane of its sparsity dimension, and `N` is a configured
    /// candidate.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated block.
    pub fn assert_valid(&self) {
        let m = self.config.m;
        for info in &self.blocks {
            assert!(
                self.config.n_candidates.contains(&info.n),
                "block {:?} uses non-candidate N {}",
                info.coord,
                info.n
            );
            let (r0, c0) = info.coord.origin(m);
            let block = self.mask.block(r0, c0, m, m);
            for lane in 0..m {
                let kept = match info.dim {
                    SparsityDim::Reduction => block.row_kept(lane),
                    SparsityDim::Independent => block.col_kept(lane),
                };
                assert!(
                    kept <= info.n,
                    "block {:?} lane {} keeps {} > N={} ({:?})",
                    info.coord,
                    lane,
                    kept,
                    info.n,
                    info.dim
                );
            }
        }
    }
}

/// Keeps the top-`n` scores per lane of `dim` within an `m × m` block.
///
/// Lane = row for [`SparsityDim::Reduction`], column for
/// [`SparsityDim::Independent`].
pub fn nm_block_mask(block_scores: &Matrix, n: usize, dim: SparsityDim) -> Mask {
    let m = block_scores.rows();
    debug_assert_eq!(block_scores.cols(), m, "blocks are square");
    let mut mask = Mask::none(m, m);
    let mut idx = Vec::with_capacity(m);
    for lane in 0..m {
        lane_top_n(block_scores.as_slice(), m, lane, n, dim, &mut idx);
        for &i in &idx {
            match dim {
                SparsityDim::Reduction => mask.set(lane, i, true),
                SparsityDim::Independent => mask.set(i, lane, true),
            }
        }
    }
    mask
}

/// Fills `idx` with the top-`n` in-lane indices of the row-major `m × m`
/// score block `s` (ties broken by lower index, exactly the
/// `nm_block_mask` ordering), reusing `idx`'s allocation.
///
/// The degenerate lanes skip the sort: `n = 0` keeps nothing and `n ≥ m`
/// keeps every in-lane index, and in both cases the kept *set* — the only
/// thing callers consume — matches the sorted-then-truncated result.
fn lane_top_n(s: &[f32], m: usize, lane: usize, n: usize, dim: SparsityDim, idx: &mut Vec<usize>) {
    idx.clear();
    if n == 0 {
        return;
    }
    idx.extend(0..m);
    if n >= m {
        return;
    }
    idx.sort_by(|&a, &b| {
        let (sa, sb) = match dim {
            SparsityDim::Reduction => (s[lane * m + a], s[lane * m + b]),
            SparsityDim::Independent => (s[a * m + lane], s[b * m + lane]),
        };
        sb.partial_cmp(&sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(n);
}

/// Picks the candidate `N` whose density `N/M` is nearest `density`
/// (Algorithm 1 line 6, reading `s_p` as the block *density* — the printed
/// formula `|N_i/M − s_p|` with `s_p` the sparsity degree is a typo: `N/M`
/// is a density, so it must be compared with the density `1 − s_p`).
fn nearest_candidate(candidates: &[usize], density: f64, m: usize) -> usize {
    *candidates
        .iter()
        .min_by(|&&a, &&b| {
            let da = (a as f64 / m as f64 - density).abs();
            let db = (b as f64 / m as f64 - density).abs();
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a)) // prefer the denser candidate on ties
        })
        // tbstc-lint: allow(panic-surface) — TbsConfig::validate rejects empty candidate lists before this runs
        .expect("candidates validated non-empty")
}

/// Globally adjusts per-block `N` choices so that the total kept count is
/// as close as possible to `keep_total` (paper: "ensuring the overall
/// sparsity meets the predetermined target").
///
/// Greedy: repeatedly move the block whose change sacrifices the least
/// importance mass per kept-slot step.
fn adjust_to_target(
    chosen: &mut [(BlockCoord, usize)],
    abs_scores: &Matrix,
    config: &TbsConfig,
    keep_total: usize,
) {
    let m = config.m;
    let kept_of = |n: usize| n * m; // each block keeps N per lane × M lanes
    let mut total_kept: i64 = chosen.iter().map(|&(_, n)| kept_of(n) as i64).sum();
    let target = keep_total as i64;
    if total_kept == target {
        return;
    }

    // Score a block's marginal value at a candidate step: its importance
    // mass (cheap proxy for importance lost/gained). Computed once up
    // front — the greedy loop re-reads every block's mass each iteration.
    // `BlockView::l1_norm` keeps its per-row partial-sum order, so each
    // precomputed mass is bit-identical to the on-demand value it replaces
    // and every strict-inequality tie-break below is unchanged.
    let masses: Vec<f64> = chosen
        .iter()
        .map(|&(coord, _)| {
            let (r0, c0) = coord.origin(m);
            abs_scores.block_view(r0, c0, m, m).l1_norm()
        })
        .collect();

    let step = |n: usize, up: bool| -> Option<usize> {
        let pos = config.n_candidates.iter().position(|&c| c == n)?;
        if up {
            config.n_candidates.get(pos + 1).copied()
        } else {
            pos.checked_sub(1).map(|p| config.n_candidates[p])
        }
    };

    // Move towards the target one candidate step at a time, choosing the
    // block with the most (when increasing) or least (when decreasing)
    // importance mass. Stop when no step improves the distance to target.
    loop {
        let deficit = target - total_kept;
        if deficit == 0 {
            break;
        }
        let up = deficit > 0;
        let mut best: Option<(usize, usize, i64, f64)> = None; // (idx, new_n, delta, mass)
        for (i, &(_, n)) in chosen.iter().enumerate() {
            let Some(new_n) = step(n, up) else { continue };
            let delta = kept_of(new_n) as i64 - kept_of(n) as i64;
            // Only steps that reduce |deficit| are useful.
            if (total_kept + delta - target).abs() >= deficit.abs() {
                continue;
            }
            let mass = masses[i];
            let better = match &best {
                None => true,
                Some((_, _, _, best_mass)) => {
                    if up {
                        mass > *best_mass // densify the most important block
                    } else {
                        mass < *best_mass // sparsify the least important block
                    }
                }
            };
            if better {
                best = Some((i, new_n, delta, mass));
            }
        }
        let Some((i, new_n, delta, _)) = best else {
            break;
        };
        chosen[i].1 = new_n;
        total_kept += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use proptest::prelude::*;
    use tbstc_matrix::rng::MatrixRng;

    fn cfg() -> TbsConfig {
        TbsConfig::paper_default()
    }

    #[test]
    fn paper_default_matches_paper() {
        let c = cfg();
        assert_eq!(c.m, 8);
        assert_eq!(c.n_candidates, vec![0, 1, 2, 4, 8]);
    }

    #[test]
    fn with_block_size_ladder() {
        let c = TbsConfig::with_block_size(16);
        assert_eq!(c.n_candidates, vec![0, 1, 2, 4, 8, 16]);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_block_size_rejects_non_pow2() {
        let _ = TbsConfig::with_block_size(6);
    }

    #[test]
    fn nearest_candidate_matches_density() {
        let cands = vec![0, 1, 2, 4, 8];
        assert_eq!(nearest_candidate(&cands, 0.0, 8), 0);
        assert_eq!(nearest_candidate(&cands, 0.13, 8), 1);
        assert_eq!(nearest_candidate(&cands, 0.5, 8), 4);
        assert_eq!(nearest_candidate(&cands, 1.0, 8), 8);
    }

    #[test]
    fn nm_block_mask_row_dim() {
        let s = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let m = nm_block_mask(&s, 2, SparsityDim::Reduction);
        for r in 0..4 {
            assert_eq!(m.row_kept(r), 2);
            // Highest scores are in the last columns.
            assert!(m.get(r, 2) && m.get(r, 3));
        }
    }

    #[test]
    fn nm_block_mask_col_dim() {
        let s = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let m = nm_block_mask(&s, 2, SparsityDim::Independent);
        for c in 0..4 {
            assert_eq!(m.col_kept(c), 2);
            assert!(m.get(2, c) && m.get(3, c));
        }
    }

    #[test]
    fn sparsify_hits_target_sparsity() {
        let w = MatrixRng::seed_from(10).weights(64, 64);
        for &target in &[0.25, 0.5, 0.75, 0.875] {
            let p = TbsPattern::sparsify(&w, target, &cfg());
            p.assert_valid();
            assert!(
                (p.mask().sparsity() - target).abs() < 0.03,
                "target {target} got {}",
                p.mask().sparsity()
            );
        }
    }

    #[test]
    fn sparsify_zero_target_keeps_all() {
        let w = MatrixRng::seed_from(11).weights(16, 16);
        let p = TbsPattern::sparsify(&w, 0.0, &cfg());
        assert_eq!(p.mask().count_kept(), 256);
    }

    #[test]
    fn sparsify_full_target_prunes_all() {
        let w = MatrixRng::seed_from(12).weights(16, 16);
        let p = TbsPattern::sparsify(&w, 1.0, &cfg());
        assert_eq!(p.mask().count_kept(), 0);
    }

    #[test]
    fn blocks_choose_both_dimensions() {
        // A large random matrix should produce a mixture of directions
        // (paper Fig. 17: neither dimension dominates completely).
        let w = MatrixRng::seed_from(13).weights(128, 128);
        let p = TbsPattern::sparsify(&w, 0.6, &cfg());
        let row = p
            .blocks()
            .iter()
            .filter(|b| b.dim == SparsityDim::Reduction)
            .count();
        let col = p.blocks().len() - row;
        assert!(row > 0 && col > 0, "row {row} col {col}");
    }

    #[test]
    fn tbs_closer_to_unstructured_than_tile_pattern() {
        // The motivating claim: TBS mask is closer to the US mask than a
        // fixed-direction tile pattern at the same sparsity.
        let w = MatrixRng::seed_from(14).weights(64, 64);
        let target = 0.5;
        let abs = w.map(f32::abs);
        let us = Mask::top_k(&abs, (64 * 64) / 2);
        let p = TbsPattern::sparsify(&w, target, &cfg());
        let tile = crate::pattern::TileNm::new(4, 8).project(&abs, target);
        assert!(p.mask().hamming(&us) <= tile.hamming(&us));
    }

    #[test]
    fn non_multiple_shapes_are_padded() {
        let w = MatrixRng::seed_from(15).weights(20, 28); // not multiples of 8
        let p = TbsPattern::sparsify(&w, 0.5, &cfg());
        p.assert_valid();
        assert_eq!(p.mask().shape(), (20, 28));
        assert_eq!(p.grid(), (3, 4));
    }

    #[test]
    fn sparsify_matches_blockwise_reference() {
        // The view-based step 3 must reproduce the allocate-per-block
        // reference exactly: same dimension choice, same kept positions.
        let w = MatrixRng::seed_from(77).weights(20, 28); // non-multiple shape
        let config = cfg();
        let m = config.m;
        let target = 0.6;
        let p = TbsPattern::sparsify(&w, target, &config);

        let abs_scores = w.map(f32::abs);
        let keep_total = ((1.0 - target) * w.len() as f64).round() as usize;
        let unstructured = Mask::top_k(&abs_scores, keep_total);
        for info in p.blocks() {
            let (r0, c0) = info.coord.origin(m);
            let block_scores = abs_scores.block(r0, c0, m, m);
            let block_un = unstructured.block(r0, c0, m, m);
            let row_mask = nm_block_mask(&block_scores, info.n, SparsityDim::Reduction);
            let col_mask = nm_block_mask(&block_scores, info.n, SparsityDim::Independent);
            let (dim, best) = if row_mask.hamming(&block_un) <= col_mask.hamming(&block_un) {
                (SparsityDim::Reduction, row_mask)
            } else {
                (SparsityDim::Independent, col_mask)
            };
            assert_eq!(info.dim, dim, "block {:?}", info.coord);
            for r in 0..m {
                for c in 0..m {
                    if r0 + r < w.rows() && c0 + c < w.cols() {
                        assert_eq!(
                            p.mask().get(r0 + r, c0 + c),
                            best.get(r, c),
                            "block {:?} at ({r},{c})",
                            info.coord
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn into_mask_matches_mask() {
        let w = MatrixRng::seed_from(21).weights(16, 16);
        let p = TbsPattern::sparsify(&w, 0.5, &cfg());
        let mask = p.mask().clone();
        assert_eq!(p.into_mask(), mask);
    }

    #[test]
    fn block_info_density() {
        let b = BlockInfo {
            coord: BlockCoord {
                block_row: 0,
                block_col: 0,
            },
            n: 4,
            dim: SparsityDim::Reduction,
        };
        assert_eq!(b.density(8), 0.5);
    }

    #[test]
    fn sparsity_dim_flip() {
        assert_eq!(SparsityDim::Reduction.flip(), SparsityDim::Independent);
        assert_eq!(SparsityDim::Independent.flip(), SparsityDim::Reduction);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn valid_for_any_target(seed in 0u64..50, target_pct in 0u32..=100) {
            let target = f64::from(target_pct) / 100.0;
            let w = MatrixRng::seed_from(seed).weights(32, 32);
            let p = TbsPattern::sparsify(&w, target, &cfg());
            p.assert_valid();
            // Never keeps more than the dense count, never negative.
            prop_assert!(p.mask().count_kept() <= 32 * 32);
        }

        #[test]
        fn mask_kept_positions_score_above_block_median(seed in 0u64..20) {
            // Kept elements should generally be the important ones: the
            // total kept mass must exceed the mass of a random mask of the
            // same size.
            let w = MatrixRng::seed_from(seed).weights(32, 32);
            let p = TbsPattern::sparsify(&w, 0.5, &cfg());
            let kept_mass: f64 = p
                .mask()
                .iter_kept()
                .map(|(r, c)| f64::from(w[(r, c)].abs()))
                .sum();
            let total = w.l1_norm();
            let frac = kept_mass / total;
            // Random 50% mask keeps ~50% of mass; top-k style keeps much more.
            prop_assert!(frac > 0.6, "kept fraction {frac}");
        }
    }
}

#[cfg(test)]
mod transpose_tests {
    use super::*;
    use crate::pattern::paper_pattern;
    use proptest::prelude::*;
    use tbstc_matrix::rng::MatrixRng;

    #[test]
    fn transpose_is_valid_and_involutive() {
        let w = MatrixRng::seed_from(41).block_structured_weights(48, 64, 8);
        let p = TbsPattern::sparsify(&w, 0.6, &TbsConfig::paper_default());
        let t = p.transpose();
        t.assert_valid();
        assert_eq!(t.mask().shape(), (64, 48));
        assert_eq!(t.transpose(), p);
    }

    #[test]
    fn transpose_flips_every_block_dim() {
        let w = MatrixRng::seed_from(42).block_structured_weights(32, 32, 8);
        let p = TbsPattern::sparsify(&w, 0.5, &TbsConfig::paper_default());
        let t = p.transpose();
        for b in p.blocks() {
            let tb = t
                .blocks()
                .iter()
                .find(|x| {
                    x.coord.block_row == b.coord.block_col && x.coord.block_col == b.coord.block_row
                })
                .expect("transposed block exists");
            assert_eq!(tb.n, b.n);
            assert_eq!(tb.dim, b.dim.flip());
        }
    }

    #[test]
    fn transposed_mask_matches_mask_transpose() {
        let w = MatrixRng::seed_from(43).block_structured_weights(40, 24, 8);
        let p = TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default());
        assert_eq!(*p.transpose().mask(), p.mask().transpose());
    }

    #[test]
    fn one_dimensional_patterns_do_not_survive_transposition() {
        // The motivating contrast: a TS (4:8 row-tile) mask transposed is
        // generally NOT a valid 4:8 row-tile mask, while TBS is closed
        // under transposition by construction.
        let w = MatrixRng::seed_from(44).block_structured_weights(64, 64, 8);
        let ts_mask = paper_pattern(crate::PatternKind::TileNm).project(&w, 0.5);
        let t = ts_mask.transpose();
        let mut violated = false;
        'outer: for r in 0..t.rows() {
            for tile0 in (0..t.cols()).step_by(8) {
                let kept = (tile0..(tile0 + 8).min(t.cols()))
                    .filter(|&c| t.get(r, c))
                    .count();
                if kept > 4 {
                    violated = true;
                    break 'outer;
                }
            }
        }
        assert!(violated, "transposed TS mask should violate 4:8 tiles");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn transpose_closure_any_shape(seed in 0u64..100, t_pct in 0u32..=100) {
            let w = MatrixRng::seed_from(seed).block_structured_weights(24, 40, 8);
            let p = TbsPattern::sparsify(&w, f64::from(t_pct) / 100.0, &TbsConfig::paper_default());
            let t = p.transpose();
            t.assert_valid();
            prop_assert_eq!(t.mask().count_kept(), p.mask().count_kept());
        }
    }
}
