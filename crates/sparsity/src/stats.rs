//! Block-level statistics of a TBS pattern (paper Fig. 17).
//!
//! Fig. 17 classifies the blocks of a TBS-pruned model into three bins —
//! blocks whose N:M constraint runs along the **row** (reduction)
//! direction, along the **column** (independent) direction, and **other**
//! blocks for which the direction is immaterial (empty, full, or masks
//! identical in both directions) — and reports the mix per layer and for
//! the whole model (≈18.7 % row / 46.0 % column / 35.3 % other on
//! ResNet-50).

use crate::tbs::{SparsityDim, TbsPattern};

/// The Fig. 17 classification of a single block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockClass {
    /// The block is meaningfully row-direction (reduction) sparse.
    Row,
    /// The block is meaningfully column-direction (independent) sparse.
    Column,
    /// Direction is immaterial: the block is empty (`N = 0`), dense
    /// (`N = M`), or both directional masks coincide.
    Other,
}

/// Distribution of block classes over a pattern or layer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockDistribution {
    /// Count of row-direction blocks.
    pub row: usize,
    /// Count of column-direction blocks.
    pub column: usize,
    /// Count of direction-immaterial blocks.
    pub other: usize,
}

impl BlockDistribution {
    /// Total number of blocks.
    pub fn total(&self) -> usize {
        self.row + self.column + self.other
    }

    /// Fractions `(row, column, other)`, each in `[0, 1]`.
    ///
    /// Returns zeros for an empty distribution.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.row as f64 / t,
            self.column as f64 / t,
            self.other as f64 / t,
        )
    }

    /// Accumulates another distribution (used for the "Total" bar of
    /// Fig. 17).
    pub fn merge(&mut self, other: &BlockDistribution) {
        self.row += other.row;
        self.column += other.column;
        self.other += other.other;
    }
}

/// Classifies every block of a TBS pattern.
///
/// A block is `Other` when its direction choice cannot matter: `N = 0`
/// (empty), `N = M` (dense), or the mask it ended up with satisfies the
/// N:M constraint in *both* directions simultaneously.
pub fn classify_blocks(pattern: &TbsPattern) -> BlockDistribution {
    let m = pattern.config().m;
    let mut dist = BlockDistribution::default();
    for info in pattern.blocks() {
        if info.n == 0 || info.n == m {
            dist.other += 1;
            continue;
        }
        let (r0, c0) = info.coord.origin(m);
        let block = pattern.mask().block(r0, c0, m, m);
        let row_ok = (0..m).all(|r| block.row_kept(r) <= info.n);
        let col_ok = (0..m).all(|c| block.col_kept(c) <= info.n);
        match (row_ok && col_ok, info.dim) {
            (true, _) => dist.other += 1,
            (false, SparsityDim::Reduction) => dist.row += 1,
            (false, SparsityDim::Independent) => dist.column += 1,
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tbs::TbsConfig;
    use tbstc_matrix::rng::MatrixRng;

    #[test]
    fn fractions_sum_to_one() {
        let w = MatrixRng::seed_from(3).weights(64, 64);
        let p = TbsPattern::sparsify(&w, 0.6, &TbsConfig::paper_default());
        let d = classify_blocks(&p);
        let (r, c, o) = d.fractions();
        assert!((r + c + o - 1.0).abs() < 1e-12);
        assert_eq!(d.total(), p.blocks().len());
    }

    #[test]
    fn empty_distribution_is_zero() {
        assert_eq!(BlockDistribution::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BlockDistribution {
            row: 1,
            column: 2,
            other: 3,
        };
        a.merge(&BlockDistribution {
            row: 10,
            column: 20,
            other: 30,
        });
        assert_eq!(a.row, 11);
        assert_eq!(a.column, 22);
        assert_eq!(a.other, 33);
    }

    #[test]
    fn dense_target_is_all_other() {
        let w = MatrixRng::seed_from(4).weights(32, 32);
        let p = TbsPattern::sparsify(&w, 0.0, &TbsConfig::paper_default());
        let d = classify_blocks(&p);
        assert_eq!(d.row + d.column, 0);
        assert_eq!(d.other, p.blocks().len());
    }

    #[test]
    fn mid_sparsity_uses_both_directions() {
        // The Fig. 17 observation: at moderate sparsity a real weight
        // matrix produces a mix of row, column and other blocks.
        let w = MatrixRng::seed_from(5).weights(256, 256);
        let p = TbsPattern::sparsify(&w, 0.6, &TbsConfig::paper_default());
        let d = classify_blocks(&p);
        assert!(d.row > 0, "some row blocks: {d:?}");
        assert!(d.column > 0, "some column blocks: {d:?}");
        assert!(d.other > 0, "some other blocks: {d:?}");
    }
}
