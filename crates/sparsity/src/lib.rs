//! Sparsity patterns and sparsification algorithms for the TB-STC
//! reproduction.
//!
//! This crate implements the algorithmic contribution of the paper
//! (§III): the **Transposable Block-wise N:M** (TBS) sparsity pattern and
//! its sparsification procedure (Algorithm 1), together with every
//! baseline pattern the paper compares against:
//!
//! * [`pattern::Unstructured`] — element-wise top-k (US),
//! * [`pattern::TileNm`] — tile-wise N:M as in NVIDIA's Sparse Tensor Core
//!   (TS),
//! * [`pattern::RowWiseVegeta`] — VEGETA's row-wise N:M with per-row N
//!   (RS-V),
//! * [`pattern::RowWiseHighlight`] — HighLight's hierarchical two-level
//!   sparsity (RS-H),
//! * [`tbs::TbsPattern`] — the paper's transposable block-wise pattern.
//!
//! Supporting analyses:
//!
//! * [`mask_space`] — the Mask-Space measure, equations (1)–(4),
//! * [`similarity`] — mask similarity to the unstructured mask (Fig. 4(b)),
//! * [`criteria`] — magnitude / Wanda / SparseGPT pruning criteria,
//! * [`stats`] — block-direction distribution (Fig. 17).
//!
//! # Examples
//!
//! ```
//! use tbstc_matrix::rng::MatrixRng;
//! use tbstc_sparsity::tbs::{TbsConfig, TbsPattern};
//!
//! let w = MatrixRng::seed_from(0).weights(16, 16);
//! let tbs = TbsPattern::sparsify(&w, 0.5, &TbsConfig::paper_default());
//! assert!((tbs.mask().sparsity() - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criteria;
pub mod mask;
pub mod mask_space;
pub mod pattern;
pub mod similarity;
pub mod stats;
pub mod tbs;

pub use mask::{Mask, MaskBlockView};
pub use pattern::{Pattern, PatternKind};
pub use tbs::{SparsityDim, TbsConfig, TbsPattern};
