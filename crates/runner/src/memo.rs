//! Keyed result cache shared across runner invocations.

// tbstc-lint: allow(determinism) — the memo is a lookup table, never
// iterated for output: `entries()` callers sort before serializing.
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A thread-safe memo table: every key computes once, repeats are served
/// from the cache. Hit/miss counters make cache behaviour observable in
/// sweep reports.
#[derive(Debug, Default)]
pub struct Memo<K, R> {
    // tbstc-lint: allow(determinism) — see module note.
    map: Mutex<HashMap<K, R>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, R: Clone> Memo<K, R> {
    /// Locks the table, recovering from poison: entries are inserted
    /// whole under the lock, so a panicking holder can at worst lose its
    /// own pending insert — stale-but-consistent is exactly what a cache
    /// is allowed to be.
    // tbstc-lint: allow(determinism) — see module note.
    fn map(&self) -> MutexGuard<'_, HashMap<K, R>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty cache.
    pub fn new() -> Self {
        Memo {
            // tbstc-lint: allow(determinism) — see module note.
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<R> {
        let found = self.map().get(key).cloned();
        let counter = if found.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Looks `key` up without touching the hit/miss counters (for
    /// assembly passes that already accounted for the lookup).
    pub fn peek(&self, key: &K) -> Option<R> {
        self.map().get(key).cloned()
    }

    /// Checks membership without touching the hit/miss counters.
    pub fn contains(&self, key: &K) -> bool {
        self.map().contains_key(key)
    }

    /// Bulk-adjusts the counters: used by batch runners that classify a
    /// whole batch at once (served-without-computing vs computed).
    pub(crate) fn record(&self, hits: u64, misses: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Stores a computed result.
    pub fn insert(&self, key: K, result: R) {
        self.map().insert(key, result);
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops all entries (counters keep running).
    pub fn clear(&self) {
        self.map().clear();
    }

    /// A snapshot of every cached entry (iteration order unspecified —
    /// persistence layers sort before writing).
    pub fn entries(&self) -> Vec<(K, R)> {
        self.map()
            .iter()
            .map(|(k, r)| (k.clone(), r.clone()))
            .collect()
    }

    /// Bulk-inserts precomputed entries (cache warm-up from a persisted
    /// store). Counters are untouched: preloaded entries count as hits
    /// only when a later lookup finds them.
    pub fn preload(&self, entries: impl IntoIterator<Item = (K, R)>) {
        let mut map = self.map();
        for (k, r) in entries {
            map.insert(k, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let memo: Memo<u32, String> = Memo::new();
        assert!(memo.get(&1).is_none());
        memo.insert(1, "one".into());
        assert_eq!(memo.get(&1).as_deref(), Some("one"));
        assert_eq!(memo.get(&1).as_deref(), Some("one"));
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn contains_does_not_count() {
        let memo: Memo<u32, u32> = Memo::new();
        memo.insert(3, 9);
        assert!(memo.contains(&3));
        assert!(!memo.contains(&4));
        assert_eq!(memo.hits() + memo.misses(), 0);
    }

    #[test]
    fn peek_does_not_count_and_record_bulk_adjusts() {
        let memo: Memo<u32, u32> = Memo::new();
        memo.insert(5, 25);
        assert_eq!(memo.peek(&5), Some(25));
        assert_eq!(memo.peek(&6), None);
        assert_eq!(memo.hits() + memo.misses(), 0);
        memo.record(3, 2);
        assert_eq!(memo.hits(), 3);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn entries_snapshot_and_preload_roundtrip() {
        let memo: Memo<u32, u32> = Memo::new();
        memo.insert(1, 10);
        memo.insert(2, 20);
        let mut entries = memo.entries();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20)]);

        let other: Memo<u32, u32> = Memo::new();
        other.preload(entries);
        assert_eq!(other.len(), 2);
        assert_eq!(other.peek(&2), Some(20));
        assert_eq!(other.hits() + other.misses(), 0, "preload leaves counters");
    }

    #[test]
    fn clear_empties() {
        let memo: Memo<u32, u32> = Memo::new();
        memo.insert(1, 1);
        memo.clear();
        assert!(memo.is_empty());
    }
}
