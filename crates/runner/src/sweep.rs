//! Simulation sweeps: hashable job descriptions + the grid builder.

use std::hash::{Hash, Hasher};
use std::time::Instant;

use tbstc_models::Model;
use tbstc_sim::{simulate_model, Arch, HwConfig, LayerResult, LayerSim, ModelResult};

use crate::memo::Memo;
use crate::runner::{RunReport, RunStats, Runner};

/// A hashable, buildable model identity (the workload axis of a sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// ResNet-50 at the given input resolution.
    ResNet50 {
        /// Input image height/width in pixels.
        input: usize,
    },
    /// ResNet-18 at the given input resolution.
    ResNet18 {
        /// Input image height/width in pixels.
        input: usize,
    },
    /// BERT-base encoder at the given sequence length.
    BertBase {
        /// Sequence length in tokens.
        tokens: usize,
    },
    /// OPT-6.7B decoder at the given sequence length.
    Opt6_7b {
        /// Sequence length in tokens.
        tokens: usize,
    },
    /// Llama2-7B decoder at the given sequence length.
    Llama2_7b {
        /// Sequence length in tokens.
        tokens: usize,
    },
    /// A single GCN aggregation layer.
    Gcn {
        /// Graph node count.
        nodes: usize,
        /// Feature width.
        features: usize,
    },
}

impl ModelSpec {
    /// The paper's evaluation set at its default shapes.
    pub fn paper_set() -> Vec<ModelSpec> {
        vec![
            ModelSpec::ResNet50 { input: 32 },
            ModelSpec::ResNet18 { input: 32 },
            ModelSpec::BertBase { tokens: 128 },
            ModelSpec::Opt6_7b { tokens: 128 },
            ModelSpec::Llama2_7b { tokens: 128 },
        ]
    }

    /// Materializes the layer shapes.
    pub fn build(&self) -> Model {
        match *self {
            ModelSpec::ResNet50 { input } => tbstc_models::resnet50(input),
            ModelSpec::ResNet18 { input } => tbstc_models::resnet18(input),
            ModelSpec::BertBase { tokens } => tbstc_models::bert_base(tokens),
            ModelSpec::Opt6_7b { tokens } => tbstc_models::opt_6_7b(tokens),
            ModelSpec::Llama2_7b { tokens } => tbstc_models::llama2_7b(tokens),
            ModelSpec::Gcn { nodes, features } => tbstc_models::gcn_layer(nodes, features),
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ModelSpec::ResNet50 { input } => write!(f, "ResNet-50/{input}"),
            ModelSpec::ResNet18 { input } => write!(f, "ResNet-18/{input}"),
            ModelSpec::BertBase { tokens } => write!(f, "BERT-base/{tokens}"),
            ModelSpec::Opt6_7b { tokens } => write!(f, "OPT-6.7B/{tokens}"),
            ModelSpec::Llama2_7b { tokens } => write!(f, "Llama2-7B/{tokens}"),
            ModelSpec::Gcn { nodes, features } => write!(f, "GCN/{nodes}x{features}"),
        }
    }
}

/// One whole-model simulation point: the memo key of model sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJob {
    /// Architecture to simulate.
    pub arch: Arch,
    /// Workload.
    pub model: ModelSpec,
    /// Target sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Weight-sampling seed (owned by the job — the determinism anchor).
    pub seed: u64,
}

impl Eq for SimJob {}

impl Hash for SimJob {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.arch.hash(state);
        self.model.hash(state);
        self.sparsity.to_bits().hash(state);
        self.seed.hash(state);
    }
}

impl std::fmt::Display for SimJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} @ {:.1}% (seed {})",
            self.model,
            self.arch,
            self.sparsity * 100.0,
            self.seed
        )
    }
}

/// The chunk boundary record of a chunked sweep run, handed to the
/// observer after every chunk — the unit a durable-job layer persists
/// as a checkpoint. Because the memo is keyed at sub-spec granularity
/// (one [`SimJob`] grid point), everything a checkpoint reports is
/// already reusable by any other sweep that shares grid points.
#[derive(Debug)]
pub struct SweepCheckpoint<'a> {
    /// Zero-based index of the chunk that just finished.
    pub chunk_index: usize,
    /// Grid points completed so far (across all chunks).
    pub done: usize,
    /// Total grid points in this run.
    pub total: usize,
    /// The jobs of the finished chunk, in input order.
    pub chunk_jobs: &'a [SimJob],
    /// Their results, aligned with [`SweepCheckpoint::chunk_jobs`].
    pub chunk_results: &'a [ModelResult],
    /// Jobs actually computed in this chunk (the rest were memo hits or
    /// in-chunk duplicates) — strictly less than `chunk_jobs.len()` on a
    /// resumed or overlapping sweep.
    pub computed: usize,
}

/// The observer's verdict after each chunk of
/// [`SweepRunner::run_models_chunked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkControl {
    /// Keep going with the next chunk.
    Continue,
    /// Abandon the run between chunks (cancellation / graceful
    /// shutdown). Completed points stay in the memo, so a later run
    /// resumes from exactly this boundary.
    Stop,
}

/// A [`Runner`] bound to one [`HwConfig`], with persistent caches for
/// model- and layer-level simulation points.
///
/// Binding the hardware config into the engine keeps the memo keys small
/// (jobs describe *what* to simulate; the engine owns *how*); use one
/// `SweepRunner` per hardware configuration.
#[derive(Debug)]
pub struct SweepRunner {
    cfg: HwConfig,
    runner: Runner,
    models: Memo<SimJob, ModelResult>,
    layers: Memo<LayerSim, LayerResult>,
}

impl SweepRunner {
    /// An engine over `cfg` with the default (parallel) [`Runner`].
    pub fn new(cfg: HwConfig) -> Self {
        Self::with_runner(cfg, Runner::new())
    }

    /// An engine over `cfg` with an explicit runner (e.g.
    /// [`Runner::serial`] for determinism checks).
    pub fn with_runner(cfg: HwConfig, runner: Runner) -> Self {
        SweepRunner {
            cfg,
            runner,
            models: Memo::new(),
            layers: Memo::new(),
        }
    }

    /// The bound hardware configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// The underlying job runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Simulates every model-level job, memoized and in input order.
    pub fn run_models(&self, jobs: &[SimJob]) -> RunReport<ModelResult> {
        self.runner.run_memo(jobs, &self.models, |job| {
            simulate_model(
                job.arch,
                &job.model.build(),
                job.sparsity,
                job.seed,
                &self.cfg,
            )
        })
    }

    /// Runs `jobs` in deterministic fixed-size chunks through the same
    /// memo as [`SweepRunner::run_models`], calling `observe` with a
    /// [`SweepCheckpoint`] after every chunk.
    ///
    /// Returns `None` when the observer answers [`ChunkControl::Stop`];
    /// all chunks completed up to that point remain in the memo, so a
    /// later chunked (or monolithic) run over the same jobs recomputes
    /// only the points past the boundary. When the run completes, the
    /// results are bit-identical to one monolithic
    /// [`SweepRunner::run_models`] call: every chunk is reassembled from
    /// the memo in input order, and concatenating per-chunk results in
    /// chunk order reproduces the input order of the whole grid.
    pub fn run_models_chunked(
        &self,
        jobs: &[SimJob],
        chunk_size: usize,
        observe: &mut dyn FnMut(&SweepCheckpoint<'_>) -> ChunkControl,
    ) -> Option<RunReport<ModelResult>> {
        let chunk_size = chunk_size.max(1);
        let start = Instant::now();
        let total = jobs.len();
        let mut results = Vec::with_capacity(total);
        let mut job_wall = Vec::with_capacity(total);
        let mut unique = 0usize;
        for (chunk_index, chunk) in jobs.chunks(chunk_size).enumerate() {
            let rep = self.run_models(chunk);
            unique += rep.stats.unique_jobs;
            job_wall.extend(rep.stats.job_wall);
            let checkpoint = SweepCheckpoint {
                chunk_index,
                done: results.len() + rep.results.len(),
                total,
                chunk_jobs: chunk,
                chunk_results: &rep.results,
                computed: rep.stats.unique_jobs,
            };
            let control = observe(&checkpoint);
            results.extend(rep.results);
            if control == ChunkControl::Stop {
                return None;
            }
        }
        Some(RunReport {
            results,
            stats: RunStats {
                jobs: total,
                unique_jobs: unique,
                cache_hits: total - unique,
                workers: self.runner.workers(),
                wall: start.elapsed(),
                job_wall,
            },
        })
    }

    /// Warms the model memo with `jobs` in one batched, deduplicated
    /// pass — the serving-side coalescing entry point: a window of
    /// independent `simulate` requests becomes a single [`Self::run_models`]
    /// call, so `BlockPlan` batching and worker-pool amortization pay
    /// off across requests, after which each request's own
    /// [`Self::model`] lookup is a pure memo hit. Returns how many jobs
    /// were actually computed (the rest were memo hits or in-batch
    /// duplicates).
    pub fn warm_models(&self, jobs: &[SimJob]) -> usize {
        self.run_models(jobs).stats.unique_jobs
    }

    /// Simulates one model-level job (through the same cache).
    pub fn model(&self, job: SimJob) -> ModelResult {
        self.run_models(std::slice::from_ref(&job))
            .results
            .into_iter()
            .next()
            // tbstc-lint: allow(panic-surface) — one job in, one result out.
            .expect("one job in, one result out")
    }

    /// Simulates every single-layer job ([`LayerSim`] doubles as the
    /// memo key), memoized and in input order.
    pub fn run_layers(&self, jobs: &[LayerSim]) -> RunReport<LayerResult> {
        self.runner
            .run_memo(jobs, &self.layers, |sim| sim.run(&self.cfg))
    }

    /// Simulates one single-layer job (through the same cache).
    pub fn layer(&self, job: LayerSim) -> LayerResult {
        self.run_layers(std::slice::from_ref(&job))
            .results
            .into_iter()
            .next()
            // tbstc-lint: allow(panic-surface) — one job in, one result out.
            .expect("one job in, one result out")
    }

    /// A snapshot of the model-level memo cache, for persistence across
    /// process restarts (the serve subsystem writes these to disk on
    /// shutdown and feeds them back through
    /// [`SweepRunner::preload_models`] on boot).
    pub fn model_memo_entries(&self) -> Vec<(SimJob, ModelResult)> {
        self.models.entries()
    }

    /// Warm-starts the model-level memo cache with persisted entries.
    /// Preloaded jobs are served without recomputation, exactly like
    /// entries computed this process.
    pub fn preload_models(&self, entries: impl IntoIterator<Item = (SimJob, ModelResult)>) {
        self.models.preload(entries);
    }

    /// `(hits, misses)` across both caches since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.models.hits() + self.layers.hits(),
            self.models.misses() + self.layers.misses(),
        )
    }
}

/// The grid builder: cross product of architectures × models ×
/// sparsities × seeds, in a fixed deterministic order.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    archs: Vec<Arch>,
    models: Vec<ModelSpec>,
    sparsities: Vec<f64>,
    seeds: Vec<u64>,
}

impl Sweep {
    /// An empty grid (defaults to seed 0 until [`Sweep::seeds`] is set).
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Sets the architecture axis.
    pub fn archs(mut self, archs: impl IntoIterator<Item = Arch>) -> Self {
        self.archs = archs.into_iter().collect();
        self
    }

    /// Sets the workload axis.
    pub fn models(mut self, models: impl IntoIterator<Item = ModelSpec>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Sets the sparsity axis.
    pub fn sparsities(mut self, sparsities: impl IntoIterator<Item = f64>) -> Self {
        self.sparsities = sparsities.into_iter().collect();
        self
    }

    /// Sets the seed axis (defaults to the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The job grid, ordered model → sparsity → arch → seed.
    pub fn jobs(&self) -> Vec<SimJob> {
        let seeds: &[u64] = if self.seeds.is_empty() {
            &[0]
        } else {
            &self.seeds
        };
        let mut jobs = Vec::with_capacity(self.len());
        for model in &self.models {
            for &sparsity in &self.sparsities {
                for &arch in &self.archs {
                    for &seed in seeds {
                        jobs.push(SimJob {
                            arch,
                            model: *model,
                            sparsity,
                            seed,
                        });
                    }
                }
            }
        }
        jobs
    }

    /// Grid size.
    pub fn len(&self) -> usize {
        self.models.len() * self.sparsities.len() * self.archs.len() * self.seeds.len().max(1)
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the grid on `engine`.
    pub fn run(&self, engine: &SweepRunner) -> RunReport<ModelResult> {
        engine.run_models(&self.jobs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_the_full_cross_product() {
        let sweep = Sweep::new()
            .archs([Arch::Tc, Arch::TbStc])
            .models([ModelSpec::BertBase { tokens: 32 }])
            .sparsities([0.5, 0.75])
            .seeds([1, 2, 3]);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 12);
        assert_eq!(jobs.len(), sweep.len());
        let unique: std::collections::HashSet<_> = jobs.iter().cloned().collect();
        assert_eq!(unique.len(), 12);
    }

    #[test]
    fn default_seed_is_zero() {
        let sweep = Sweep::new()
            .archs([Arch::Tc])
            .models([ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            }])
            .sparsities([0.5]);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].seed, 0);
    }

    #[test]
    fn model_spec_builds_expected_kind() {
        let m = ModelSpec::BertBase { tokens: 32 }.build();
        assert_eq!(m.kind.to_string(), "BERT-base");
        assert!(!m.layers.is_empty());
    }

    #[test]
    fn sim_job_hash_distinguishes_sparsity_bits() {
        use std::collections::HashSet;
        let base = SimJob {
            arch: Arch::TbStc,
            model: ModelSpec::BertBase { tokens: 32 },
            sparsity: 0.5,
            seed: 0,
        };
        let mut other = base;
        other.sparsity = 0.75;
        let mut set = HashSet::new();
        set.insert(base);
        assert!(set.contains(&base));
        assert!(!set.contains(&other));
    }

    #[test]
    fn preloaded_entries_are_served_without_compute() {
        let cfg = HwConfig::paper_default();
        let job = SimJob {
            arch: Arch::Tc,
            model: ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            },
            sparsity: 0.0,
            seed: 0,
        };
        let first = SweepRunner::with_runner(cfg, Runner::serial());
        let result = first.model(job);
        let entries = first.model_memo_entries();
        assert_eq!(entries.len(), 1);

        let second = SweepRunner::with_runner(cfg, Runner::serial());
        second.preload_models(entries);
        let report = second.run_models(std::slice::from_ref(&job));
        assert_eq!(report.results[0], result);
        assert_eq!(report.stats.unique_jobs, 0, "preload must prevent compute");
        assert_eq!(report.stats.cache_hits, 1);
    }

    #[test]
    fn chunked_run_is_bit_identical_to_monolithic() {
        let sweep = Sweep::new()
            .archs([Arch::Tc, Arch::TbStc, Arch::Stc])
            .models([ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            }])
            .sparsities([0.25, 0.5, 0.75]);
        let jobs = sweep.jobs();

        let mono =
            SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial()).run_models(&jobs);

        for chunk_size in [1, 2, 4, 100] {
            let engine = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
            let mut checkpoints = Vec::with_capacity(jobs.len());
            let rep = engine
                .run_models_chunked(&jobs, chunk_size, &mut |cp| {
                    checkpoints.push((cp.chunk_index, cp.done, cp.total));
                    ChunkControl::Continue
                })
                .expect("uninterrupted run completes");
            assert_eq!(
                rep.results, mono.results,
                "chunk_size {chunk_size} must not change results"
            );
            let last = checkpoints.last().copied().unwrap();
            assert_eq!(last.1, jobs.len(), "final checkpoint covers the grid");
            assert_eq!(last.2, jobs.len());
            assert_eq!(checkpoints.len(), jobs.len().div_ceil(chunk_size));
        }
    }

    #[test]
    fn stopped_run_resumes_recomputing_only_the_tail() {
        let sweep = Sweep::new()
            .archs([Arch::Tc, Arch::TbStc])
            .models([ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            }])
            .sparsities([0.25, 0.5, 0.75]);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 6);

        let engine = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
        // Stop after the second chunk of two: 4 points done, 2 pending.
        let stopped = engine.run_models_chunked(&jobs, 2, &mut |cp| {
            if cp.chunk_index == 1 {
                ChunkControl::Stop
            } else {
                ChunkControl::Continue
            }
        });
        assert!(stopped.is_none(), "a stopped run yields no report");

        // The resumed run (same engine ≙ reloaded memo) recomputes only
        // the tail: 4 memo hits, 2 fresh computations.
        let resumed = engine
            .run_models_chunked(&jobs, 2, &mut |_| ChunkControl::Continue)
            .expect("resume completes");
        assert_eq!(resumed.stats.cache_hits, 4);
        assert_eq!(resumed.stats.unique_jobs, 2);

        let mono =
            SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial()).run_models(&jobs);
        assert_eq!(
            resumed.results, mono.results,
            "resume is bit-identical to an uninterrupted run"
        );
    }

    #[test]
    fn overlapping_sweep_reuses_subspec_memo_points() {
        let engine = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
        let first = Sweep::new()
            .archs([Arch::Tc, Arch::TbStc])
            .models([ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            }])
            .sparsities([0.5, 0.75]);
        engine.run_models(&first.jobs());

        // A *different* sweep sharing half its grid: every shared point
        // is a memo hit because the memo key is the single grid point,
        // not the enclosing sweep spec.
        let second = Sweep::new()
            .archs([Arch::Tc, Arch::TbStc, Arch::Stc])
            .models([ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            }])
            .sparsities([0.5, 0.75]);
        let rep = engine.run_models(&second.jobs());
        assert_eq!(rep.stats.cache_hits, 4, "all overlapping points reused");
        assert_eq!(rep.stats.unique_jobs, 2, "only the new arch is computed");
    }

    #[test]
    fn engine_caches_repeated_jobs() {
        let engine = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
        let job = SimJob {
            arch: Arch::Tc,
            model: ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            },
            sparsity: 0.0,
            seed: 0,
        };
        let a = engine.model(job);
        let b = engine.model(job);
        assert_eq!(a, b);
        let (hits, _) = engine.cache_stats();
        assert!(hits >= 1, "second run must be served from cache");
    }
}
