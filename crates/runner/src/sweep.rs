//! Simulation sweeps: hashable job descriptions + the grid builder.

use std::hash::{Hash, Hasher};

use tbstc_models::Model;
use tbstc_sim::{simulate_model, Arch, HwConfig, LayerResult, LayerSim, ModelResult};

use crate::memo::Memo;
use crate::runner::{RunReport, Runner};

/// A hashable, buildable model identity (the workload axis of a sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// ResNet-50 at the given input resolution.
    ResNet50 {
        /// Input image height/width in pixels.
        input: usize,
    },
    /// ResNet-18 at the given input resolution.
    ResNet18 {
        /// Input image height/width in pixels.
        input: usize,
    },
    /// BERT-base encoder at the given sequence length.
    BertBase {
        /// Sequence length in tokens.
        tokens: usize,
    },
    /// OPT-6.7B decoder at the given sequence length.
    Opt6_7b {
        /// Sequence length in tokens.
        tokens: usize,
    },
    /// Llama2-7B decoder at the given sequence length.
    Llama2_7b {
        /// Sequence length in tokens.
        tokens: usize,
    },
    /// A single GCN aggregation layer.
    Gcn {
        /// Graph node count.
        nodes: usize,
        /// Feature width.
        features: usize,
    },
}

impl ModelSpec {
    /// The paper's evaluation set at its default shapes.
    pub fn paper_set() -> Vec<ModelSpec> {
        vec![
            ModelSpec::ResNet50 { input: 32 },
            ModelSpec::ResNet18 { input: 32 },
            ModelSpec::BertBase { tokens: 128 },
            ModelSpec::Opt6_7b { tokens: 128 },
            ModelSpec::Llama2_7b { tokens: 128 },
        ]
    }

    /// Materializes the layer shapes.
    pub fn build(&self) -> Model {
        match *self {
            ModelSpec::ResNet50 { input } => tbstc_models::resnet50(input),
            ModelSpec::ResNet18 { input } => tbstc_models::resnet18(input),
            ModelSpec::BertBase { tokens } => tbstc_models::bert_base(tokens),
            ModelSpec::Opt6_7b { tokens } => tbstc_models::opt_6_7b(tokens),
            ModelSpec::Llama2_7b { tokens } => tbstc_models::llama2_7b(tokens),
            ModelSpec::Gcn { nodes, features } => tbstc_models::gcn_layer(nodes, features),
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ModelSpec::ResNet50 { input } => write!(f, "ResNet-50/{input}"),
            ModelSpec::ResNet18 { input } => write!(f, "ResNet-18/{input}"),
            ModelSpec::BertBase { tokens } => write!(f, "BERT-base/{tokens}"),
            ModelSpec::Opt6_7b { tokens } => write!(f, "OPT-6.7B/{tokens}"),
            ModelSpec::Llama2_7b { tokens } => write!(f, "Llama2-7B/{tokens}"),
            ModelSpec::Gcn { nodes, features } => write!(f, "GCN/{nodes}x{features}"),
        }
    }
}

/// One whole-model simulation point: the memo key of model sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJob {
    /// Architecture to simulate.
    pub arch: Arch,
    /// Workload.
    pub model: ModelSpec,
    /// Target sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Weight-sampling seed (owned by the job — the determinism anchor).
    pub seed: u64,
}

impl Eq for SimJob {}

impl Hash for SimJob {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.arch.hash(state);
        self.model.hash(state);
        self.sparsity.to_bits().hash(state);
        self.seed.hash(state);
    }
}

impl std::fmt::Display for SimJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} @ {:.1}% (seed {})",
            self.model,
            self.arch,
            self.sparsity * 100.0,
            self.seed
        )
    }
}

/// A [`Runner`] bound to one [`HwConfig`], with persistent caches for
/// model- and layer-level simulation points.
///
/// Binding the hardware config into the engine keeps the memo keys small
/// (jobs describe *what* to simulate; the engine owns *how*); use one
/// `SweepRunner` per hardware configuration.
#[derive(Debug)]
pub struct SweepRunner {
    cfg: HwConfig,
    runner: Runner,
    models: Memo<SimJob, ModelResult>,
    layers: Memo<LayerSim, LayerResult>,
}

impl SweepRunner {
    /// An engine over `cfg` with the default (parallel) [`Runner`].
    pub fn new(cfg: HwConfig) -> Self {
        Self::with_runner(cfg, Runner::new())
    }

    /// An engine over `cfg` with an explicit runner (e.g.
    /// [`Runner::serial`] for determinism checks).
    pub fn with_runner(cfg: HwConfig, runner: Runner) -> Self {
        SweepRunner {
            cfg,
            runner,
            models: Memo::new(),
            layers: Memo::new(),
        }
    }

    /// The bound hardware configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// The underlying job runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Simulates every model-level job, memoized and in input order.
    pub fn run_models(&self, jobs: &[SimJob]) -> RunReport<ModelResult> {
        self.runner.run_memo(jobs, &self.models, |job| {
            simulate_model(
                job.arch,
                &job.model.build(),
                job.sparsity,
                job.seed,
                &self.cfg,
            )
        })
    }

    /// Warms the model memo with `jobs` in one batched, deduplicated
    /// pass — the serving-side coalescing entry point: a window of
    /// independent `simulate` requests becomes a single [`Self::run_models`]
    /// call, so `BlockPlan` batching and worker-pool amortization pay
    /// off across requests, after which each request's own
    /// [`Self::model`] lookup is a pure memo hit. Returns how many jobs
    /// were actually computed (the rest were memo hits or in-batch
    /// duplicates).
    pub fn warm_models(&self, jobs: &[SimJob]) -> usize {
        self.run_models(jobs).stats.unique_jobs
    }

    /// Simulates one model-level job (through the same cache).
    pub fn model(&self, job: SimJob) -> ModelResult {
        self.run_models(std::slice::from_ref(&job))
            .results
            .into_iter()
            .next()
            // tbstc-lint: allow(panic-surface) — one job in, one result out.
            .expect("one job in, one result out")
    }

    /// Simulates every single-layer job ([`LayerSim`] doubles as the
    /// memo key), memoized and in input order.
    pub fn run_layers(&self, jobs: &[LayerSim]) -> RunReport<LayerResult> {
        self.runner
            .run_memo(jobs, &self.layers, |sim| sim.run(&self.cfg))
    }

    /// Simulates one single-layer job (through the same cache).
    pub fn layer(&self, job: LayerSim) -> LayerResult {
        self.run_layers(std::slice::from_ref(&job))
            .results
            .into_iter()
            .next()
            // tbstc-lint: allow(panic-surface) — one job in, one result out.
            .expect("one job in, one result out")
    }

    /// A snapshot of the model-level memo cache, for persistence across
    /// process restarts (the serve subsystem writes these to disk on
    /// shutdown and feeds them back through
    /// [`SweepRunner::preload_models`] on boot).
    pub fn model_memo_entries(&self) -> Vec<(SimJob, ModelResult)> {
        self.models.entries()
    }

    /// Warm-starts the model-level memo cache with persisted entries.
    /// Preloaded jobs are served without recomputation, exactly like
    /// entries computed this process.
    pub fn preload_models(&self, entries: impl IntoIterator<Item = (SimJob, ModelResult)>) {
        self.models.preload(entries);
    }

    /// `(hits, misses)` across both caches since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.models.hits() + self.layers.hits(),
            self.models.misses() + self.layers.misses(),
        )
    }
}

/// The grid builder: cross product of architectures × models ×
/// sparsities × seeds, in a fixed deterministic order.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    archs: Vec<Arch>,
    models: Vec<ModelSpec>,
    sparsities: Vec<f64>,
    seeds: Vec<u64>,
}

impl Sweep {
    /// An empty grid (defaults to seed 0 until [`Sweep::seeds`] is set).
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Sets the architecture axis.
    pub fn archs(mut self, archs: impl IntoIterator<Item = Arch>) -> Self {
        self.archs = archs.into_iter().collect();
        self
    }

    /// Sets the workload axis.
    pub fn models(mut self, models: impl IntoIterator<Item = ModelSpec>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Sets the sparsity axis.
    pub fn sparsities(mut self, sparsities: impl IntoIterator<Item = f64>) -> Self {
        self.sparsities = sparsities.into_iter().collect();
        self
    }

    /// Sets the seed axis (defaults to the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The job grid, ordered model → sparsity → arch → seed.
    pub fn jobs(&self) -> Vec<SimJob> {
        let seeds: &[u64] = if self.seeds.is_empty() {
            &[0]
        } else {
            &self.seeds
        };
        let mut jobs = Vec::with_capacity(self.len());
        for model in &self.models {
            for &sparsity in &self.sparsities {
                for &arch in &self.archs {
                    for &seed in seeds {
                        jobs.push(SimJob {
                            arch,
                            model: *model,
                            sparsity,
                            seed,
                        });
                    }
                }
            }
        }
        jobs
    }

    /// Grid size.
    pub fn len(&self) -> usize {
        self.models.len() * self.sparsities.len() * self.archs.len() * self.seeds.len().max(1)
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the grid on `engine`.
    pub fn run(&self, engine: &SweepRunner) -> RunReport<ModelResult> {
        engine.run_models(&self.jobs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_the_full_cross_product() {
        let sweep = Sweep::new()
            .archs([Arch::Tc, Arch::TbStc])
            .models([ModelSpec::BertBase { tokens: 32 }])
            .sparsities([0.5, 0.75])
            .seeds([1, 2, 3]);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 12);
        assert_eq!(jobs.len(), sweep.len());
        let unique: std::collections::HashSet<_> = jobs.iter().cloned().collect();
        assert_eq!(unique.len(), 12);
    }

    #[test]
    fn default_seed_is_zero() {
        let sweep = Sweep::new()
            .archs([Arch::Tc])
            .models([ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            }])
            .sparsities([0.5]);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].seed, 0);
    }

    #[test]
    fn model_spec_builds_expected_kind() {
        let m = ModelSpec::BertBase { tokens: 32 }.build();
        assert_eq!(m.kind.to_string(), "BERT-base");
        assert!(!m.layers.is_empty());
    }

    #[test]
    fn sim_job_hash_distinguishes_sparsity_bits() {
        use std::collections::HashSet;
        let base = SimJob {
            arch: Arch::TbStc,
            model: ModelSpec::BertBase { tokens: 32 },
            sparsity: 0.5,
            seed: 0,
        };
        let mut other = base;
        other.sparsity = 0.75;
        let mut set = HashSet::new();
        set.insert(base);
        assert!(set.contains(&base));
        assert!(!set.contains(&other));
    }

    #[test]
    fn preloaded_entries_are_served_without_compute() {
        let cfg = HwConfig::paper_default();
        let job = SimJob {
            arch: Arch::Tc,
            model: ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            },
            sparsity: 0.0,
            seed: 0,
        };
        let first = SweepRunner::with_runner(cfg, Runner::serial());
        let result = first.model(job);
        let entries = first.model_memo_entries();
        assert_eq!(entries.len(), 1);

        let second = SweepRunner::with_runner(cfg, Runner::serial());
        second.preload_models(entries);
        let report = second.run_models(std::slice::from_ref(&job));
        assert_eq!(report.results[0], result);
        assert_eq!(report.stats.unique_jobs, 0, "preload must prevent compute");
        assert_eq!(report.stats.cache_hits, 1);
    }

    #[test]
    fn engine_caches_repeated_jobs() {
        let engine = SweepRunner::with_runner(HwConfig::paper_default(), Runner::serial());
        let job = SimJob {
            arch: Arch::Tc,
            model: ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            },
            sparsity: 0.0,
            seed: 0,
        };
        let a = engine.model(job);
        let b = engine.model(job);
        assert_eq!(a, b);
        let (hits, _) = engine.cache_stats();
        assert!(hits >= 1, "second run must be served from cache");
    }
}
