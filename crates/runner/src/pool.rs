//! The scoped thread pool under the [`crate::Runner`].
//!
//! The implementation lives in [`tbstc_matrix::pool`] — the bottom of the
//! crate graph — so the cache-blocked GEMM kernels can share it for
//! row-panel parallelism. This module re-exports it unchanged; downstream
//! code keeps using `tbstc_runner::pool::{available_workers, parallel_map}`
//! exactly as before.

pub use tbstc_matrix::pool::{available_workers, parallel_chunks_mut, parallel_map, JOBS_ENV};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_pool_is_usable() {
        let items: Vec<usize> = (0..16).collect();
        let out = parallel_map(&items, 4, |i, &x| x + i);
        assert_eq!(out.len(), 16);
        assert!(available_workers() >= 1);
        let mut data = vec![0u8; 9];
        parallel_chunks_mut(&mut data, 4, 2, |_, chunk| chunk.fill(1));
        assert!(data.iter().all(|&b| b == 1));
    }
}
