//! The generic job runner: deterministic parallel execution + memoization.

use std::hash::Hash;
use std::time::{Duration, Instant};

use crate::memo::Memo;
use crate::pool::{available_workers, parallel_map};

/// Executes batches of independent jobs on a scoped thread pool.
///
/// Determinism guarantee: each job's result is a pure function of the job
/// description (each job owns its seed), results are assembled in input
/// order, and repeated jobs are deduplicated *before* execution — so the
/// output of [`Runner::run`]/[`Runner::run_memo`] is bit-identical for
/// any worker count, including the serial `workers = 1` path.
#[derive(Debug, Clone)]
pub struct Runner {
    workers: usize,
    progress: bool,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner sized by [`available_workers`] (the `TBSTC_JOBS`
    /// environment variable, else the machine's parallelism).
    pub fn new() -> Self {
        Runner {
            workers: available_workers(),
            progress: false,
        }
    }

    /// A single-threaded runner (the reference for determinism checks).
    pub fn serial() -> Self {
        Runner {
            workers: 1,
            progress: false,
        }
    }

    /// Overrides the worker count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables per-job progress lines on stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// The worker count this runner schedules onto.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job (no deduplication), returning results in input
    /// order plus timing stats.
    pub fn run<T, R, F>(&self, jobs: &[T], f: F) -> RunReport<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let start = Instant::now();
        let n = jobs.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let timed = parallel_map(jobs, self.workers, |_, job| {
            let r = f(job);
            if self.progress {
                let k = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                eprintln!("  [{k:>4}/{n}] job done");
            }
            r
        });
        let mut results = Vec::with_capacity(n);
        let mut job_wall = Vec::with_capacity(n);
        for (r, d) in timed {
            results.push(r);
            job_wall.push(d);
        }
        RunReport {
            results,
            stats: RunStats {
                jobs: n,
                unique_jobs: n,
                cache_hits: 0,
                workers: self.workers,
                wall: start.elapsed(),
                job_wall,
            },
        }
    }

    /// Runs jobs through a [`Memo`]: repeated keys (within the batch or
    /// from earlier batches) compute once, everything else fans out over
    /// the pool. Results come back in input order.
    pub fn run_memo<K, R, F>(&self, jobs: &[K], memo: &Memo<K, R>, f: F) -> RunReport<R>
    where
        K: Eq + Hash + Clone + Sync,
        R: Clone + Send,
        F: Fn(&K) -> R + Sync,
    {
        let start = Instant::now();
        // Dedupe before running: first-seen order keeps the schedule
        // deterministic, and only genuinely new keys hit the pool.
        // tbstc-lint: allow(determinism) — only membership is queried;
        // iteration order never escapes.
        let mut seen = std::collections::HashSet::new();
        let mut fresh: Vec<K> = Vec::new();
        for job in jobs {
            if !memo.contains(job) && seen.insert(job.clone()) {
                fresh.push(job.clone());
            }
        }
        let n_fresh = fresh.len();
        // One counter update per input job: served-without-computing
        // (memo hits + batch duplicates) vs actually computed.
        memo.record((jobs.len() - n_fresh) as u64, n_fresh as u64);
        let done = std::sync::atomic::AtomicUsize::new(0);
        let timed = parallel_map(&fresh, self.workers, |_, job| {
            let r = f(job);
            if self.progress {
                let k = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                eprintln!("  [{k:>4}/{n_fresh}] job done");
            }
            r
        });
        let mut job_wall = Vec::with_capacity(n_fresh);
        for (key, (r, d)) in fresh.into_iter().zip(timed) {
            memo.insert(key, r);
            job_wall.push(d);
        }
        let results = jobs
            .iter()
            // tbstc-lint: allow(panic-surface) — every job was inserted
            // into the memo in the loop above; a miss here is a logic bug.
            .map(|job| memo.peek(job).expect("memoized result missing"))
            .collect();
        RunReport {
            results,
            stats: RunStats {
                jobs: jobs.len(),
                unique_jobs: n_fresh,
                cache_hits: jobs.len() - n_fresh,
                workers: self.workers,
                wall: start.elapsed(),
                job_wall,
            },
        }
    }
}

/// Results plus execution statistics of one batch.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// One result per input job, in input order.
    pub results: Vec<R>,
    /// Scheduling and cache statistics.
    pub stats: RunStats,
}

/// Execution statistics of one [`Runner`] batch.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Jobs requested.
    pub jobs: usize,
    /// Jobs actually computed (after deduplication / cache).
    pub unique_jobs: usize,
    /// Jobs served without computing: batch duplicates + memo hits.
    pub cache_hits: usize,
    /// Workers the batch was scheduled onto.
    pub workers: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Per-computed-job wall time (first-seen order of the fresh keys).
    pub job_wall: Vec<Duration>,
}

impl RunStats {
    /// Total CPU time spent inside jobs (sum of per-job walls).
    pub fn busy(&self) -> Duration {
        self.job_wall.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_keeps_input_order() {
        let jobs: Vec<u64> = (0..40).collect();
        let rep = Runner::new().with_workers(8).run(&jobs, |&j| j * j);
        assert_eq!(rep.results, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
        assert_eq!(rep.stats.jobs, 40);
        assert_eq!(rep.stats.cache_hits, 0);
    }

    #[test]
    fn memo_dedupes_within_batch() {
        let jobs = vec![1u32, 2, 1, 3, 2, 1];
        let memo = Memo::new();
        let rep = Runner::serial().run_memo(&jobs, &memo, |&j| j * 10);
        assert_eq!(rep.results, vec![10, 20, 10, 30, 20, 10]);
        assert_eq!(rep.stats.unique_jobs, 3);
        assert_eq!(rep.stats.cache_hits, 3);
    }

    #[test]
    fn memo_persists_across_batches() {
        let memo = Memo::new();
        let runner = Runner::serial();
        let first = runner.run_memo(&[7u32, 8], &memo, |&j| j + 1);
        assert_eq!(first.stats.unique_jobs, 2);
        let second = runner.run_memo(&[8u32, 9], &memo, |&j| j + 1);
        assert_eq!(second.stats.unique_jobs, 1);
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(second.results, vec![9, 10]);
    }

    #[test]
    fn parallel_equals_serial() {
        let jobs: Vec<u64> = (0..50).map(|i| i % 13).collect();
        let serial = Runner::serial().run_memo(&jobs, &Memo::new(), |&j| j.pow(3));
        let parallel = Runner::new()
            .with_workers(6)
            .run_memo(&jobs, &Memo::new(), |&j| j.pow(3));
        assert_eq!(serial.results, parallel.results);
    }

    #[test]
    fn stats_report_busy_time() {
        let rep = Runner::serial().run(&[1u32, 2, 3], |&j| j);
        assert_eq!(rep.stats.job_wall.len(), 3);
        assert!(rep.stats.busy() <= rep.stats.wall + Duration::from_millis(5));
    }
}
