//! Parallel experiment engine for the TB-STC reproduction.
//!
//! Every figure in the paper is a sweep: a grid of (architecture, model,
//! sparsity, seed) points pushed through the simulator. This crate turns
//! those sweeps into first-class jobs:
//!
//! * [`pool`] — a dependency-free scoped thread pool (worker count from
//!   `TBSTC_JOBS` or the machine's parallelism),
//! * [`Memo`] — a keyed result cache so repeated points (e.g. the dense
//!   baseline every figure shares) compute once,
//! * [`Runner`] — deterministic parallel batch execution: dedupe, fan
//!   out, assemble in input order,
//! * [`Sweep`] / [`SweepRunner`] — the simulation-specific layer: grid
//!   building and memoized model/layer sweeps over one [`HwConfig`].
//!
//! # Determinism
//!
//! Parallel output is bit-identical to serial output for the same jobs:
//! each job owns its seed, results are keyed (not ordered) by schedule,
//! and assembly follows input order. `Runner::serial()` is the reference
//! implementation, not a different code path for correctness.
//!
//! # Examples
//!
//! ```
//! use tbstc_runner::{ModelSpec, Sweep, SweepRunner};
//! use tbstc_sim::{Arch, HwConfig};
//!
//! let engine = SweepRunner::new(HwConfig::paper_default());
//! let report = Sweep::new()
//!     .archs([Arch::Tc, Arch::TbStc])
//!     .models([ModelSpec::Gcn { nodes: 64, features: 16 }])
//!     .sparsities([0.0, 0.75])
//!     .run(&engine);
//! assert_eq!(report.results.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memo;
pub mod pool;
pub mod runner;
pub mod sweep;

pub use memo::Memo;
pub use pool::{available_workers, parallel_map, JOBS_ENV};
pub use runner::{RunReport, RunStats, Runner};
pub use sweep::{ChunkControl, ModelSpec, SimJob, Sweep, SweepCheckpoint, SweepRunner};
