//! Ramulator-lite: a bank/row-state DRAM timing and energy model.
//!
//! The paper evaluates TB-STC against a 64 GB/s off-chip memory and uses
//! Ramulator [28] for cycle-level DRAM behaviour and DRAMPower [5] for
//! energy. This crate substitutes both with a compact model that captures
//! exactly what the evaluation exercises:
//!
//! * **burst quantization** — every request transfers whole bursts, so
//!   small scattered reads (CSR consumption, Fig. 7(b)) waste bandwidth,
//! * **row-buffer locality** — sequential streams amortize one activation
//!   per DRAM row; random access pays activate/precharge repeatedly,
//! * **bank-level parallelism** — a memory controller with a lookahead
//!   window hides activations of *other* banks behind ongoing transfers,
//!   so streaming stays near peak while same-bank conflicts serialize,
//! * **energy** — per-activation and per-burst energies plus background
//!   power, so traffic and time both show up in the EDP.
//!
//! The model replays a request list (addresses + lengths) and reports
//! cycles, energy and achieved bandwidth utilization.
//!
//! # Examples
//!
//! ```
//! use tbstc_dram::{DramConfig, DramModel};
//!
//! let mut dram = DramModel::new(DramConfig::paper_default());
//! // Stream 1 MiB sequentially: utilization approaches 1.0.
//! let reqs: Vec<(u64, u64)> = (0..16384).map(|i| (i * 64, 64)).collect();
//! let res = dram.replay(reqs.iter().copied());
//! assert!(res.bandwidth_utilization() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod timing;

pub use timing::{DramConfig, DramModel, DramResult};
