//! The DRAM timing/energy model implementation.

/// Configuration of the DRAM channel.
///
/// All timings are in accelerator core cycles (1 GHz in the paper's
/// setup), so a 64 GB/s channel moves 64 bytes per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Peak bandwidth in bytes per core cycle (GB/s at 1 GHz).
    pub bytes_per_cycle: f64,
    /// Burst (minimum transfer) size in bytes.
    pub burst_bytes: u64,
    /// Row-buffer (page) size per bank in bytes.
    pub row_bytes: u64,
    /// Number of banks.
    pub banks: usize,
    /// Row-activate latency (tRCD) in cycles.
    pub t_rcd: u64,
    /// Precharge latency (tRP) in cycles.
    pub t_rp: u64,
    /// Column access latency (tCAS) in cycles, exposed on the first burst
    /// after an activation.
    pub t_cas: u64,
    /// Controller lookahead window in cycles: how far ahead an activation
    /// for a *different* bank can start.
    pub lookahead: u64,
    /// Energy per row activation (activate + precharge), picojoules.
    pub act_energy_pj: f64,
    /// Read energy per byte transferred, picojoules.
    pub read_energy_pj_per_byte: f64,
    /// Background power in picojoules per cycle (standby + refresh).
    pub background_pj_per_cycle: f64,
}

impl DramConfig {
    /// The paper's setup: 64 GB/s at 1 GHz, DDR-like timings, 16 banks,
    /// 2 KiB rows, 64 B bursts.
    ///
    /// Energy constants are DDR4-class: ~2 nJ per activate/precharge pair,
    /// ~20 pJ/bit read ⇒ 2.5 pJ/byte × 8 = 20 pJ/byte? We use 15 pJ/byte
    /// (interface + core), and ~100 mW background ⇒ 100 pJ/cycle at 1 GHz.
    pub fn paper_default() -> Self {
        DramConfig {
            bytes_per_cycle: 64.0,
            burst_bytes: 64,
            row_bytes: 2048,
            banks: 16,
            t_rcd: 15,
            t_rp: 15,
            t_cas: 15,
            lookahead: 48,
            act_energy_pj: 2000.0,
            read_energy_pj_per_byte: 15.0,
            background_pj_per_cycle: 100.0,
        }
    }

    /// The paper default scaled to a different peak bandwidth in GB/s
    /// (Fig. 15(c) sweeps 32–512 GB/s).
    pub fn with_bandwidth_gbps(gbps: f64) -> Self {
        DramConfig {
            bytes_per_cycle: gbps,
            ..Self::paper_default()
        }
    }

    /// Cycles to transfer one burst at peak bandwidth.
    fn burst_cycles(&self) -> f64 {
        self.burst_bytes as f64 / self.bytes_per_cycle
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics when sizes are zero or the row is smaller than a burst.
    pub fn validate(&self) {
        assert!(self.bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(self.burst_bytes > 0, "burst size must be positive");
        assert!(
            self.row_bytes >= self.burst_bytes,
            "row must hold >= 1 burst"
        );
        assert!(self.banks > 0, "need at least one bank");
    }
}

/// Result of replaying an access trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramResult {
    /// Total cycles the channel was occupied (including exposed stalls).
    pub cycles: u64,
    /// Useful bytes the consumer asked for.
    pub useful_bytes: u64,
    /// Bytes actually moved (burst-quantized).
    pub transferred_bytes: u64,
    /// Row-buffer hits (bursts served from an open row).
    pub row_hits: u64,
    /// Row activations (misses).
    pub row_misses: u64,
    /// Total DRAM energy in picojoules.
    pub energy_pj: f64,
    /// Peak bytes/cycle of the configuration (for utilization).
    pub peak_bytes_per_cycle: f64,
}

impl DramResult {
    /// Achieved *useful* bandwidth divided by peak bandwidth — the paper's
    /// bandwidth-utilization metric (challenge 2).
    ///
    /// Returns 1.0 for an empty replay.
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.useful_bytes as f64 / (self.cycles as f64 * self.peak_bytes_per_cycle)
    }

    /// Fraction of moved bytes that were useful (1 − read amplification).
    pub fn transfer_efficiency(&self) -> f64 {
        if self.transferred_bytes == 0 {
            return 1.0;
        }
        self.useful_bytes as f64 / self.transferred_bytes as f64
    }

    /// Row-buffer hit rate over all bursts.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            return 1.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_pj * 1e-9
    }
}

/// The replayable DRAM channel model.
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    /// Open row per bank (`None` = precharged).
    open_row: Vec<Option<u64>>,
    /// Earliest cycle each bank can serve a new burst.
    bank_ready: Vec<f64>,
}

impl DramModel {
    /// Creates a model with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: DramConfig) -> Self {
        config.validate();
        DramModel {
            open_row: vec![None; config.banks],
            bank_ready: vec![0.0; config.banks],
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Resets bank state (between independent experiments).
    pub fn reset(&mut self) {
        self.open_row.fill(None);
        self.bank_ready.fill(0.0);
    }

    /// Maps a byte address to `(bank, row)`.
    ///
    /// Consecutive DRAM rows land in different banks (row interleaving), so
    /// sequential streams exploit bank-level parallelism.
    fn map(&self, addr: u64) -> (usize, u64) {
        let row_global = addr / self.config.row_bytes;
        let bank = (row_global % self.config.banks as u64) as usize;
        let row = row_global / self.config.banks as u64;
        (bank, row)
    }

    /// Replays a sequence of `(address, bytes)` read requests in order and
    /// returns the timing/energy result.
    ///
    /// The model is stateful: call [`DramModel::reset`] between unrelated
    /// traces.
    pub fn replay(&mut self, requests: impl IntoIterator<Item = (u64, u64)>) -> DramResult {
        let cfg = self.config;
        let burst_cycles = cfg.burst_cycles();
        let mut time = 0.0f64; // channel time in cycles
                               // The controller's read-combine buffer: a burst already fetched by
                               // the immediately preceding request is served for free, so
                               // back-to-back sub-burst requests (e.g. DDC's per-block reads)
                               // coalesce into a stream instead of re-fetching bursts.
        let mut last_burst: Option<u64> = None;
        let mut result = DramResult {
            peak_bytes_per_cycle: cfg.bytes_per_cycle,
            ..DramResult::default()
        };

        for (addr, bytes) in requests {
            if bytes == 0 {
                continue;
            }
            result.useful_bytes += bytes;
            // Burst-quantize the request.
            let first = addr / cfg.burst_bytes;
            let last = (addr + bytes - 1) / cfg.burst_bytes;
            for burst in first..=last {
                if Some(burst) == last_burst {
                    continue; // coalesced with the previous request
                }
                last_burst = Some(burst);
                let burst_addr = burst * cfg.burst_bytes;
                let (bank, row) = self.map(burst_addr);
                let hit = self.open_row[bank] == Some(row);
                if hit {
                    result.row_hits += 1;
                } else {
                    result.row_misses += 1;
                    result.energy_pj += cfg.act_energy_pj;
                    // Activation may start up to `lookahead` cycles before
                    // the channel needs the data, but never before the bank
                    // itself is free.
                    let act_start = (time - cfg.lookahead as f64).max(self.bank_ready[bank]);
                    let penalty = (cfg.t_rp + cfg.t_rcd + cfg.t_cas) as f64;
                    self.bank_ready[bank] = act_start + penalty;
                    self.open_row[bank] = Some(row);
                }
                // The transfer starts when both the channel and the bank
                // are ready.
                let start = time.max(self.bank_ready[bank]);
                time = start + burst_cycles;
                self.bank_ready[bank] = time;
                result.transferred_bytes += cfg.burst_bytes;
                result.energy_pj += cfg.read_energy_pj_per_byte * cfg.burst_bytes as f64;
            }
        }

        result.cycles = time.ceil() as u64;
        result.energy_pj += cfg.background_pj_per_cycle * result.cycles as f64;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sequential(total_bytes: u64, req: u64) -> Vec<(u64, u64)> {
        (0..total_bytes / req).map(|i| (i * req, req)).collect()
    }

    fn scattered(n: u64, req: u64, stride: u64) -> Vec<(u64, u64)> {
        // Large prime-ish stride defeats row locality.
        (0..n).map(|i| ((i * stride) % (1 << 30), req)).collect()
    }

    #[test]
    fn sequential_stream_near_peak() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        let res = dram.replay(sequential(1 << 20, 64));
        assert!(
            res.bandwidth_utilization() > 0.9,
            "{}",
            res.bandwidth_utilization()
        );
        assert!(res.row_hit_rate() > 0.9, "{}", res.row_hit_rate());
        assert_eq!(res.transfer_efficiency(), 1.0);
    }

    #[test]
    fn scattered_small_reads_waste_bandwidth() {
        // 16-byte useful reads: 75% of each burst is wasted, and row
        // locality is gone -> utilization in the CSR-like regime (<40%).
        let mut dram = DramModel::new(DramConfig::paper_default());
        let res = dram.replay(scattered(16384, 16, 8192 + 64));
        assert!(
            res.bandwidth_utilization() < 0.4,
            "scattered utilization {}",
            res.bandwidth_utilization()
        );
        assert!(res.transfer_efficiency() <= 0.25 + 1e-9);
    }

    #[test]
    fn sequential_beats_scattered() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        let seq = dram.replay(sequential(1 << 20, 64));
        dram.reset();
        let sc = dram.replay(scattered(16384, 64, 8192 + 64));
        assert!(seq.cycles < sc.cycles);
        assert!(seq.energy_pj < sc.energy_pj);
    }

    #[test]
    fn burst_quantization_counts_whole_bursts() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        let res = dram.replay([(0u64, 1u64)]);
        assert_eq!(res.transferred_bytes, 64);
        assert_eq!(res.useful_bytes, 1);
    }

    #[test]
    fn request_spanning_bursts() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        // 100 bytes starting at 32 spans bursts 0 and 1 and part of 2.
        let res = dram.replay([(32u64, 100u64)]);
        assert_eq!(res.transferred_bytes, 3 * 64);
    }

    #[test]
    fn empty_replay_is_free() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        let res = dram.replay(std::iter::empty());
        assert_eq!(res.cycles, 0);
        assert_eq!(res.bandwidth_utilization(), 1.0);
    }

    #[test]
    fn zero_byte_requests_ignored() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        let res = dram.replay([(0u64, 0u64)]);
        assert_eq!(res.cycles, 0);
        assert_eq!(res.transferred_bytes, 0);
    }

    #[test]
    fn higher_bandwidth_fewer_cycles() {
        let trace = sequential(1 << 20, 64);
        let mut slow = DramModel::new(DramConfig::with_bandwidth_gbps(32.0));
        let mut fast = DramModel::new(DramConfig::with_bandwidth_gbps(256.0));
        let s = slow.replay(trace.iter().copied());
        let f = fast.replay(trace.iter().copied());
        assert!(
            f.cycles * 4 < s.cycles,
            "fast {} slow {}",
            f.cycles,
            s.cycles
        );
    }

    #[test]
    fn same_bank_conflicts_serialize() {
        // Ping-pong between two rows of the SAME bank: every access is a
        // miss the lookahead cannot hide (bank busy with the other row).
        let cfg = DramConfig::paper_default();
        let bank_stride = cfg.row_bytes * cfg.banks as u64; // same bank, next row
        let trace: Vec<(u64, u64)> = (0..512)
            .map(|i| (if i % 2 == 0 { 0 } else { bank_stride }, 64))
            .collect();
        let mut dram = DramModel::new(cfg);
        let res = dram.replay(trace);
        assert!(res.row_hit_rate() < 0.01);
        assert!(
            res.bandwidth_utilization() < 0.1,
            "{}",
            res.bandwidth_utilization()
        );
    }

    #[test]
    fn reset_clears_open_rows() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        let _ = dram.replay([(0u64, 64u64)]);
        dram.reset();
        let res = dram.replay([(0u64, 64u64)]);
        assert_eq!(res.row_misses, 1, "row must be re-activated after reset");
    }

    #[test]
    fn energy_has_background_component() {
        let mut dram = DramModel::new(DramConfig::paper_default());
        let res = dram.replay(sequential(1 << 16, 64));
        let transfer = res.transferred_bytes as f64 * 15.0;
        assert!(res.energy_pj > transfer, "background + activation included");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn invalid_config_rejected() {
        let mut cfg = DramConfig::paper_default();
        cfg.bytes_per_cycle = 0.0;
        let _ = DramModel::new(cfg);
    }

    proptest! {
        #[test]
        fn utilization_bounded(reqs in proptest::collection::vec((0u64..1_000_000, 1u64..512), 1..200)) {
            let mut dram = DramModel::new(DramConfig::paper_default());
            let res = dram.replay(reqs.iter().copied());
            prop_assert!(res.bandwidth_utilization() <= 1.0 + 1e-9);
            prop_assert!(res.transferred_bytes >= res.useful_bytes);
            prop_assert!(res.cycles >= (res.transferred_bytes as f64 / 64.0) as u64);
        }

        #[test]
        fn cycles_monotone_in_traffic(n in 1u64..100) {
            let mut dram = DramModel::new(DramConfig::paper_default());
            let small = dram.replay(sequential(n * 64, 64));
            dram.reset();
            let large = dram.replay(sequential((n + 10) * 64, 64));
            prop_assert!(large.cycles >= small.cycles);
        }
    }
}
