//! From-scratch sparse-training substrate for the TB-STC reproduction.
//!
//! The paper's accuracy results (Tables I and II, Figs. 4(c), 15(a,b),
//! 18) come from training/pruning real models in PyTorch. This crate
//! substitutes a compact but real training stack:
//!
//! * [`net`] — multi-layer perceptrons with manual backpropagation
//!   (linear + ReLU + softmax cross-entropy), SGD with momentum,
//! * [`data`] — synthetic classification datasets with train/test splits:
//!   a Gaussian-mixture "vision" proxy and a token-bag "NLP" proxy,
//! * [`sparse`] — the paper's end-to-end sparse training flow (§III-B1):
//!   dense weights with a pattern-projected mask recomputed every epoch,
//!   straight-through gradients,
//! * [`oneshot`] — Table II's one-shot pruning protocol: train a dense
//!   teacher, prune with Wanda or SparseGPT under each pattern, evaluate
//!   without retraining.
//!
//! The accuracy *ordering* across patterns (US ≥ TBS ≥ RS-H ≈ RS-V ≥ TS)
//! is a property of how much weight importance each projection retains —
//! which these small models measure just as well as a 7 B-parameter one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod net;
pub mod oneshot;
pub mod sparse;

pub use data::Dataset;
pub use net::{Mlp, MlpConfig};
pub use sparse::{SparseTrainer, TrainConfig, TrainRecord};
