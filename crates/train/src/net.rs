//! Multi-layer perceptrons with manual backpropagation.
//!
//! The network is a stack of `Linear → ReLU` layers with a final linear
//! classifier trained by softmax cross-entropy and SGD with momentum.
//! Masks (when sparse training) are applied to the *effective* weights on
//! the forward/backward pass while gradients update the dense weights —
//! the straight-through scheme of the paper's sparse-training flow.

use tbstc_matrix::gemm;
use tbstc_matrix::rng::MatrixRng;
use tbstc_matrix::Matrix;
use tbstc_sparsity::Mask;

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Input feature count.
    pub inputs: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Output class count.
    pub classes: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
}

impl MlpConfig {
    /// A small default network for the synthetic tasks.
    pub fn small(inputs: usize, classes: usize) -> Self {
        MlpConfig {
            inputs,
            hidden: vec![128, 64],
            classes,
            lr: 0.05,
            momentum: 0.9,
        }
    }
}

/// One linear layer with its optimizer state and optional mask.
#[derive(Debug, Clone)]
struct Linear {
    /// Dense weights, `out × in`.
    w: Matrix,
    /// Bias, length `out`.
    b: Vec<f32>,
    /// Momentum buffer for `w`.
    vw: Matrix,
    /// Momentum buffer for `b`.
    vb: Vec<f32>,
    /// Active mask (None = dense).
    mask: Option<Mask>,
}

impl Linear {
    fn new(inputs: usize, outputs: usize, rng: &mut MatrixRng) -> Self {
        Linear {
            w: rng.weights(outputs, inputs),
            b: vec![0.0; outputs],
            vw: Matrix::zeros(outputs, inputs),
            vb: vec![0.0; outputs],
            mask: None,
        }
    }

    /// The weights the forward pass actually uses.
    fn effective_w(&self) -> Matrix {
        match &self.mask {
            Some(m) => m.apply(&self.w),
            None => self.w.clone(),
        }
    }

    /// `X (out×in W)ᵀ + b` for a row-major batch `X` (`n × in`).
    fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = gemm::matmul(x, &self.effective_w().transpose());
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                h[(r, c)] += self.b[c];
            }
        }
        h
    }

    /// Backward: given `dH` (`n × out`) and the input `x`, returns `dX`
    /// and applies the SGD-momentum update to the dense weights.
    fn backward_update(&mut self, x: &Matrix, dh: &Matrix, lr: f32, momentum: f32) -> Matrix {
        let n = x.rows().max(1) as f32;
        // dW = dHᵀ X / n ; dB = mean(dH) ; dX = dH W_eff.
        let dw = gemm::matmul(&dh.transpose(), x).map(|g| g / n);
        let dx = gemm::matmul(dh, &self.effective_w());
        for c in 0..self.b.len() {
            let db: f32 = (0..dh.rows()).map(|r| dh[(r, c)]).sum::<f32>() / n;
            self.vb[c] = momentum * self.vb[c] - lr * db;
            self.b[c] += self.vb[c];
        }
        for r in 0..self.w.rows() {
            for c in 0..self.w.cols() {
                self.vw[(r, c)] = momentum * self.vw[(r, c)] - lr * dw[(r, c)];
                self.w[(r, c)] += self.vw[(r, c)];
            }
        }
        dx
    }
}

/// A multi-layer perceptron classifier.
///
/// # Examples
///
/// ```
/// use tbstc_train::{Mlp, MlpConfig};
/// use tbstc_matrix::Matrix;
///
/// let mut net = Mlp::new(&MlpConfig::small(8, 3), 0);
/// let x = Matrix::zeros(4, 8);
/// let probs = net.forward(&x);
/// assert_eq!(probs.shape(), (4, 3));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    lr: f32,
    momentum: f32,
}

impl Mlp {
    /// Creates a randomly initialized network.
    pub fn new(cfg: &MlpConfig, seed: u64) -> Self {
        let mut rng = MatrixRng::seed_from(seed);
        let mut dims = vec![cfg.inputs];
        dims.extend(&cfg.hidden);
        dims.push(cfg.classes);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            lr: cfg.lr,
            momentum: cfg.momentum,
        }
    }

    /// Number of weight layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Borrows layer `i`'s dense weights.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn weights(&self, i: usize) -> &Matrix {
        &self.layers[i].w
    }

    /// Replaces layer `i`'s dense weights (used by one-shot pruners that
    /// apply weight updates).
    ///
    /// # Panics
    ///
    /// Panics when shapes mismatch or `i` is out of range.
    pub fn set_weights(&mut self, i: usize, w: Matrix) {
        assert_eq!(self.layers[i].w.shape(), w.shape(), "weight shape mismatch");
        self.layers[i].w = w;
    }

    /// Borrows layer `i`'s active mask, if any.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn mask(&self, i: usize) -> Option<&Mask> {
        self.layers[i].mask.as_ref()
    }

    /// Sets (or clears) layer `i`'s mask.
    ///
    /// # Panics
    ///
    /// Panics when the mask shape mismatches or `i` is out of range.
    pub fn set_mask(&mut self, i: usize, mask: Option<Mask>) {
        if let Some(m) = &mask {
            assert_eq!(self.layers[i].w.shape(), m.shape(), "mask shape mismatch");
        }
        self.layers[i].mask = mask;
    }

    /// Forward pass returning class probabilities (`n × classes`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let (probs, _) = self.forward_cached(x);
        probs
    }

    /// Forward pass that also returns the per-layer inputs (activations
    /// before each linear layer) for backprop and for Wanda calibration.
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<Matrix>) {
        let mut acts = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            acts.push(h.clone());
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h.map_inplace(|v| v.max(0.0)); // ReLU
            }
        }
        (softmax_rows(&h), acts)
    }

    /// One SGD step on a batch; returns the mean cross-entropy loss.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != x.rows()` or a label is out of range.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), x.rows(), "one label per sample");
        let (probs, acts) = self.forward_cached(x);
        let classes = probs.cols();
        assert!(labels.iter().all(|&y| y < classes), "label out of range");

        let n = x.rows();
        let mut loss = 0.0f64;
        // dLogits = probs - onehot.
        let mut grad = probs.clone();
        for (i, &y) in labels.iter().enumerate() {
            loss -= f64::from(probs[(i, y)].max(1e-12).ln());
            grad[(i, y)] -= 1.0;
        }
        loss /= n as f64;

        // Backprop through the stack; ReLU derivative gates hidden grads.
        for li in (0..self.layers.len()).rev() {
            let x_in = &acts[li];
            let (lr, mom) = (self.lr, self.momentum);
            let mut dx = self.layers[li].backward_update(x_in, &grad, lr, mom);
            if li > 0 {
                // Gate by the ReLU that produced acts[li].
                for r in 0..dx.rows() {
                    for c in 0..dx.cols() {
                        if acts[li][(r, c)] <= 0.0 {
                            dx[(r, c)] = 0.0;
                        }
                    }
                }
            }
            grad = dx;
        }
        loss
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != x.rows()`.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), x.rows(), "one label per sample");
        if labels.is_empty() {
            return 1.0;
        }
        let probs = self.forward(x);
        let correct = labels
            .iter()
            .enumerate()
            .filter(|&(i, &y)| {
                let row = probs.row(i);
                let best = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                best == y
            })
            .count();
        correct as f64 / labels.len() as f64
    }
}

/// Row-wise softmax with max-subtraction for stability.
fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum.max(1e-12);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]).unwrap();
        let p = softmax_rows(&l);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p[(0, 2)] > p[(0, 0)]);
    }

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&MlpConfig::small(10, 4), 0);
        let x = Matrix::zeros(3, 10);
        assert_eq!(net.forward(&x).shape(), (3, 4));
        assert_eq!(net.layer_count(), 3);
    }

    #[test]
    fn training_reduces_loss() {
        let d = Dataset::gaussian_mixture(16, 3, 128, 64, 0.3, 5);
        let mut net = Mlp::new(&MlpConfig::small(16, 3), 1);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..10 {
            for (x, y) in d.batches(32) {
                last = net.train_batch(&x, &y);
                first.get_or_insert(last);
            }
        }
        assert!(last < first.unwrap() * 0.5, "{last} vs {first:?}");
    }

    #[test]
    fn trained_net_beats_chance() {
        let d = Dataset::gaussian_mixture(16, 4, 256, 128, 0.3, 6);
        let mut net = Mlp::new(&MlpConfig::small(16, 4), 2);
        for _ in 0..20 {
            for (x, y) in d.batches(32) {
                net.train_batch(&x, &y);
            }
        }
        let acc = net.accuracy(&d.test_x, &d.test_y);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn mask_zeroes_effective_weights() {
        let mut net = Mlp::new(&MlpConfig::small(8, 2), 3);
        let shape = net.weights(0).shape();
        net.set_mask(0, Some(Mask::none(shape.0, shape.1)));
        let x = Matrix::filled(2, 8, 1.0);
        let p = net.forward(&x);
        // First layer output is all bias -> ReLU -> same for every sample;
        // probabilities become uniform across samples.
        assert!((p[(0, 0)] - p[(1, 0)]).abs() < 1e-6);
    }

    #[test]
    fn masked_training_keeps_mask_effective() {
        let d = Dataset::gaussian_mixture(16, 2, 64, 32, 0.4, 7);
        let mut net = Mlp::new(&MlpConfig::small(16, 2), 4);
        let shape = net.weights(0).shape();
        let mask = Mask::from_fn(shape.0, shape.1, |r, c| (r + c) % 2 == 0);
        net.set_mask(0, Some(mask.clone()));
        for (x, y) in d.batches(16) {
            net.train_batch(&x, &y);
        }
        // The mask still gates the forward pass after updates.
        let eff = net.layers[0].effective_w();
        for (r, c) in (0..shape.0).flat_map(|r| (0..shape.1).map(move |c| (r, c))) {
            if !mask.get(r, c) {
                assert_eq!(eff[(r, c)], 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn label_count_checked() {
        let mut net = Mlp::new(&MlpConfig::small(4, 2), 5);
        let x = Matrix::zeros(2, 4);
        let _ = net.train_batch(&x, &[0]);
    }

    #[test]
    fn forward_cached_exposes_activations() {
        let net = Mlp::new(&MlpConfig::small(8, 2), 6);
        let x = Matrix::filled(3, 8, 0.5);
        let (_, acts) = net.forward_cached(&x);
        assert_eq!(acts.len(), net.layer_count());
        assert_eq!(acts[0].shape(), (3, 8));
    }
}
