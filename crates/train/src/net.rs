//! Multi-layer perceptrons with manual backpropagation.
//!
//! The network is a stack of `Linear → ReLU` layers with a final linear
//! classifier trained by softmax cross-entropy and SGD with momentum.
//! Masks (when sparse training) are applied to the *effective* weights on
//! the forward/backward pass while gradients update the dense weights —
//! the straight-through scheme of the paper's sparse-training flow.

use std::cell::{Ref, RefCell};

use tbstc_matrix::gemm::{self, GemmScratch};
use tbstc_matrix::rng::MatrixRng;
use tbstc_matrix::Matrix;
use tbstc_sparsity::Mask;

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Input feature count.
    pub inputs: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Output class count.
    pub classes: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
}

impl MlpConfig {
    /// A small default network for the synthetic tasks.
    pub fn small(inputs: usize, classes: usize) -> Self {
        MlpConfig {
            inputs,
            hidden: vec![128, 64],
            classes,
            lr: 0.05,
            momentum: 0.9,
        }
    }
}

/// The cached masked weights behind [`Linear`]'s dirty flag.
#[derive(Debug, Clone)]
struct EffCache {
    w: Matrix,
    dirty: bool,
}

/// One linear layer with its optimizer state and optional mask.
#[derive(Debug, Clone)]
struct Linear {
    /// Dense weights, `out × in`.
    w: Matrix,
    /// Bias, length `out`.
    b: Vec<f32>,
    /// Momentum buffer for `w`.
    vw: Matrix,
    /// Momentum buffer for `b`.
    vb: Vec<f32>,
    /// Active mask (None = dense).
    mask: Option<Mask>,
    /// Masked effective weights, recomputed in place only when `w` or
    /// `mask` changed since the last use (`backward_update`, `set_mask`
    /// and `set_weights` set the dirty flag). `RefCell` keeps `forward`
    /// usable through `&self`.
    eff: RefCell<EffCache>,
    /// Reused per-column gradient accumulator for the bias update.
    db: Vec<f32>,
}

impl Linear {
    fn new(inputs: usize, outputs: usize, rng: &mut MatrixRng) -> Self {
        Linear {
            w: rng.weights(outputs, inputs),
            b: vec![0.0; outputs],
            vw: Matrix::zeros(outputs, inputs),
            vb: vec![0.0; outputs],
            mask: None,
            eff: RefCell::new(EffCache {
                w: Matrix::zeros(0, 0),
                dirty: true,
            }),
            db: vec![0.0; outputs],
        }
    }

    /// The weights the forward pass actually uses: masked on a cache miss,
    /// straight from the cache afterwards.
    fn effective(&self) -> Ref<'_, Matrix> {
        {
            let mut cache = self.eff.borrow_mut();
            if cache.dirty {
                let EffCache { w, dirty } = &mut *cache;
                match &self.mask {
                    Some(m) => m.apply_into(&self.w, w),
                    None => w.copy_from(&self.w),
                }
                *dirty = false;
            }
        }
        Ref::map(self.eff.borrow(), |c| &c.w)
    }

    /// Marks the cached effective weights stale. Every mutation of `w` or
    /// `mask` must come through here.
    fn invalidate(&mut self) {
        self.eff.get_mut().dirty = true;
    }

    /// Owned copy of the effective weights (test/inspection helper).
    #[cfg(test)]
    fn effective_w(&self) -> Matrix {
        self.effective().clone()
    }

    /// `X (out×in W)ᵀ + b` for a row-major batch `X` (`n × in`).
    fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = Matrix::zeros(0, 0);
        let mut scratch = GemmScratch::new();
        self.forward_into(x, &mut h, &mut scratch);
        h
    }

    /// [`Linear::forward`] into a caller-owned buffer: on a cache hit with
    /// stable shapes this performs no heap allocation.
    fn forward_into(&self, x: &Matrix, out: &mut Matrix, scratch: &mut GemmScratch) {
        let eff = self.effective();
        gemm::matmul_transb_into(x, &eff, out, scratch);
        for r in 0..out.rows() {
            for (v, &bias) in out.row_mut(r).iter_mut().zip(&self.b) {
                *v += bias;
            }
        }
    }

    /// Backward: given `dH` (`n × out`) and the input `x`, writes `dX`
    /// into `dx` and applies the SGD-momentum update to the dense weights.
    ///
    /// `dw` and `scratch` are caller-owned workspaces (the raw `dHᵀ·X`
    /// gradient and the GEMM packing buffer); nothing here allocates once
    /// their capacities have grown to the layer's shape.
    #[allow(clippy::too_many_arguments)]
    fn backward_update(
        &mut self,
        x: &Matrix,
        dh: &Matrix,
        lr: f32,
        momentum: f32,
        dw: &mut Matrix,
        dx: &mut Matrix,
        scratch: &mut GemmScratch,
    ) {
        let n = x.rows().max(1) as f32;
        // dW = dHᵀ X / n ; dB = mean(dH) ; dX = dH W_eff.
        gemm::matmul_at_b_into(dh, x, dw, scratch);
        {
            // dH in multiplier position: ReLU-gated gradients are mostly
            // exact zeros, which the kernel skips.
            let eff = self.effective();
            gemm::matmul_into(dh, &eff, dx);
        }
        self.db.clear();
        self.db.resize(self.b.len(), 0.0);
        for r in 0..dh.rows() {
            for (acc, &g) in self.db.iter_mut().zip(dh.row(r)) {
                *acc += g;
            }
        }
        for ((vb, b), &db) in self.vb.iter_mut().zip(self.b.iter_mut()).zip(&self.db) {
            *vb = momentum * *vb - lr * (db / n);
            *b += *vb;
        }
        for r in 0..self.w.rows() {
            let dw_row = dw.row(r);
            let vw_row = self.vw.row_mut(r);
            let w_row = self.w.row_mut(r);
            for ((vw, w), &g) in vw_row.iter_mut().zip(w_row).zip(dw_row) {
                *vw = momentum * *vw - lr * (g / n);
                *w += *vw;
            }
        }
        self.invalidate();
    }
}

/// Reusable buffers for [`Mlp::train_batch`] and [`Mlp::forward_into`]:
/// activations, gradients and GEMM workspaces grow to the batch shape once
/// and are rewritten in place afterwards.
#[derive(Debug, Clone)]
struct TrainScratch {
    gemm: GemmScratch,
    dw: Matrix,
    grad: Matrix,
    dx: Matrix,
    acts: Vec<Matrix>,
    probs: Matrix,
}

impl Default for TrainScratch {
    fn default() -> Self {
        TrainScratch {
            gemm: GemmScratch::new(),
            dw: Matrix::zeros(0, 0),
            grad: Matrix::zeros(0, 0),
            dx: Matrix::zeros(0, 0),
            acts: Vec::new(),
            probs: Matrix::zeros(0, 0),
        }
    }
}

/// Runs the layer stack over `x`, storing each layer's input in `acts`
/// (post-ReLU activations, `acts[0]` = `x`) and the final logits in
/// `probs` — all into reused buffers.
fn forward_through(
    layers: &[Linear],
    x: &Matrix,
    acts: &mut Vec<Matrix>,
    probs: &mut Matrix,
    scratch: &mut GemmScratch,
) {
    let nl = layers.len();
    if acts.len() != nl {
        acts.resize(nl, Matrix::zeros(0, 0));
    }
    acts[0].copy_from(x);
    for i in 0..nl {
        if i + 1 < nl {
            let (head, tail) = acts.split_at_mut(i + 1);
            layers[i].forward_into(&head[i], &mut tail[0], scratch);
            tail[0].map_inplace(|v| v.max(0.0)); // ReLU
        } else {
            layers[i].forward_into(&acts[i], probs, scratch);
        }
    }
}

/// A multi-layer perceptron classifier.
///
/// # Examples
///
/// ```
/// use tbstc_train::{Mlp, MlpConfig};
/// use tbstc_matrix::Matrix;
///
/// let mut net = Mlp::new(&MlpConfig::small(8, 3), 0);
/// let x = Matrix::zeros(4, 8);
/// let probs = net.forward(&x);
/// assert_eq!(probs.shape(), (4, 3));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    lr: f32,
    momentum: f32,
    scratch: TrainScratch,
}

impl Mlp {
    /// Creates a randomly initialized network.
    pub fn new(cfg: &MlpConfig, seed: u64) -> Self {
        let mut rng = MatrixRng::seed_from(seed);
        let mut dims = vec![cfg.inputs];
        dims.extend(&cfg.hidden);
        dims.push(cfg.classes);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            lr: cfg.lr,
            momentum: cfg.momentum,
            scratch: TrainScratch::default(),
        }
    }

    /// Number of weight layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Borrows layer `i`'s dense weights.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn weights(&self, i: usize) -> &Matrix {
        &self.layers[i].w
    }

    /// Replaces layer `i`'s dense weights (used by one-shot pruners that
    /// apply weight updates).
    ///
    /// # Panics
    ///
    /// Panics when shapes mismatch or `i` is out of range.
    pub fn set_weights(&mut self, i: usize, w: Matrix) {
        assert_eq!(self.layers[i].w.shape(), w.shape(), "weight shape mismatch");
        self.layers[i].w = w;
        self.layers[i].invalidate();
    }

    /// Borrows layer `i`'s active mask, if any.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn mask(&self, i: usize) -> Option<&Mask> {
        self.layers[i].mask.as_ref()
    }

    /// Sets (or clears) layer `i`'s mask.
    ///
    /// # Panics
    ///
    /// Panics when the mask shape mismatches or `i` is out of range.
    pub fn set_mask(&mut self, i: usize, mask: Option<Mask>) {
        if let Some(m) = &mask {
            assert_eq!(self.layers[i].w.shape(), m.shape(), "mask shape mismatch");
        }
        self.layers[i].mask = mask;
        self.layers[i].invalidate();
    }

    /// Forward pass returning class probabilities (`n × classes`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let (probs, _) = self.forward_cached(x);
        probs
    }

    /// Forward pass into a caller-owned buffer.
    ///
    /// After a warm-up call with the same batch shape (and with the masked
    /// effective weights cached), this path performs **no heap
    /// allocation**: activations live in the network's scratch buffers and
    /// `out` is rewritten in place.
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix) {
        let Mlp {
            layers, scratch, ..
        } = self;
        forward_through(layers, x, &mut scratch.acts, out, &mut scratch.gemm);
        softmax_rows_inplace(out);
    }

    /// Forward pass that also returns the per-layer inputs (activations
    /// before each linear layer) for backprop and for Wanda calibration.
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<Matrix>) {
        let mut acts = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            acts.push(h.clone());
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h.map_inplace(|v| v.max(0.0)); // ReLU
            }
        }
        (softmax_rows(&h), acts)
    }

    /// One SGD step on a batch; returns the mean cross-entropy loss.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != x.rows()` or a label is out of range.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), x.rows(), "one label per sample");
        let Mlp {
            layers,
            lr,
            momentum,
            scratch,
        } = self;
        let TrainScratch {
            gemm: gemm_scratch,
            dw,
            grad,
            dx,
            acts,
            probs,
        } = scratch;

        forward_through(layers, x, acts, probs, gemm_scratch);
        softmax_rows_inplace(probs);
        let classes = probs.cols();
        assert!(labels.iter().all(|&y| y < classes), "label out of range");

        let n = x.rows();
        let mut loss = 0.0f64;
        // dLogits = probs - onehot.
        grad.copy_from(probs);
        for (i, &y) in labels.iter().enumerate() {
            loss -= f64::from(probs[(i, y)].max(1e-12).ln());
            grad[(i, y)] -= 1.0;
        }
        loss /= n as f64;

        // Backprop through the stack; ReLU derivative gates hidden grads.
        // `grad` and `dx` ping-pong so each step reads the previous layer's
        // gradient while writing the next one — no per-layer allocation.
        for li in (0..layers.len()).rev() {
            layers[li].backward_update(&acts[li], grad, *lr, *momentum, dw, dx, gemm_scratch);
            if li > 0 {
                // Gate by the ReLU that produced acts[li].
                let act = &acts[li];
                for r in 0..dx.rows() {
                    for (v, &a) in dx.row_mut(r).iter_mut().zip(act.row(r)) {
                        if a <= 0.0 {
                            *v = 0.0;
                        }
                    }
                }
            }
            std::mem::swap(grad, dx);
        }
        loss
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != x.rows()`.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), x.rows(), "one label per sample");
        if labels.is_empty() {
            return 1.0;
        }
        let probs = self.forward(x);
        let correct = labels
            .iter()
            .enumerate()
            .filter(|&(i, &y)| {
                let row = probs.row(i);
                let best = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                best == y
            })
            .count();
        correct as f64 / labels.len() as f64
    }
}

/// Row-wise softmax with max-subtraction for stability.
fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// [`softmax_rows`] in place — the allocation-free path `train_batch` and
/// `forward_into` use on their scratch buffers.
fn softmax_rows_inplace(out: &mut Matrix) {
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum.max(1e-12);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]).unwrap();
        let p = softmax_rows(&l);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p[(0, 2)] > p[(0, 0)]);
    }

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&MlpConfig::small(10, 4), 0);
        let x = Matrix::zeros(3, 10);
        assert_eq!(net.forward(&x).shape(), (3, 4));
        assert_eq!(net.layer_count(), 3);
    }

    #[test]
    fn training_reduces_loss() {
        let d = Dataset::gaussian_mixture(16, 3, 128, 64, 0.3, 5);
        let mut net = Mlp::new(&MlpConfig::small(16, 3), 1);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..10 {
            for (x, y) in d.batches(32) {
                last = net.train_batch(&x, &y);
                first.get_or_insert(last);
            }
        }
        assert!(last < first.unwrap() * 0.5, "{last} vs {first:?}");
    }

    #[test]
    fn trained_net_beats_chance() {
        let d = Dataset::gaussian_mixture(16, 4, 256, 128, 0.3, 6);
        let mut net = Mlp::new(&MlpConfig::small(16, 4), 2);
        for _ in 0..20 {
            for (x, y) in d.batches(32) {
                net.train_batch(&x, &y);
            }
        }
        let acc = net.accuracy(&d.test_x, &d.test_y);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn mask_zeroes_effective_weights() {
        let mut net = Mlp::new(&MlpConfig::small(8, 2), 3);
        let shape = net.weights(0).shape();
        net.set_mask(0, Some(Mask::none(shape.0, shape.1)));
        let x = Matrix::filled(2, 8, 1.0);
        let p = net.forward(&x);
        // First layer output is all bias -> ReLU -> same for every sample;
        // probabilities become uniform across samples.
        assert!((p[(0, 0)] - p[(1, 0)]).abs() < 1e-6);
    }

    #[test]
    fn masked_training_keeps_mask_effective() {
        let d = Dataset::gaussian_mixture(16, 2, 64, 32, 0.4, 7);
        let mut net = Mlp::new(&MlpConfig::small(16, 2), 4);
        let shape = net.weights(0).shape();
        let mask = Mask::from_fn(shape.0, shape.1, |r, c| (r + c) % 2 == 0);
        net.set_mask(0, Some(mask.clone()));
        for (x, y) in d.batches(16) {
            net.train_batch(&x, &y);
        }
        // The mask still gates the forward pass after updates.
        let eff = net.layers[0].effective_w();
        for (r, c) in (0..shape.0).flat_map(|r| (0..shape.1).map(move |c| (r, c))) {
            if !mask.get(r, c) {
                assert_eq!(eff[(r, c)], 0.0);
            }
        }
    }

    #[test]
    fn forward_into_matches_forward() {
        let d = Dataset::gaussian_mixture(12, 3, 64, 32, 0.3, 9);
        let mut net = Mlp::new(&MlpConfig::small(12, 3), 8);
        for (x, y) in d.batches(16) {
            net.train_batch(&x, &y);
        }
        let x = d.test_x.block(0, 0, 8, 12);
        let reference = net.forward(&x);
        let mut out = Matrix::zeros(0, 0);
        net.forward_into(&x, &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn forward_steady_state_reuses_buffers() {
        // Scratch-reuse check: after warm-up, neither the output buffer
        // nor the cached effective weights move in memory.
        let mut net = Mlp::new(&MlpConfig::small(16, 4), 9);
        let shape = net.weights(0).shape();
        net.set_mask(
            0,
            Some(Mask::from_fn(shape.0, shape.1, |r, c| (r + c) % 2 == 0)),
        );
        let x = Matrix::filled(8, 16, 0.5);
        let mut out = Matrix::zeros(0, 0);
        net.forward_into(&x, &mut out); // warm-up: buffers grow, cache fills
        let out_ptr = out.as_slice().as_ptr();
        let eff_ptr = net.layers[0].effective().as_slice().as_ptr();
        net.forward_into(&x, &mut out);
        assert_eq!(out.as_slice().as_ptr(), out_ptr, "output buffer moved");
        assert_eq!(
            net.layers[0].effective().as_slice().as_ptr(),
            eff_ptr,
            "effective-weight cache recomputed into a new allocation"
        );
    }

    #[test]
    fn effective_cache_invalidated_by_mutations() {
        let mut net = Mlp::new(&MlpConfig::small(8, 2), 10);
        let shape = net.weights(0).shape();
        let dense_eff = net.layers[0].effective_w();
        assert_eq!(dense_eff, *net.weights(0));

        // set_mask must invalidate.
        net.set_mask(0, Some(Mask::none(shape.0, shape.1)));
        assert_eq!(net.layers[0].effective_w(), Matrix::zeros(shape.0, shape.1));

        // set_weights must invalidate.
        net.set_mask(0, None);
        net.set_weights(0, Matrix::filled(shape.0, shape.1, 2.0));
        assert_eq!(
            net.layers[0].effective_w(),
            Matrix::filled(shape.0, shape.1, 2.0)
        );

        // backward_update must invalidate: train once, cache must track w.
        let d = Dataset::gaussian_mixture(8, 2, 32, 16, 0.4, 11);
        let mut net = Mlp::new(&MlpConfig::small(8, 2), 12);
        for (x, y) in d.batches(8) {
            net.train_batch(&x, &y);
        }
        assert_eq!(net.layers[0].effective_w(), *net.weights(0));
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn label_count_checked() {
        let mut net = Mlp::new(&MlpConfig::small(4, 2), 5);
        let x = Matrix::zeros(2, 4);
        let _ = net.train_batch(&x, &[0]);
    }

    #[test]
    fn forward_cached_exposes_activations() {
        let net = Mlp::new(&MlpConfig::small(8, 2), 6);
        let x = Matrix::filled(3, 8, 0.5);
        let (_, acts) = net.forward_cached(&x);
        assert_eq!(acts.len(), net.layer_count());
        assert_eq!(acts[0].shape(), (3, 8));
    }
}
