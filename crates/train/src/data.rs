//! Synthetic classification datasets with train/test splits.
//!
//! Two families, standing in for the paper's vision (CIFAR/ImageNet) and
//! NLP (GLUE) workloads:
//!
//! * [`Dataset::gaussian_mixture`] — each class is an anisotropic Gaussian
//!   cluster around a random prototype; feature importances vary, so
//!   trained first-layer weights develop the row/column heterogeneity
//!   that makes pruning-pattern quality measurable.
//! * [`Dataset::token_bag`] — each class has a sparse signature over a
//!   vocabulary; samples are noisy bags of signature tokens (a crude
//!   sentence-classification proxy).

use tbstc_matrix::rng::MatrixRng;
use tbstc_matrix::Matrix;

/// A supervised classification dataset (row-major samples).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training inputs, `train_n × features`.
    pub train_x: Matrix,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Held-out test inputs.
    pub test_x: Matrix,
    /// Held-out test labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.train_x.cols()
    }

    /// Training-set size.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// Test-set size.
    pub fn test_len(&self) -> usize {
        self.test_y.len()
    }

    /// A Gaussian-mixture classification task.
    ///
    /// `difficulty` ∈ (0, 1]: larger values move clusters closer together
    /// (lower attainable accuracy), giving pruning quality room to show.
    ///
    /// # Panics
    ///
    /// Panics when `classes < 2` or sizes are zero.
    pub fn gaussian_mixture(
        features: usize,
        classes: usize,
        train_n: usize,
        test_n: usize,
        difficulty: f64,
        seed: u64,
    ) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(train_n > 0 && test_n > 0, "need samples");
        let mut rng = MatrixRng::seed_from(seed);
        // Class prototypes with per-feature importance: only a subset of
        // features is strongly informative.
        let prototypes = rng.gaussian(classes, features, 0.0, 1.0);
        let importance: Vec<f32> = (0..features)
            .map(|_| if rng.unit() < 0.4 { 1.0 } else { 0.15 })
            .collect();
        let noise = (difficulty as f32).clamp(0.05, 1.0) * 1.2;

        let sample = |n: usize, rng: &mut MatrixRng| -> (Matrix, Vec<usize>) {
            let mut x = Matrix::zeros(n, features);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                let c = rng.index(classes);
                y.push(c);
                for f in 0..features {
                    let mean = prototypes[(c, f)] * importance[f];
                    x[(i, f)] = mean + noise * rng.standard_normal();
                }
            }
            (x, y)
        };
        let (train_x, train_y) = sample(train_n, &mut rng);
        let (test_x, test_y) = sample(test_n, &mut rng);
        Dataset {
            train_x,
            train_y,
            test_x,
            test_y,
            classes,
        }
    }

    /// A token-bag classification task: class signatures over a vocabulary
    /// of `features` tokens; samples mix signature tokens with noise
    /// tokens.
    ///
    /// # Panics
    ///
    /// Panics when `classes < 2` or sizes are zero.
    pub fn token_bag(
        features: usize,
        classes: usize,
        train_n: usize,
        test_n: usize,
        difficulty: f64,
        seed: u64,
    ) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(train_n > 0 && test_n > 0, "need samples");
        let mut rng = MatrixRng::seed_from(seed);
        let signature_len = (features / 8).max(2);
        // Each class owns a sparse token signature.
        let signatures: Vec<Vec<usize>> = (0..classes)
            .map(|_| {
                let mut idx: Vec<usize> = (0..features).collect();
                rng.shuffle(&mut idx);
                idx.truncate(signature_len);
                idx
            })
            .collect();
        let noise_tokens = ((signature_len as f64) * difficulty * 2.0).ceil() as usize;

        let sample = |n: usize, rng: &mut MatrixRng| -> (Matrix, Vec<usize>) {
            let mut x = Matrix::zeros(n, features);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                let c = rng.index(classes);
                y.push(c);
                for &t in &signatures[c] {
                    if rng.unit() < 0.8 {
                        x[(i, t)] += 1.0;
                    }
                }
                for _ in 0..noise_tokens {
                    let t = rng.index(features);
                    x[(i, t)] += 1.0;
                }
            }
            (x, y)
        };
        let (train_x, train_y) = sample(train_n, &mut rng);
        let (test_x, test_y) = sample(test_n, &mut rng);
        Dataset {
            train_x,
            train_y,
            test_x,
            test_y,
            classes,
        }
    }

    /// A capacity-bound teacher–student task: labels come from a frozen
    /// random *teacher network* whose weights have the block-local
    /// row/column structure of trained models (see
    /// `MatrixRng::block_structured_weights` and paper Fig. 17). Matching
    /// the teacher requires most of the student's capacity, so pruning
    /// genuinely costs accuracy and the *pattern quality* of the mask is
    /// what decides how much — the mechanism behind Tables I and II.
    ///
    /// # Panics
    ///
    /// Panics when `classes < 2` or sizes are zero.
    pub fn teacher_student(
        features: usize,
        classes: usize,
        hidden: usize,
        train_n: usize,
        test_n: usize,
        seed: u64,
    ) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(train_n > 0 && test_n > 0, "need samples");
        let mut rng = MatrixRng::seed_from(seed);
        // Frozen teacher: features -> hidden (ReLU) -> classes, with
        // block-structured weights.
        let w1 = rng.block_structured_weights(hidden, features, 8);
        let w2 = rng.block_structured_weights(classes, hidden, 8);

        let sample = |n: usize, rng: &mut MatrixRng| -> (Matrix, Vec<usize>) {
            let x = rng.gaussian(n, features, 0.0, 1.0);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                // h = relu(W1 x); logits = W2 h.
                let mut best = (f32::NEG_INFINITY, 0usize);
                let mut h = vec![0.0f32; hidden];
                for (j, hj) in h.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for f in 0..features {
                        acc += w1[(j, f)] * x[(i, f)];
                    }
                    *hj = acc.max(0.0);
                }
                for c in 0..classes {
                    let mut acc = 0.0;
                    for (j, &hj) in h.iter().enumerate() {
                        acc += w2[(c, j)] * hj;
                    }
                    if acc > best.0 {
                        best = (acc, c);
                    }
                }
                y.push(best.1);
            }
            (x, y)
        };
        let (train_x, train_y) = sample(train_n, &mut rng);
        let (test_x, test_y) = sample(test_n, &mut rng);
        Dataset {
            train_x,
            train_y,
            test_x,
            test_y,
            classes,
        }
    }

    /// Iterates over mini-batches of the training set in a fixed order.
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = (Matrix, Vec<usize>)> + '_ {
        let n = self.train_len();
        (0..n).step_by(batch.max(1)).map(move |start| {
            let end = (start + batch.max(1)).min(n);
            let x = self.train_x.block(start, 0, end - start, self.features());
            let y = self.train_y[start..end].to_vec();
            (x, y)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_mixture_shapes() {
        let d = Dataset::gaussian_mixture(16, 4, 100, 50, 0.3, 1);
        assert_eq!(d.train_x.shape(), (100, 16));
        assert_eq!(d.test_len(), 50);
        assert!(d.train_y.iter().all(|&y| y < 4));
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = Dataset::gaussian_mixture(8, 2, 20, 10, 0.5, 7);
        let b = Dataset::gaussian_mixture(8, 2, 20, 10, 0.5, 7);
        assert_eq!(a.train_x, b.train_x);
        assert_eq!(a.test_y, b.test_y);
    }

    #[test]
    fn token_bag_is_nonnegative_counts() {
        let d = Dataset::token_bag(32, 4, 50, 20, 0.5, 2);
        assert!(d.train_x.as_slice().iter().all(|&x| x >= 0.0));
        assert!(d.train_x.as_slice().iter().any(|&x| x > 0.0));
    }

    #[test]
    fn batches_cover_all_samples() {
        let d = Dataset::gaussian_mixture(8, 2, 25, 5, 0.3, 3);
        let total: usize = d.batches(10).map(|(_, y)| y.len()).sum();
        assert_eq!(total, 25);
        let sizes: Vec<usize> = d.batches(10).map(|(x, _)| x.rows()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn classes_are_separable_at_low_difficulty() {
        // A nearest-prototype classifier should do well when noise is low,
        // confirming the labels carry signal.
        let d = Dataset::gaussian_mixture(16, 3, 60, 60, 0.1, 4);
        // Estimate prototypes from training data.
        let mut protos = Matrix::zeros(3, 16);
        let mut counts = [0usize; 3];
        for i in 0..d.train_len() {
            let c = d.train_y[i];
            counts[c] += 1;
            for f in 0..16 {
                protos[(c, f)] += d.train_x[(i, f)];
            }
        }
        for c in 0..3 {
            for f in 0..16 {
                protos[(c, f)] /= counts[c].max(1) as f32;
            }
        }
        let mut correct = 0;
        for i in 0..d.test_len() {
            let mut best = (f32::MAX, 0);
            for c in 0..3 {
                let dist: f32 = (0..16)
                    .map(|f| (d.test_x[(i, f)] - protos[(c, f)]).powi(2))
                    .sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == d.test_y[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test_len() as f64;
        assert!(acc > 0.8, "nearest-prototype accuracy {acc}");
    }
}
