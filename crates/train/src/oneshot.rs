//! One-shot pruning evaluation (paper Table II protocol).
//!
//! For the LLM-scale models the paper cannot retrain, it prunes a trained
//! model in one shot with Wanda [59] or SparseGPT [12] under each
//! sparsity pattern and evaluates without any fine-tuning. This module
//! runs the same protocol on a dense teacher trained by this crate:
//!
//! 1. train a dense teacher on the dataset,
//! 2. collect calibration activations from a training batch,
//! 3. score weights with the chosen criterion,
//! 4. project the scores onto each pattern's constraint at 50 % sparsity,
//! 5. (SparseGPT only) apply the error-compensating weight update,
//! 6. evaluate the pruned model on the held-out split.

use tbstc_matrix::Matrix;
use tbstc_sparsity::criteria::{activation_norms, wanda_scores, Criterion, SparseGpt};
use tbstc_sparsity::pattern::paper_pattern;
use tbstc_sparsity::PatternKind;

use crate::data::Dataset;
use crate::net::{Mlp, MlpConfig};

/// A dense teacher plus its calibration activations.
#[derive(Debug, Clone)]
pub struct Teacher {
    net: Mlp,
    /// Per-layer calibration inputs (`samples × layer inputs`).
    calibration: Vec<Matrix>,
}

impl Teacher {
    /// Trains a dense teacher on `data` and caches calibration
    /// activations from the first training batch.
    pub fn train(data: &Dataset, epochs: usize, seed: u64) -> Self {
        let mut net = Mlp::new(&MlpConfig::small(data.features(), data.classes), seed);
        for _ in 0..epochs {
            for (x, y) in data.batches(32) {
                net.train_batch(&x, &y);
            }
        }
        let calib_x = data
            .train_x
            .block(0, 0, data.train_len().min(64), data.features());
        let (_, calibration) = net.forward_cached(&calib_x);
        Teacher { net, calibration }
    }

    /// The dense test accuracy (the Table II "Dense" row).
    pub fn dense_accuracy(&self, data: &Dataset) -> f64 {
        self.net.accuracy(&data.test_x, &data.test_y)
    }

    /// Prunes with TBS then applies symmetric int8 weight quantization —
    /// the "Q+S" configuration of Fig. 15(b). Returns the test accuracy.
    pub fn prune_quantize_and_eval(&self, data: &Dataset, sparsity: f64) -> f64 {
        use tbstc_matrix::quant::QuantizedMatrix;
        let projector = paper_pattern(PatternKind::Tbs);
        let mut pruned = self.net.clone();
        for li in 0..pruned.layer_count() - 1 {
            let w = pruned.weights(li).clone();
            let mask = projector.project(&w, sparsity);
            let quantized = QuantizedMatrix::quantize(&mask.apply(&w)).dequantize();
            pruned.set_weights(li, quantized);
            pruned.set_mask(li, Some(mask));
        }
        pruned.accuracy(&data.test_x, &data.test_y)
    }

    /// Prunes with a custom TBS block-size configuration (Fig. 15(a)).
    pub fn prune_and_eval_with_tbs(
        &self,
        data: &Dataset,
        tbs_config: &tbstc_sparsity::TbsConfig,
        criterion: Criterion,
        sparsity: f64,
    ) -> f64 {
        let projector = tbstc_sparsity::pattern::Tbs(tbs_config.clone());
        self.prune_and_eval_with(data, &projector, criterion, sparsity)
    }

    /// Prunes a copy of the teacher with `criterion` × `pattern` at
    /// `sparsity` and returns its test accuracy. Hidden layers are
    /// pruned; the classifier stays dense (matching the retraining
    /// protocol).
    pub fn prune_and_eval(
        &self,
        data: &Dataset,
        pattern: PatternKind,
        criterion: Criterion,
        sparsity: f64,
    ) -> f64 {
        let projector = paper_pattern(pattern);
        self.prune_and_eval_with(data, projector.as_ref(), criterion, sparsity)
    }

    /// Prunes with an explicit pattern projector.
    pub fn prune_and_eval_with(
        &self,
        data: &Dataset,
        projector: &dyn tbstc_sparsity::Pattern,
        criterion: Criterion,
        sparsity: f64,
    ) -> f64 {
        let mut pruned = self.net.clone();
        for li in 0..pruned.layer_count() - 1 {
            let w = pruned.weights(li).clone();
            let x = &self.calibration[li];
            match criterion {
                Criterion::Magnitude => {
                    let mask = projector.project(&w, sparsity);
                    pruned.set_mask(li, Some(mask));
                }
                Criterion::Wanda => {
                    let scores = wanda_scores(&w, &activation_norms(x));
                    let mask = projector.project(&scores, sparsity);
                    pruned.set_mask(li, Some(mask));
                }
                Criterion::SparseGpt => {
                    let gpt = SparseGpt::new(x, 0.01);
                    let mask = projector.project(&gpt.scores(&w), sparsity);
                    let updated = gpt.prune_with_update(&w, &mask);
                    pruned.set_weights(li, updated);
                    pruned.set_mask(li, Some(mask));
                }
            }
        }
        pruned.accuracy(&data.test_x, &data.test_y)
    }
}

/// A synthetic "pre-trained LLM" for the Table II protocol: an MLP whose
/// weights carry the block-local row/column structure of trained large
/// models (paper Fig. 17), evaluated by *agreement with its own dense
/// outputs* on held-out inputs — the analogue of perplexity against the
/// original model.
///
/// The dense model scores 100 % by construction; one-shot pruning
/// degrades agreement in proportion to how much functional weight mass
/// the pattern's mask destroys.
#[derive(Debug, Clone)]
pub struct SyntheticLlm {
    net: Mlp,
    calibration: Vec<Matrix>,
    eval_x: Matrix,
    eval_y: Vec<usize>,
}

impl SyntheticLlm {
    /// Builds the model with block-structured weights and samples its
    /// calibration and evaluation sets.
    pub fn new(features: usize, hidden: usize, classes: usize, eval_n: usize, seed: u64) -> Self {
        Self::with_contrast(features, hidden, classes, eval_n, seed, 2.0, 0.15)
    }

    /// [`SyntheticLlm::new`] with explicit lane-contrast parameters: lower
    /// contrast models weights whose importance is spread more evenly
    /// (smaller US-vs-structured accuracy gaps, as in large pre-trained
    /// models).
    pub fn with_contrast(
        features: usize,
        hidden: usize,
        classes: usize,
        eval_n: usize,
        seed: u64,
        heavy: f32,
        light: f32,
    ) -> Self {
        use tbstc_matrix::rng::MatrixRng;
        let mut rng = MatrixRng::seed_from(seed);
        let mut net = Mlp::new(
            &crate::net::MlpConfig {
                inputs: features,
                hidden: vec![hidden],
                classes,
                lr: 0.0,
                momentum: 0.0,
            },
            seed,
        );
        net.set_weights(
            0,
            rng.block_structured_weights_with(hidden, features, 8, heavy, light, 1.0),
        );
        net.set_weights(
            1,
            rng.block_structured_weights_with(classes, hidden, 8, heavy, light, 1.0),
        );

        let calib_x = rng.gaussian(64, features, 0.0, 1.0);
        let (_, calibration) = net.forward_cached(&calib_x);

        let eval_x = rng.gaussian(eval_n, features, 0.0, 1.0);
        let probs = net.forward(&eval_x);
        let eval_y = (0..eval_n)
            .map(|i| {
                probs
                    .row(i)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect();
        SyntheticLlm {
            net,
            calibration,
            eval_x,
            eval_y,
        }
    }

    /// Agreement of the dense model with itself (1.0 by construction).
    pub fn dense_accuracy(&self) -> f64 {
        self.net.accuracy(&self.eval_x, &self.eval_y)
    }

    /// One-shot prunes every weight layer (including the output head, as
    /// LLM pruning does) and returns agreement with the dense outputs.
    pub fn prune_and_eval(&self, pattern: PatternKind, criterion: Criterion, sparsity: f64) -> f64 {
        let projector = paper_pattern(pattern);
        let mut pruned = self.net.clone();
        for li in 0..pruned.layer_count() {
            let w = pruned.weights(li).clone();
            let x = &self.calibration[li];
            match criterion {
                Criterion::Magnitude => {
                    pruned.set_mask(li, Some(projector.project(&w, sparsity)));
                }
                Criterion::Wanda => {
                    let scores = wanda_scores(&w, &activation_norms(x));
                    pruned.set_mask(li, Some(projector.project(&scores, sparsity)));
                }
                Criterion::SparseGpt => {
                    let gpt = SparseGpt::new(x, 0.01);
                    let mask = projector.project(&gpt.scores(&w), sparsity);
                    let updated = gpt.prune_with_update(&w, &mask);
                    pruned.set_weights(li, updated);
                    pruned.set_mask(li, Some(mask));
                }
            }
        }
        pruned.accuracy(&self.eval_x, &self.eval_y)
    }

    /// One-shot prunes with a custom TBS block-size configuration and
    /// returns agreement with the dense outputs (Fig. 15(a)).
    pub fn prune_and_eval_with_tbs(
        &self,
        tbs_config: &tbstc_sparsity::TbsConfig,
        sparsity: f64,
    ) -> f64 {
        use tbstc_sparsity::Pattern as _;
        let projector = tbstc_sparsity::pattern::Tbs(tbs_config.clone());
        let mut pruned = self.net.clone();
        for li in 0..pruned.layer_count() {
            let w = pruned.weights(li).clone();
            let scores = wanda_scores(&w, &activation_norms(&self.calibration[li]));
            pruned.set_mask(li, Some(projector.project(&scores, sparsity)));
        }
        pruned.accuracy(&self.eval_x, &self.eval_y)
    }

    /// TBS-prunes then int8-quantizes the weights ("Q+S", Fig. 15(b)).
    pub fn prune_quantize_and_eval(&self, sparsity: f64) -> f64 {
        use tbstc_matrix::quant::QuantizedMatrix;
        let projector = paper_pattern(PatternKind::Tbs);
        let mut pruned = self.net.clone();
        for li in 0..pruned.layer_count() {
            let w = pruned.weights(li).clone();
            let scores = wanda_scores(&w, &activation_norms(&self.calibration[li]));
            let mask = projector.project(&scores, sparsity);
            pruned.set_weights(li, QuantizedMatrix::quantize(&mask.apply(&w)).dequantize());
            pruned.set_mask(li, Some(mask));
        }
        pruned.accuracy(&self.eval_x, &self.eval_y)
    }

    /// TBS-prunes (without quantization) with the same Wanda criterion,
    /// the "S" baseline for Fig. 15(b).
    pub fn prune_sparse_only(&self, sparsity: f64) -> f64 {
        self.prune_and_eval(PatternKind::Tbs, Criterion::Wanda, sparsity)
    }

    /// Runs the Table II grid (both criteria, all sparse patterns).
    pub fn one_shot_table(&self, sparsity: f64) -> Vec<OneShotRow> {
        PatternKind::SPARSE
            .iter()
            .map(|&pattern| OneShotRow {
                pattern,
                wanda: self.prune_and_eval(pattern, Criterion::Wanda, sparsity),
                sparsegpt: self.prune_and_eval(pattern, Criterion::SparseGpt, sparsity),
            })
            .collect()
    }
}

/// One row of the Table II grid: a pattern's accuracy under both one-shot
/// criteria.
#[derive(Debug, Clone, PartialEq)]
pub struct OneShotRow {
    /// Pattern evaluated.
    pub pattern: PatternKind,
    /// Accuracy with the Wanda criterion.
    pub wanda: f64,
    /// Accuracy with the SparseGPT criterion.
    pub sparsegpt: f64,
}

/// Runs the full Table II grid at 50 % sparsity on one dataset.
pub fn one_shot_table(data: &Dataset, teacher: &Teacher, sparsity: f64) -> Vec<OneShotRow> {
    PatternKind::SPARSE
        .iter()
        .map(|&pattern| OneShotRow {
            pattern,
            wanda: teacher.prune_and_eval(data, pattern, Criterion::Wanda, sparsity),
            sparsegpt: teacher.prune_and_eval(data, pattern, Criterion::SparseGpt, sparsity),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dataset, Teacher) {
        let data = Dataset::gaussian_mixture(32, 4, 384, 192, 0.35, 17);
        let teacher = Teacher::train(&data, 15, 3);
        (data, teacher)
    }

    #[test]
    fn teacher_learns() {
        let (data, teacher) = setup();
        assert!(teacher.dense_accuracy(&data) > 0.75);
    }

    #[test]
    fn pruned_accuracy_below_dense_but_above_chance() {
        let (data, teacher) = setup();
        let dense = teacher.dense_accuracy(&data);
        for pattern in [PatternKind::Unstructured, PatternKind::Tbs] {
            let acc = teacher.prune_and_eval(&data, pattern, Criterion::Wanda, 0.5);
            assert!(acc <= dense + 0.05, "{pattern}: {acc} vs dense {dense}");
            assert!(acc > 0.4, "{pattern}: {acc}");
        }
    }

    #[test]
    fn unstructured_at_least_as_good_as_tile() {
        // The core Table II ordering at its endpoints.
        let (data, teacher) = setup();
        let us = teacher.prune_and_eval(&data, PatternKind::Unstructured, Criterion::Wanda, 0.5);
        let ts = teacher.prune_and_eval(&data, PatternKind::TileNm, Criterion::Wanda, 0.5);
        assert!(us >= ts - 0.02, "US {us} vs TS {ts}");
    }

    #[test]
    fn sparsegpt_update_helps_over_plain_masking() {
        // SparseGPT's weight update should not hurt (usually helps).
        let (data, teacher) = setup();
        let plain = teacher.prune_and_eval(&data, PatternKind::Tbs, Criterion::Magnitude, 0.6);
        let gpt = teacher.prune_and_eval(&data, PatternKind::Tbs, Criterion::SparseGpt, 0.6);
        assert!(gpt >= plain - 0.06, "SparseGPT {gpt} vs magnitude {plain}");
    }

    #[test]
    fn table_covers_all_sparse_patterns() {
        let (data, teacher) = setup();
        let rows = one_shot_table(&data, &teacher, 0.5);
        assert_eq!(rows.len(), PatternKind::SPARSE.len());
        assert!(rows.iter().all(|r| r.wanda > 0.0 && r.sparsegpt > 0.0));
    }
}
