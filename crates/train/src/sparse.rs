//! End-to-end sparse training (paper §III-B1).
//!
//! The paper trains sparse models from scratch: dense weights are kept
//! throughout; each epoch the pattern projection recomputes the mask from
//! the current weights at the target sparsity ("the learnable mask ...
//! these weights are as close as possible after training"); forward and
//! backward run with the masked weights while gradients flow straight
//! through to the dense copies.

use tbstc_sparsity::pattern::paper_pattern;
use tbstc_sparsity::PatternKind;

use crate::data::Dataset;
use crate::net::{Mlp, MlpConfig};

/// Sparse-training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Network shape and optimizer settings.
    pub net: MlpConfig,
    /// Epoch count (the paper compares patterns at equal epochs).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Target sparsity degree for prunable layers.
    pub sparsity: f64,
    /// Pattern used for the mask projection.
    pub pattern: PatternKind,
    /// Seed for initialization.
    pub seed: u64,
}

impl TrainConfig {
    /// A default configuration for the synthetic accuracy experiments.
    pub fn new(dataset: &Dataset, pattern: PatternKind, sparsity: f64, seed: u64) -> Self {
        TrainConfig {
            net: MlpConfig::small(dataset.features(), dataset.classes),
            epochs: 20,
            batch: 32,
            sparsity,
            pattern,
            seed,
        }
    }
}

/// Per-epoch measurements (Fig. 18 loss curves).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainRecord {
    /// Mean training loss per epoch.
    pub losses: Vec<f64>,
    /// Mask sparsity per epoch (Fig. 18 also plots the sparsity ramp).
    pub sparsities: Vec<f64>,
    /// Final held-out accuracy.
    pub test_accuracy: f64,
}

/// Runs the end-to-end sparse-training flow and evaluates on the test
/// split.
#[derive(Debug)]
pub struct SparseTrainer {
    config: TrainConfig,
}

impl SparseTrainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        SparseTrainer { config }
    }

    /// Trains on `data` and returns the record. The mask is re-projected
    /// from the current dense weights at every epoch; the final
    /// classifier layer stays dense (the paper keeps stem/classifier
    /// layers dense).
    pub fn train(&self, data: &Dataset) -> TrainRecord {
        let cfg = &self.config;
        let mut net = Mlp::new(&cfg.net, cfg.seed);
        let pattern = paper_pattern(cfg.pattern);
        // Sparsity ramps up over the first third of training (the paper's
        // schedule increases sparsity progressively, Fig. 18).
        let ramp_epochs = (cfg.epochs / 3).max(1);

        // Masks are re-projected while the sparsity ramps and for a short
        // stabilization window, then frozen: the paper's learnable masks
        // converge ("these weights are as close as possible after
        // training"), and per-epoch churn late in training destroys the
        // adaptation the remaining weights have built.
        let freeze_after = (ramp_epochs + (cfg.epochs - ramp_epochs) / 3).max(1);

        let mut losses = Vec::with_capacity(cfg.epochs);
        let mut sparsities = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let ramp = ((epoch + 1) as f64 / ramp_epochs as f64).min(1.0);
            let target = cfg.sparsity * ramp;
            // Re-project masks from the current dense weights, final
            // classifier layer excluded; after the freeze point the mask
            // is kept.
            let mut mask_sparsity = 0.0;
            let mut masked_elems = 0usize;
            for li in 0..net.layer_count() - 1 {
                if epoch <= freeze_after {
                    let mask = pattern.project(net.weights(li), target);
                    net.set_mask(li, Some(mask));
                }
                let mask = net.mask(li).cloned().unwrap_or_else(|| {
                    tbstc_sparsity::Mask::all(net.weights(li).rows(), net.weights(li).cols())
                });
                mask_sparsity += mask.sparsity() * mask.len() as f64;
                masked_elems += mask.len();
            }
            sparsities.push(if masked_elems == 0 {
                0.0
            } else {
                mask_sparsity / masked_elems as f64
            });

            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for (x, y) in data.batches(cfg.batch) {
                epoch_loss += net.train_batch(&x, &y);
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f64);
        }

        TrainRecord {
            losses,
            sparsities,
            test_accuracy: net.accuracy(&data.test_x, &data.test_y),
        }
    }
}

/// Trains every pattern of [`PatternKind::SPARSE`] plus dense on the same
/// dataset/seed and returns `(kind, accuracy)` rows — the Table I
/// protocol ("we apply US, TS, RS-V, RS-H, and TBS to the training
/// process with the same epochs").
pub fn accuracy_table(data: &Dataset, sparsity: f64, seed: u64) -> Vec<(PatternKind, f64)> {
    PatternKind::ALL
        .iter()
        .map(|&kind| {
            let cfg = TrainConfig::new(data, kind, sparsity, seed);
            let rec = SparseTrainer::new(cfg).train(data);
            (kind, rec.test_accuracy)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::gaussian_mixture(32, 4, 256, 128, 0.35, 11)
    }

    fn quick_cfg(pattern: PatternKind, sparsity: f64) -> TrainConfig {
        let d = dataset();
        let mut cfg = TrainConfig::new(&d, pattern, sparsity, 1);
        cfg.epochs = 12;
        cfg
    }

    #[test]
    fn dense_training_converges() {
        let d = dataset();
        let rec = SparseTrainer::new(quick_cfg(PatternKind::Dense, 0.0)).train(&d);
        assert!(rec.test_accuracy > 0.7, "{}", rec.test_accuracy);
        assert!(rec.losses.last().unwrap() < &rec.losses[0]);
    }

    #[test]
    fn sparsity_ramps_to_target() {
        let d = dataset();
        let rec = SparseTrainer::new(quick_cfg(PatternKind::Tbs, 0.75)).train(&d);
        let final_s = *rec.sparsities.last().unwrap();
        assert!((final_s - 0.75).abs() < 0.06, "{final_s}");
        assert!(rec.sparsities[0] < final_s, "ramp starts below target");
    }

    #[test]
    fn tbs_training_stays_close_to_dense_loss() {
        // Fig. 18: TBS training achieves almost the same loss as dense.
        let d = dataset();
        let dense = SparseTrainer::new(quick_cfg(PatternKind::Dense, 0.0)).train(&d);
        let tbs = SparseTrainer::new(quick_cfg(PatternKind::Tbs, 0.5)).train(&d);
        let dl = *dense.losses.last().unwrap();
        let tl = *tbs.losses.last().unwrap();
        assert!(tl < dl + 0.35, "TBS loss {tl} vs dense {dl}");
    }

    #[test]
    fn sparse_training_beats_chance() {
        let d = dataset();
        for kind in [
            PatternKind::Unstructured,
            PatternKind::Tbs,
            PatternKind::TileNm,
        ] {
            let rec = SparseTrainer::new(quick_cfg(kind, 0.5)).train(&d);
            assert!(rec.test_accuracy > 0.5, "{kind}: {}", rec.test_accuracy);
        }
    }

    #[test]
    fn records_have_one_entry_per_epoch() {
        let d = dataset();
        let cfg = quick_cfg(PatternKind::Tbs, 0.5);
        let epochs = cfg.epochs;
        let rec = SparseTrainer::new(cfg).train(&d);
        assert_eq!(rec.losses.len(), epochs);
        assert_eq!(rec.sparsities.len(), epochs);
    }
}
