//! The optimized training stack must reproduce the pre-optimization
//! ("seed") implementation's loss trajectory exactly.
//!
//! `RefMlp` below re-implements the seed's arithmetic verbatim on public
//! APIs: effective weights materialized by `Mask::apply`/`clone`, forward
//! as `matmul(x, wᵀ)`, gradients through owned `transpose` + `matmul`, and
//! index-loop SGD updates. The optimized kernels were designed to keep the
//! same accumulation order, so the comparison is exact (`==`), not
//! approximate.

use tbstc_matrix::gemm;
use tbstc_matrix::rng::MatrixRng;
use tbstc_matrix::Matrix;
use tbstc_sparsity::pattern::paper_pattern;
use tbstc_sparsity::{Mask, PatternKind};
use tbstc_train::{Dataset, Mlp, MlpConfig};

struct RefLinear {
    w: Matrix,
    b: Vec<f32>,
    vw: Matrix,
    vb: Vec<f32>,
    mask: Option<Mask>,
}

impl RefLinear {
    fn new(inputs: usize, outputs: usize, rng: &mut MatrixRng) -> Self {
        RefLinear {
            w: rng.weights(outputs, inputs),
            b: vec![0.0; outputs],
            vw: Matrix::zeros(outputs, inputs),
            vb: vec![0.0; outputs],
            mask: None,
        }
    }

    fn effective_w(&self) -> Matrix {
        match &self.mask {
            Some(m) => m.apply(&self.w),
            None => self.w.clone(),
        }
    }

    fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = gemm::matmul(x, &self.effective_w().transpose());
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                h[(r, c)] += self.b[c];
            }
        }
        h
    }

    fn backward_update(&mut self, x: &Matrix, dh: &Matrix, lr: f32, momentum: f32) -> Matrix {
        let n = x.rows().max(1) as f32;
        let dw = gemm::matmul(&dh.transpose(), x).map(|g| g / n);
        let dx = gemm::matmul(dh, &self.effective_w());
        for c in 0..self.b.len() {
            let db: f32 = (0..dh.rows()).map(|r| dh[(r, c)]).sum::<f32>() / n;
            self.vb[c] = momentum * self.vb[c] - lr * db;
            self.b[c] += self.vb[c];
        }
        for r in 0..self.w.rows() {
            for c in 0..self.w.cols() {
                self.vw[(r, c)] = momentum * self.vw[(r, c)] - lr * dw[(r, c)];
                self.w[(r, c)] += self.vw[(r, c)];
            }
        }
        dx
    }
}

struct RefMlp {
    layers: Vec<RefLinear>,
    lr: f32,
    momentum: f32,
}

impl RefMlp {
    fn new(cfg: &MlpConfig, seed: u64) -> Self {
        let mut rng = MatrixRng::seed_from(seed);
        let mut dims = vec![cfg.inputs];
        dims.extend(&cfg.hidden);
        dims.push(cfg.classes);
        let layers = dims
            .windows(2)
            .map(|w| RefLinear::new(w[0], w[1], &mut rng))
            .collect();
        RefMlp {
            layers,
            lr: cfg.lr,
            momentum: cfg.momentum,
        }
    }

    fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<Matrix>) {
        let mut acts = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            acts.push(h.clone());
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h.map_inplace(|v| v.max(0.0));
            }
        }
        (softmax_rows(&h), acts)
    }

    fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> f64 {
        let (probs, acts) = self.forward_cached(x);
        let n = x.rows();
        let mut loss = 0.0f64;
        let mut grad = probs.clone();
        for (i, &y) in labels.iter().enumerate() {
            loss -= f64::from(probs[(i, y)].max(1e-12).ln());
            grad[(i, y)] -= 1.0;
        }
        loss /= n as f64;

        for li in (0..self.layers.len()).rev() {
            let x_in = &acts[li];
            let (lr, mom) = (self.lr, self.momentum);
            let mut dx = self.layers[li].backward_update(x_in, &grad, lr, mom);
            if li > 0 {
                for r in 0..dx.rows() {
                    for c in 0..dx.cols() {
                        if acts[li][(r, c)] <= 0.0 {
                            dx[(r, c)] = 0.0;
                        }
                    }
                }
            }
            grad = dx;
        }
        loss
    }
}

fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum.max(1e-12);
        }
    }
    out
}

#[test]
fn masked_training_reproduces_seed_loss_trajectory() {
    let cfg = MlpConfig::small(16, 4);
    let d = Dataset::gaussian_mixture(16, 4, 128, 64, 0.35, 3);
    let mut net = Mlp::new(&cfg, 7);
    let mut reference = RefMlp::new(&cfg, 7);
    let pattern = paper_pattern(PatternKind::Tbs);

    for epoch in 0..3 {
        // Re-project TBS masks from the current dense weights, exactly as
        // SparseTrainer does during the sparsity ramp. Both nets must see
        // identical weights, hence identical masks.
        for li in 0..net.layer_count() - 1 {
            let mask = pattern.project(net.weights(li), 0.6);
            let ref_mask = pattern.project(&reference.layers[li].w, 0.6);
            assert_eq!(
                mask, ref_mask,
                "epoch {epoch} layer {li}: dense weights diverged before masking"
            );
            net.set_mask(li, Some(mask.clone()));
            reference.layers[li].mask = Some(mask);
        }
        for (bi, (x, y)) in d.batches(32).enumerate() {
            let loss_opt = net.train_batch(&x, &y);
            let loss_ref = reference.train_batch(&x, &y);
            assert_eq!(
                loss_opt.to_bits(),
                loss_ref.to_bits(),
                "epoch {epoch} batch {bi}: {loss_opt} vs {loss_ref}"
            );
        }
    }

    for li in 0..net.layer_count() {
        assert_eq!(
            *net.weights(li),
            reference.layers[li].w,
            "layer {li}: weights diverged after training"
        );
    }
}

#[test]
fn dense_training_reproduces_seed_loss_trajectory() {
    let cfg = MlpConfig::small(12, 3);
    let d = Dataset::gaussian_mixture(12, 3, 96, 48, 0.3, 5);
    let mut net = Mlp::new(&cfg, 11);
    let mut reference = RefMlp::new(&cfg, 11);

    for (bi, (x, y)) in d.batches(24).enumerate() {
        let loss_opt = net.train_batch(&x, &y);
        let loss_ref = reference.train_batch(&x, &y);
        assert_eq!(
            loss_opt.to_bits(),
            loss_ref.to_bits(),
            "batch {bi}: {loss_opt} vs {loss_ref}"
        );
    }
}
