//! Counting-allocator proof that the training hot path is allocation-free
//! in steady state.
//!
//! The library crates forbid `unsafe`, so the `GlobalAlloc` shim lives in
//! this integration test. The counter only tracks `alloc`/`realloc` on the
//! test thread; frees are irrelevant to the "no per-call heap allocation"
//! acceptance criterion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tbstc_matrix::Matrix;
use tbstc_sparsity::Mask;
use tbstc_train::{Mlp, MlpConfig};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// `try_with` instead of `with`: the allocator runs during TLS teardown too,
// where touching a destroyed thread-local would abort the process.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn masked_net(seed: u64) -> Mlp {
    let mut net = Mlp::new(&MlpConfig::small(16, 4), seed);
    let shape = net.weights(0).shape();
    net.set_mask(
        0,
        Some(Mask::from_fn(shape.0, shape.1, |r, c| (r + c) % 2 == 0)),
    );
    net
}

#[test]
fn forward_steady_state_allocates_nothing() {
    let mut net = masked_net(1);
    let x = Matrix::filled(8, 16, 0.5);
    let mut out = Matrix::zeros(0, 0);
    // Warm-up: scratch buffers grow and the masked-weight cache fills.
    net.forward_into(&x, &mut out);
    net.forward_into(&x, &mut out);
    let before = allocations();
    net.forward_into(&x, &mut out);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state forward_into allocated {} times",
        after - before
    );
}

#[test]
fn train_step_steady_state_allocates_nothing() {
    let mut net = masked_net(2);
    let x = Matrix::from_fn(8, 16, |r, c| ((r * 16 + c) % 7) as f32 * 0.1 - 0.3);
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    // Warm-up: grows every scratch buffer (including the GEMM pack panel)
    // and leaves the effective-weight cache dirty exactly as a steady-state
    // step would.
    net.train_batch(&x, &labels);
    net.train_batch(&x, &labels);
    let before = allocations();
    net.train_batch(&x, &labels);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state train_batch allocated {} times",
        after - before
    );
}
