//! Shared reporting helpers for the table/figure benchmark harness.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper's evaluation section (see DESIGN.md for the index) and prints
//! the same rows/series the paper reports, followed by a
//! paper-vs-measured comparison line for each headline number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod perf;

/// Prints a banner naming the experiment being regenerated.
pub fn banner(id: &str, title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{id}: {title}");
    println!("{}", "=".repeat(74));
}

/// Prints a section divider.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Prints a paper-vs-measured comparison line. `within` is a free-text
/// note on whether the shape holds.
pub fn paper_vs_measured(claim: &str, paper: f64, measured: f64) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!(
        "  [paper-vs-measured] {claim}: paper {paper:.3}, measured {measured:.3} (x{ratio:.2} of paper)"
    );
}

/// Formats a slice of `(label, value)` pairs as one aligned row.
pub fn print_row(label: &str, values: &[f64], width: usize, precision: usize) {
    print!("  {label:<16}");
    for v in values {
        print!("{v:>width$.precision$}");
    }
    println!();
}

/// Geometric mean re-export for the harnesses.
pub use tbstc::experiments::geomean;

use tbstc::prelude::*;
use tbstc::sparsity::PatternKind;

/// The calibrated capacity-bound proxy task used by the accuracy
/// harnesses: a teacher–student dataset (see
/// `Dataset::teacher_student`) whose teacher has 96 hidden units over
/// 128 features.
pub fn proxy_task(classes: usize, seed: u64) -> Dataset {
    Dataset::teacher_student(128, classes, 96, 2048, 2048, seed)
}

/// The student training configuration matched to [`proxy_task`].
pub fn student_config(
    data: &Dataset,
    pattern: PatternKind,
    sparsity: f64,
    seed: u64,
) -> TrainConfig {
    let mut cfg = TrainConfig::new(data, pattern, sparsity, seed);
    cfg.net.hidden = vec![96];
    cfg.epochs = 25;
    cfg
}

#[cfg(test)]
mod tests {
    #[test]
    fn geomean_is_reexported() {
        assert!((super::geomean(&[4.0, 1.0]).unwrap() - 2.0).abs() < 1e-12);
    }
}
