//! An event-driven HTTP load generator for `tbstc-serve`.
//!
//! The generator drives N keep-alive connections against a running
//! server from a single thread, using the same `poll(2)` readiness
//! shim the server's own event loop is built on
//! ([`tbstc_serve::poll_fds`]). Each connection runs a closed loop —
//! write one job submission, read the full response, submit the next —
//! so concurrency equals the connection count and per-request latency
//! is measured end to end (first request byte written → last response
//! byte read).
//!
//! Request popularity is zipfian over a configurable universe of
//! distinct job specs: a handful of hot specs dominate (exercising the
//! in-memory hot tier and single-flight coalescing) while the tail
//! stays cold (exercising execution and the disk tier). The RNG is a
//! seeded xorshift64* so a given `(seed, connections, requests)`
//! triple replays the identical request sequence.
//!
//! The report carries throughput (requests per second), the p50/p99/
//! p999 latency percentiles, the failure count, and the observed cache
//! hit rate. `tbstc-cli loadgen` wraps this as a subcommand; the perf
//! harness uses it for the `serve_*` and `loadgen_*` numbers in
//! `BENCH_PR7.json`.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use tbstc::Error;
use tbstc_serve::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};

/// Knobs for one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:8841`.
    pub addr: String,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Distinct job specs in the popularity universe.
    pub distinct_specs: usize,
    /// Zipf exponent (1.0–1.3 is web-like; higher = more skew).
    pub zipf_exponent: f64,
    /// RNG seed; the full request sequence is a function of it.
    pub seed: u64,
    /// Safety deadline for the whole run.
    pub deadline: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            connections: 64,
            requests: 512,
            distinct_specs: 16,
            zipf_exponent: 1.1,
            seed: 1,
            deadline: Duration::from_secs(120),
        }
    }
}

/// The measured outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Connections the run drove.
    pub connections: usize,
    /// Requests that completed with HTTP 200.
    pub completed: usize,
    /// Requests that failed (non-200, transport error, or never issued
    /// before the deadline/connection loss).
    pub failed: usize,
    /// Wall-clock seconds from first byte written to last response.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub rps: f64,
    /// Median end-to-end latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Fraction of completed requests answered `X-Cache: hit`.
    pub hit_rate: f64,
}

impl LoadReport {
    /// Hand-rolled JSON encoding (the workspace carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"connections\": {},\n  \"completed\": {},\n  \"failed\": {},\n  \"elapsed_s\": {:.3},\n  \"rps\": {:.2},\n  \"p50_us\": {:.1},\n  \"p99_us\": {:.1},\n  \"p999_us\": {:.1},\n  \"hit_rate\": {:.4}\n}}\n",
            self.connections,
            self.completed,
            self.failed,
            self.elapsed_s,
            self.rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.hit_rate,
        )
    }
}

/// Deterministic xorshift64* generator (Vigna 2016) — tiny, seedable,
/// and plenty for popularity sampling.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seeds the generator; a zero seed is remapped so the state never
    /// sticks at the all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipfian popularity over ranks `0..n`: rank `i` has weight
/// `1/(i+1)^s`. Sampling is a binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the CDF for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Maps a uniform draw to a rank.
    pub fn sample(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.cdf.len().saturating_sub(1))
    }
}

/// The job spec submitted for popularity rank `rank`: identical shape,
/// distinct seed, so every rank is a distinct cache key with identical
/// execution cost.
pub fn spec_for_rank(rank: usize) -> String {
    format!(
        r#"{{"type":"simulate","arch":"tb-stc","model":{{"kind":"gcn","nodes":64,"features":16}},"sparsity":0.5,"seed":{rank}}}"#
    )
}

/// Incremental client-side response parser: status line + headers +
/// `Content-Length` body, keep-alive framing.
#[derive(Debug, Default)]
struct RespParser {
    buf: Vec<u8>,
    scanned: usize,
}

/// What one parsed response contributes to the tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RespSummary {
    status: u16,
    cache_hit: bool,
}

impl RespParser {
    fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete response off the buffer, if one has
    /// fully arrived. Malformed heads are reported as status 0.
    fn next(&mut self) -> Option<RespSummary> {
        let from = self.scanned.saturating_sub(3);
        let rel = self
            .buf
            .get(from..)?
            .windows(4)
            .position(|w| w == b"\r\n\r\n");
        let Some(rel) = rel else {
            self.scanned = self.buf.len();
            return None;
        };
        let head_end = from + rel;
        let head = String::from_utf8_lossy(self.buf.get(..head_end)?).to_string();
        let mut lines = head.split("\r\n");
        let status = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse::<u16>().ok())
            .unwrap_or(0);
        let mut content_length = 0usize;
        let mut cache_hit = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            } else if name == "x-cache" {
                cache_hit = value == "hit";
            }
        }
        let total = head_end + 4 + content_length;
        if self.buf.len() < total {
            self.scanned = head_end; // re-find the terminator cheaply
            return None;
        }
        self.buf.drain(..total);
        self.scanned = 0;
        Some(RespSummary { status, cache_hit })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    /// Writing the current request.
    Writing,
    /// Request fully written; reading the response.
    Reading,
    /// Request budget exhausted; connection retired.
    Done,
    /// Transport failure; connection abandoned.
    Dead,
}

/// One keep-alive connection's state machine.
struct Client {
    stream: TcpStream,
    state: ClientState,
    out: Vec<u8>,
    out_pos: usize,
    parser: RespParser,
    started: Instant,
}

impl Client {
    fn begin_request(&mut self, addr: &str, body: &str) {
        self.out.clear();
        self.out.extend_from_slice(
            format!(
                "POST /v1/jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
        self.out_pos = 0;
        self.state = ClientState::Writing;
        self.started = Instant::now();
    }
}

/// Runs the load against a live server and tallies the results.
///
/// # Errors
///
/// [`Error::Io`] when the initial connection ramp fails outright; mid-
/// run transport failures are tallied as failed requests instead.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, Error> {
    let connections = cfg.connections.max(1);
    let target = cfg.requests;
    let zipf = Zipf::new(cfg.distinct_specs.max(1), cfg.zipf_exponent);
    let mut rng = XorShift64Star::new(cfg.seed);
    let specs: Vec<String> = (0..cfg.distinct_specs.max(1)).map(spec_for_rank).collect();

    // Connection ramp: plain blocking connects, with a short breather
    // every batch so the accept queue never overflows while the server
    // thread shares the CPU with us.
    let mut clients: Vec<Client> = Vec::with_capacity(connections);
    for i in 0..connections {
        let stream = TcpStream::connect(&cfg.addr)
            .map_err(|e| Error::Io(format!("loadgen connect #{i} to {} failed: {e}", cfg.addr)))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| Error::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        clients.push(Client {
            stream,
            state: ClientState::Done,
            out: Vec::with_capacity(512),
            out_pos: 0,
            parser: RespParser::default(),
            started: Instant::now(),
        });
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let mut issued = 0usize;
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut hits = 0usize;
    let mut latencies_us: Vec<f64> = Vec::with_capacity(target);

    // Prime every connection with its first request.
    for client in &mut clients {
        if issued >= target {
            break;
        }
        let rank = zipf.sample(rng.next_f64());
        let body = specs.get(rank).map(String::as_str).unwrap_or("{}");
        client.begin_request(&cfg.addr, body);
        issued += 1;
    }

    let t0 = Instant::now();
    let deadline = t0 + cfg.deadline;
    let mut fds: Vec<PollFd> = Vec::with_capacity(connections);
    let mut idxs: Vec<usize> = Vec::with_capacity(connections);

    while completed + failed < target && Instant::now() < deadline {
        fds.clear();
        idxs.clear();
        for (i, client) in clients.iter().enumerate() {
            let events = match client.state {
                ClientState::Writing => POLLOUT,
                ClientState::Reading => POLLIN,
                ClientState::Done | ClientState::Dead => continue,
            };
            fds.push(PollFd::new(client.stream.as_raw_fd(), events));
            idxs.push(i);
        }
        if fds.is_empty() {
            break; // every connection dead or retired with budget left
        }
        if poll_fds(&mut fds, 100).is_err() {
            break;
        }

        for (entry, &i) in fds.iter().zip(idxs.iter()) {
            if entry.revents == 0 {
                continue;
            }
            let Some(client) = clients.get_mut(i) else {
                continue;
            };
            if entry.revents & POLLOUT != 0 && client.state == ClientState::Writing {
                while let Some(rest) = client.out.get(client.out_pos..) {
                    if rest.is_empty() {
                        client.state = ClientState::Reading;
                        break;
                    }
                    match (&client.stream).write(rest) {
                        Ok(0) => {
                            client.state = ClientState::Dead;
                            failed += 1;
                            break;
                        }
                        Ok(n) => client.out_pos += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            client.state = ClientState::Dead;
                            failed += 1;
                            break;
                        }
                    }
                }
            }
            if entry.revents & (POLLIN | POLLERR | POLLHUP) != 0
                && client.state == ClientState::Reading
            {
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match (&client.stream).read(&mut chunk) {
                        Ok(0) => {
                            client.state = ClientState::Dead;
                            failed += 1;
                            break;
                        }
                        Ok(n) => {
                            client.parser.feed(chunk.get(..n).unwrap_or(&[]));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            client.state = ClientState::Dead;
                            failed += 1;
                            break;
                        }
                    }
                }
                if client.state == ClientState::Reading {
                    if let Some(resp) = client.parser.next() {
                        let waited_us = client.started.elapsed().as_secs_f64() * 1e6;
                        if resp.status == 200 {
                            completed += 1;
                            latencies_us.push(waited_us);
                            if resp.cache_hit {
                                hits += 1;
                            }
                        } else {
                            failed += 1;
                        }
                        if issued < target {
                            let rank = zipf.sample(rng.next_f64());
                            let body = specs.get(rank).map(String::as_str).unwrap_or("{}");
                            client.begin_request(&cfg.addr, body);
                            issued += 1;
                        } else {
                            client.state = ClientState::Done;
                        }
                    }
                }
            }
        }
    }

    let elapsed_s = t0.elapsed().as_secs_f64().max(1e-9);
    // Budget that never completed (dead connections, deadline) counts
    // as failed so `failed == 0` certifies a fully clean run.
    failed += target.saturating_sub(completed + failed);

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(LoadReport {
        connections,
        completed,
        failed,
        elapsed_s,
        rps: completed as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        p999_us: percentile(&latencies_us, 0.999),
        hit_rate: hits as f64 / completed.max(1) as f64,
    })
}

/// Nearest-rank percentile over a sorted slice (`p` in `[0, 1]`).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted.get(idx).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniformish() {
        let mut a = XorShift64Star::new(7);
        let mut b = XorShift64Star::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same sequence");
        let mut c = XorShift64Star::new(0);
        let mean: f64 = (0..4096).map(|_| c.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn zipf_favors_low_ranks_and_covers_the_tail() {
        let zipf = Zipf::new(16, 1.1);
        let mut rng = XorShift64Star::new(3);
        let mut counts = vec![0usize; 16];
        for _ in 0..8192 {
            counts[zipf.sample(rng.next_f64())] += 1;
        }
        assert!(
            counts[0] > counts[8] && counts[0] > counts[15],
            "rank 0 must dominate: {counts:?}"
        );
        assert!(
            counts.iter().filter(|&&c| c > 0).count() >= 12,
            "the tail must still be sampled: {counts:?}"
        );
        // CDF is monotone and ends at 1.
        assert!(zipf.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((zipf.cdf.last().copied().unwrap_or(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=101).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 101.0);
        assert_eq!(percentile(&xs, 0.50), 51.0, "odd count: exact median");
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn parser_handles_split_and_back_to_back_responses() {
        let mut p = RespParser::default();
        let one = b"HTTP/1.1 200 OK\r\nX-Cache: hit\r\nContent-Length: 4\r\n\r\nbody";
        let two = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 0\r\n\r\n";
        // Feed the first response in two fragments spanning the
        // terminator, then the second back to back.
        p.feed(&one[..20]);
        assert_eq!(p.next(), None);
        p.feed(&one[20..]);
        p.feed(two);
        assert_eq!(
            p.next(),
            Some(RespSummary {
                status: 200,
                cache_hit: true
            })
        );
        assert_eq!(
            p.next(),
            Some(RespSummary {
                status: 429,
                cache_hit: false
            })
        );
        assert_eq!(p.next(), None);
    }

    #[test]
    fn loadgen_drives_a_live_server_cleanly() {
        let dir = std::env::temp_dir().join(format!("tbstc-loadgen-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let running = tbstc_serve::Server::bind(tbstc_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: dir.clone(),
            quiet: true,
            ..tbstc_serve::ServeConfig::default()
        })
        .expect("bind")
        .spawn()
        .expect("spawn");

        let report = run(&LoadgenConfig {
            addr: running.addr.to_string(),
            connections: 8,
            requests: 96,
            distinct_specs: 4,
            zipf_exponent: 1.1,
            seed: 1,
            ..LoadgenConfig::default()
        })
        .expect("loadgen run");

        assert_eq!(report.completed, 96, "every request completes");
        assert_eq!(report.failed, 0, "no failures: {report:?}");
        assert!(report.rps > 0.0);
        assert!(report.p50_us > 0.0 && report.p50_us <= report.p99_us);
        assert!(report.p99_us <= report.p999_us);
        assert!(
            report.hit_rate >= 0.5,
            "4 distinct specs over 96 requests must mostly hit: {}",
            report.hit_rate
        );
        let json = report.to_json();
        assert!(json.contains("\"p999_us\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        running.shutdown_and_join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
