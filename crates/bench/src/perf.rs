//! Wall-clock performance harness for the hot-path and serve work.
//!
//! Times the three numeric hot paths — the training step, Algorithm-1
//! sparsification and the layer simulation — and compares the optimized
//! training step against [`reference`], a faithful re-implementation of
//! the pre-optimization ("seed") trainer: effective weights cloned and
//! transposed per call, gradients through owned `transpose` + `matmul`,
//! index-loop SGD updates, fresh allocations everywhere. A loopback run
//! against `tbstc-serve` adds end-to-end server throughput and the cache
//! hit rate. A per-architecture `simulate_layer` sweep times the full
//! pipeline once per registry entry, so registry-dispatch regressions show
//! up per baseline. The simulation measurements run on a pre-built
//! [`SparseLayer`] (every measurement gets a warm-up call before timing),
//! so they isolate the simulation core from weight generation and
//! pruning; sparsification has its own measurement, and the
//! `BlockPlan` build cost is reported separately as `plan_build_us`. A
//! full `tbstc-lint` workspace run is timed twice — cold (no cache) and
//! against a pre-warmed incremental cache (`lint_warm_us`) — so both the
//! analysis pass and the cache's payoff stay visible to CI.
//!
//! The serve numbers come from the event-driven load generator
//! ([`crate::loadgen`]): a small fixed load (the `serve_*` keys, kept
//! name-compatible with earlier reports) plus a standing high-
//! concurrency zipfian run (the `loadgen_*` keys — 1k keep-alive
//! connections by default) that exercises the event loop, coalescing,
//! and both cache tiers at once. A spec-interpretation measurement runs
//! the same layer simulation through [`tbstc::sim::CustomArch`] built
//! from the bundled TB-STC `tbstc.v1` document, and reports its ratio
//! against the native module — the declarative path must stay within
//! 1.25× of native. The report is written as JSON (hand-rolled; the
//! workspace is offline and carries no serde) to `BENCH_PR10.json`.

use std::time::Instant;

use crate::loadgen::{self, LoadReport, LoadgenConfig};

use tbstc::matrix::gemm;
use tbstc::matrix::pool;
use tbstc::matrix::rng::MatrixRng;
use tbstc::matrix::Matrix;
use tbstc::models::LayerShape;
use tbstc::prelude::*;

/// Knobs for the perf harness.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfConfig {
    /// Timed iterations per measurement (the minimum is reported).
    pub iters: usize,
    /// RNG seed for weights and data.
    pub seed: u64,
    /// Keep-alive connections for the standing zipfian loadgen run.
    pub loadgen_connections: usize,
    /// Total requests for the standing zipfian loadgen run.
    pub loadgen_requests: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            iters: 20,
            seed: 42,
            loadgen_connections: 1000,
            loadgen_requests: 8000,
        }
    }
}

/// One timed quantity: best (minimum) time over the iterations, in
/// microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Minimum observed time, µs.
    pub best_us: f64,
    /// Mean time, µs.
    pub mean_us: f64,
}

/// Loopback measurements against a live `tbstc-serve` instance, driven
/// by the load generator at a small fixed load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Job submissions completed over HTTP.
    pub requests: usize,
    /// End-to-end submissions per second (parse → cache/execute →
    /// respond over keep-alive connections), whole mixed cold/warm run.
    pub throughput_rps: f64,
    /// Fraction of submissions answered from a cache tier.
    pub cache_hit_rate: f64,
    /// Median end-to-end latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
}

/// The harness output, serialized to `BENCH_PR10.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Iterations per measurement.
    pub iters: usize,
    /// Worker threads the parallel GEMM would use (`TBSTC_JOBS` / cores).
    pub workers: usize,
    /// Seed-path training step (pre-PR kernels).
    pub train_step_old: Timing,
    /// Optimized training step (cached masked weights, transpose-free
    /// kernels, reused scratch).
    pub train_step_new: Timing,
    /// `train_step_old.best_us / train_step_new.best_us`.
    pub train_speedup: f64,
    /// Algorithm-1 TBS sparsification of a 128×128 matrix at 75 %.
    pub sparsify: Timing,
    /// `BlockPlan::build` alone on the simulation layer (the one-pass
    /// occupancy scan every `simulate_layer` call starts with).
    pub plan_build: Timing,
    /// Full per-layer simulation (plan + compute + memory + codec) on a
    /// pre-built pruned layer.
    pub simulate_layer: Timing,
    /// The same per-layer simulation, once per registered architecture
    /// (canonical name, timing) in registry order.
    pub simulate_layer_by_arch: Vec<(&'static str, Timing)>,
    /// The `simulate_layer` measurement repeated through a
    /// [`tbstc::sim::CustomArch`] interpreting the bundled TB-STC spec
    /// document (same pre-built layer).
    pub custom_arch_simulate: Timing,
    /// `custom_arch_simulate.best_us / simulate_layer.best_us` — how much
    /// the declarative path costs over the native module.
    pub custom_arch_vs_native: f64,
    /// Whether the parallel GEMM reproduced the serial result bit for bit.
    pub parallel_gemm_bit_identical: bool,
    /// Full `tbstc-lint` run over every workspace source file with the
    /// incremental cache disabled (cold analysis every iteration).
    pub lint: Timing,
    /// The same run against a pre-warmed per-file result cache: sources
    /// are re-hashed but analyses replay from `tbstc-lint.cache`.
    pub lint_warm: Timing,
    /// `lint.best_us / lint_warm.best_us` — what the incremental cache
    /// buys on an unchanged tree (CI asserts a floor on this).
    pub lint_cache_speedup: f64,
    /// Chunked checkpointed sweep time over the monolithic sweep on the
    /// same fresh grid — the price of durable execution (observer calls,
    /// chunk bookkeeping). Must stay near 1.0.
    pub sweep_resume_overhead: f64,
    /// Fraction of a second, overlapping sweep's grid points answered by
    /// the sub-spec memo (grid-point granularity) instead of recomputed.
    pub memo_subspec_hit_rate: f64,
    /// Loopback server throughput and cache behaviour (small fixed load).
    pub serve: ServeStats,
    /// The standing high-concurrency zipfian loadgen run.
    pub loadgen: LoadReport,
}

impl PerfReport {
    /// Hand-rolled JSON encoding of the report.
    pub fn to_json(&self) -> String {
        fn timing(t: &Timing) -> String {
            format!(
                "{{ \"best_us\": {:.2}, \"mean_us\": {:.2} }}",
                t.best_us, t.mean_us
            )
        }
        let by_arch = self
            .simulate_layer_by_arch
            .iter()
            .map(|(name, t)| format!("    \"{name}\": {}", timing(t)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"PR10 structural lint + incremental cache perf\",\n  \"iters\": {},\n  \"workers\": {},\n  \"train_step_old_us\": {},\n  \"train_step_new_us\": {},\n  \"train_speedup\": {:.3},\n  \"sparsify_128x128_us\": {},\n  \"plan_build_us\": {},\n  \"simulate_layer_us\": {},\n  \"simulate_layer_by_arch_us\": {{\n{by_arch}\n  }},\n  \"custom_arch_simulate_us\": {},\n  \"custom_arch_vs_native\": {:.3},\n  \"parallel_gemm_bit_identical\": {},\n  \"lint_workspace_us\": {},\n  \"lint_warm_us\": {},\n  \"lint_cache_speedup\": {:.3},\n  \"sweep_resume_overhead\": {:.3},\n  \"memo_subspec_hit_rate\": {:.3},\n  \"serve_requests\": {},\n  \"serve_throughput_rps\": {:.2},\n  \"serve_cache_hit_rate\": {:.3},\n  \"serve_p50_us\": {:.1},\n  \"serve_p99_us\": {:.1},\n  \"serve_p999_us\": {:.1},\n  \"loadgen_connections\": {},\n  \"loadgen_requests\": {},\n  \"loadgen_failed\": {},\n  \"loadgen_rps\": {:.2},\n  \"loadgen_p50_us\": {:.1},\n  \"loadgen_p99_us\": {:.1},\n  \"loadgen_p999_us\": {:.1},\n  \"loadgen_hit_rate\": {:.4}\n}}\n",
            self.iters,
            self.workers,
            timing(&self.train_step_old),
            timing(&self.train_step_new),
            self.train_speedup,
            timing(&self.sparsify),
            timing(&self.plan_build),
            timing(&self.simulate_layer),
            timing(&self.custom_arch_simulate),
            self.custom_arch_vs_native,
            self.parallel_gemm_bit_identical,
            timing(&self.lint),
            timing(&self.lint_warm),
            self.lint_cache_speedup,
            self.sweep_resume_overhead,
            self.memo_subspec_hit_rate,
            self.serve.requests,
            self.serve.throughput_rps,
            self.serve.cache_hit_rate,
            self.serve.p50_us,
            self.serve.p99_us,
            self.serve.p999_us,
            self.loadgen.connections,
            self.loadgen.completed + self.loadgen.failed,
            self.loadgen.failed,
            self.loadgen.rps,
            self.loadgen.p50_us,
            self.loadgen.p99_us,
            self.loadgen.p999_us,
            self.loadgen.hit_rate,
        )
    }
}

/// Times `f` over `iters` iterations (after one warm-up call) and returns
/// best/mean in microseconds.
pub fn time_us<F: FnMut()>(iters: usize, mut f: F) -> Timing {
    f(); // warm-up: grows scratch buffers, fills caches
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        best = best.min(dt);
        total += dt;
    }
    Timing {
        best_us: best,
        mean_us: total / iters.max(1) as f64,
    }
}

/// The pre-optimization training path, kept verbatim as the perf baseline.
pub mod reference {
    use super::*;

    /// Seed-path linear layer: owned matrices, no caching, no scratch.
    pub struct RefLinear {
        w: Matrix,
        b: Vec<f32>,
        vw: Matrix,
        vb: Vec<f32>,
        mask: Option<Mask>,
    }

    impl RefLinear {
        fn effective_w(&self) -> Matrix {
            match &self.mask {
                Some(m) => m.apply(&self.w),
                None => self.w.clone(),
            }
        }

        fn forward(&self, x: &Matrix) -> Matrix {
            let mut h = gemm::matmul(x, &self.effective_w().transpose());
            for r in 0..h.rows() {
                for c in 0..h.cols() {
                    h[(r, c)] += self.b[c];
                }
            }
            h
        }

        fn backward_update(&mut self, x: &Matrix, dh: &Matrix, lr: f32, momentum: f32) -> Matrix {
            let n = x.rows().max(1) as f32;
            let dw = gemm::matmul(&dh.transpose(), x).map(|g| g / n);
            let dx = gemm::matmul(dh, &self.effective_w());
            for c in 0..self.b.len() {
                let db: f32 = (0..dh.rows()).map(|r| dh[(r, c)]).sum::<f32>() / n;
                self.vb[c] = momentum * self.vb[c] - lr * db;
                self.b[c] += self.vb[c];
            }
            for r in 0..self.w.rows() {
                for c in 0..self.w.cols() {
                    self.vw[(r, c)] = momentum * self.vw[(r, c)] - lr * dw[(r, c)];
                    self.w[(r, c)] += self.vw[(r, c)];
                }
            }
            dx
        }
    }

    /// Seed-path MLP mirroring `tbstc_train::Mlp` before this PR.
    pub struct RefMlp {
        layers: Vec<RefLinear>,
        lr: f32,
        momentum: f32,
    }

    impl RefMlp {
        /// Same initialization order as `Mlp::new`, so both nets start from
        /// identical weights.
        pub fn new(cfg: &MlpConfig, seed: u64) -> Self {
            let mut rng = MatrixRng::seed_from(seed);
            let mut dims = vec![cfg.inputs];
            dims.extend(&cfg.hidden);
            dims.push(cfg.classes);
            let layers = dims
                .windows(2)
                .map(|w| RefLinear {
                    w: rng.weights(w[1], w[0]),
                    b: vec![0.0; w[1]],
                    vw: Matrix::zeros(w[1], w[0]),
                    vb: vec![0.0; w[1]],
                    mask: None,
                })
                .collect();
            RefMlp {
                layers,
                lr: cfg.lr,
                momentum: cfg.momentum,
            }
        }

        /// Sets a layer's mask (seed-path semantics: applied per call).
        pub fn set_mask(&mut self, i: usize, mask: Option<Mask>) {
            self.layers[i].mask = mask;
        }

        /// One SGD step, seed arithmetic and allocation behaviour.
        pub fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> f64 {
            let mut acts = Vec::with_capacity(self.layers.len());
            let mut h = x.clone();
            for (i, layer) in self.layers.iter().enumerate() {
                acts.push(h.clone());
                h = layer.forward(&h);
                if i + 1 < self.layers.len() {
                    h.map_inplace(|v| v.max(0.0));
                }
            }
            let probs = softmax_rows(&h);

            let n = x.rows();
            let mut loss = 0.0f64;
            let mut grad = probs.clone();
            for (i, &y) in labels.iter().enumerate() {
                loss -= f64::from(probs[(i, y)].max(1e-12).ln());
                grad[(i, y)] -= 1.0;
            }
            loss /= n as f64;

            for li in (0..self.layers.len()).rev() {
                let (lr, mom) = (self.lr, self.momentum);
                let mut dx = self.layers[li].backward_update(&acts[li], &grad, lr, mom);
                if li > 0 {
                    for r in 0..dx.rows() {
                        for c in 0..dx.cols() {
                            if acts[li][(r, c)] <= 0.0 {
                                dx[(r, c)] = 0.0;
                            }
                        }
                    }
                }
                grad = dx;
            }
            loss
        }
    }

    fn softmax_rows(logits: &Matrix) -> Matrix {
        let mut out = logits.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum.max(1e-12);
            }
        }
        out
    }
}

/// Boots a loopback `tbstc-serve` on a fresh cache directory and runs
/// the load generator against it. Failures degrade to zeroed stats
/// rather than failing the harness.
fn run_loadgen_against_fresh_server(tag: &str, load: &LoadgenConfig) -> LoadReport {
    let zeroed = LoadReport {
        connections: 0,
        completed: 0,
        failed: 0,
        elapsed_s: 0.0,
        rps: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
        p999_us: 0.0,
        hit_rate: 0.0,
    };
    let dir = std::env::temp_dir().join(format!(
        "tbstc-bench-serve-{tag}-{}-{}",
        std::process::id(),
        load.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = tbstc_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: dir.clone(),
        quiet: true,
        // Enough headroom that a fully cold burst of distinct specs is
        // admitted rather than 429'd; steady state barely uses it.
        queue_capacity: 256,
        ..tbstc_serve::ServeConfig::default()
    };
    let Ok(server) = tbstc_serve::Server::bind(cfg) else {
        return zeroed;
    };
    let Ok(running) = server.spawn() else {
        return zeroed;
    };
    let report = loadgen::run(&LoadgenConfig {
        addr: running.addr.to_string(),
        ..load.clone()
    })
    .unwrap_or(zeroed);
    running.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// The small-fixed-load serve measurement: 16 keep-alive connections,
/// 384 requests over 4 distinct specs — a mixed cold/warm run whose
/// hit rate is dominated by the in-memory hot tier.
fn measure_serve(seed: u64) -> ServeStats {
    let report = run_loadgen_against_fresh_server(
        "fixed",
        &LoadgenConfig {
            connections: 16,
            requests: 384,
            distinct_specs: 4,
            zipf_exponent: 1.1,
            seed,
            ..LoadgenConfig::default()
        },
    );
    ServeStats {
        requests: report.completed,
        throughput_rps: report.rps,
        cache_hit_rate: report.hit_rate,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        p999_us: report.p999_us,
    }
}

/// The standing high-concurrency run: zipfian popularity over 64
/// distinct specs, `loadgen_connections` keep-alive connections.
fn measure_loadgen(cfg: &PerfConfig) -> LoadReport {
    run_loadgen_against_fresh_server(
        "zipf",
        &LoadgenConfig {
            connections: cfg.loadgen_connections,
            requests: cfg.loadgen_requests,
            distinct_specs: 64,
            zipf_exponent: 1.1,
            seed: cfg.seed,
            ..LoadgenConfig::default()
        },
    )
}

/// The MLP shape the train-step measurements use: hidden widths in the
/// range of the paper's transformer workloads (BERT-base/OPT FFN slices),
/// large enough that the GEMMs dominate, small enough to keep the harness
/// under a few seconds.
pub fn perf_net_config() -> MlpConfig {
    MlpConfig {
        inputs: 512,
        hidden: vec![512, 256],
        classes: 16,
        lr: 0.05,
        momentum: 0.9,
    }
}

/// Builds batch data for the train-step measurements.
fn perf_batch(cfg: &MlpConfig, batch: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let x = MatrixRng::seed_from(seed).weights(batch, cfg.inputs);
    let labels = (0..batch).map(|i| i % cfg.classes).collect();
    (x, labels)
}

/// Runs every measurement and assembles the report.
pub fn run(cfg: &PerfConfig) -> PerfReport {
    let net_cfg = perf_net_config();
    // Batch 32 matches the repo's own training configuration (every
    // Dataset-driven test and SparseTrainer run batches of 16–32).
    let (x, labels) = perf_batch(&net_cfg, 32, cfg.seed);

    // Masks on every prunable (non-classifier) layer, as SparseTrainer
    // maintains them during sparse training.
    let mut net = Mlp::new(&net_cfg, cfg.seed);
    let mut old = reference::RefMlp::new(&net_cfg, cfg.seed);
    for li in 0..net.layer_count() - 1 {
        let p = TbsPattern::sparsify(net.weights(li), 0.75, &TbsConfig::paper_default());
        net.set_mask(li, Some(p.mask().clone()));
        old.set_mask(li, Some(p.mask().clone()));
    }

    // Optimized trainer (cached masked weights, transpose-free kernels,
    // reused scratch).
    let train_step_new = time_us(cfg.iters, || {
        net.train_batch(&x, &labels);
    });

    // Seed-path trainer over identical work.
    let train_step_old = time_us(cfg.iters, || {
        old.train_batch(&x, &labels);
    });

    // Algorithm-1 sparsification, the paper's 128×128 block-structured case.
    let w = MatrixRng::seed_from(cfg.seed).block_structured_weights(128, 128, 8);
    let sparsify = time_us(cfg.iters, || {
        std::hint::black_box(TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default()));
    });

    // Full layer pipeline on a BERT-sized FFN slice. The layer is built
    // (weights + pruning) once outside the timed region: the measurement
    // isolates the simulation core — plan, compute, memory, codec — which
    // is what serving and sweeps pay per request on memoized layers.
    let shape = LayerShape {
        name: "perf-ffn".into(),
        m: 256,
        k: 256,
        n: 64,
        repeats: 1,
        prunable: true,
    };
    let hw = HwConfig::paper_default();
    let layer = LayerSim::new(&shape)
        .arch(Arch::TbStc)
        .sparsity(0.75)
        .seed(cfg.seed)
        .build(&hw);
    let plan_build = time_us(cfg.iters, || {
        std::hint::black_box(tbstc::sim::BlockPlan::build(&layer));
    });
    let simulate_layer = time_us(cfg.iters, || {
        std::hint::black_box(tbstc::sim::simulate_layer(Arch::TbStc, &layer, &hw));
    });

    // The same layer once per registered architecture (each pruned with
    // its native pattern, pre-built): per-baseline simulation cost
    // through the ArchModel registry.
    let simulate_layer_by_arch = Arch::ALL
        .iter()
        .map(|&arch| {
            let layer = LayerSim::new(&shape)
                .arch(arch)
                .sparsity(0.75)
                .seed(cfg.seed)
                .build(&hw);
            (
                arch.canonical_name(),
                time_us(cfg.iters, || {
                    std::hint::black_box(tbstc::sim::simulate_layer(arch, &layer, &hw));
                }),
            )
        })
        .collect();

    // The same pre-built layer through the spec-interpreted TB-STC: the
    // declarative path shares the batched pipeline, so its overhead is
    // bounded (the harness test asserts the ratio stays under 1.25x).
    let doc = tbstc::archspec::bundled_text("tb-stc").expect("tb-stc ships a bundled spec"); // tbstc-lint: allow(panic-surface) — bundled docs are parity-tested
    let spec = tbstc::archspec::spec_from_json(doc).expect("bundled document parses"); // tbstc-lint: allow(panic-surface) — bundled docs are parity-tested
    let custom = tbstc::sim::CustomArch::new(spec).expect("bundled spec validates"); // tbstc-lint: allow(panic-surface) — bundled docs are parity-tested
    let native_opts = tbstc::sim::SimOptions::native();
    let custom_arch_simulate = time_us(cfg.iters, || {
        std::hint::black_box(tbstc::sim::simulate_layer_on(
            &custom,
            &layer,
            &hw,
            &native_opts,
        ));
    });
    let custom_arch_vs_native = custom_arch_simulate.best_us / simulate_layer.best_us.max(1e-9);

    // Record that the parallel GEMM is bit-identical to serial.
    let a = MatrixRng::seed_from(cfg.seed).weights(192, 96);
    let b = MatrixRng::seed_from(cfg.seed + 1).weights(160, 96);
    let mut scratch = gemm::GemmScratch::new();
    let mut serial = Matrix::zeros(0, 0);
    let mut parallel = Matrix::zeros(0, 0);
    gemm::matmul_transb_with_workers(&a, &b, &mut serial, 1, &mut scratch);
    gemm::matmul_transb_with_workers(
        &a,
        &b,
        &mut parallel,
        pool::available_workers().max(2),
        &mut scratch,
    );
    let parallel_gemm_bit_identical = serial == parallel;

    // A full static-analysis pass over the workspace's own sources. The
    // bench crate sits at crates/bench, so the root is two levels up.
    let lint_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    let lint = time_us(cfg.iters, || {
        std::hint::black_box(tbstc_lint::lint_workspace(&tbstc_lint::LintOptions {
            root: lint_root.clone(),
            rules: None,
            baseline: None,
            cache: None,
        }))
        .ok();
    });
    // The same pass with the incremental cache: `time_us` warm-up
    // populates the cache file, so every timed iteration re-hashes the
    // sources but replays per-file analyses from the cache.
    let warm_cache = lint_root.join("target").join("tbstc-lint-bench.cache");
    let _ = std::fs::remove_file(&warm_cache);
    let lint_warm = time_us(cfg.iters, || {
        std::hint::black_box(tbstc_lint::lint_workspace(&tbstc_lint::LintOptions {
            root: lint_root.clone(),
            rules: None,
            baseline: None,
            cache: Some(warm_cache.clone()),
        }))
        .ok();
    });
    let _ = std::fs::remove_file(&warm_cache);
    let lint_cache_speedup = lint.best_us / lint_warm.best_us.max(1e-9);

    // Durable-execution costs on the runner itself. Monolithic vs
    // chunked (chunk size 2, a counting observer) over identical fresh
    // grids: the ratio is the pure overhead of checkpointed execution —
    // both paths compute every point because each iteration starts with
    // a cold SweepRunner.
    let sweep_grid = Sweep::new()
        .archs([Arch::TbStc, Arch::Stc])
        .models([ModelSpec::Gcn {
            nodes: 64,
            features: 16,
        }])
        .sparsities([0.5, 0.75])
        .jobs();
    let sweep_monolithic = time_us(cfg.iters, || {
        let engine = SweepRunner::new(HwConfig::paper_default());
        std::hint::black_box(engine.run_models(&sweep_grid));
    });
    let sweep_chunked = time_us(cfg.iters, || {
        let engine = SweepRunner::new(HwConfig::paper_default());
        let mut chunks = 0usize;
        std::hint::black_box(engine.run_models_chunked(&sweep_grid, 2, &mut |_| {
            chunks += 1;
            tbstc::runner::ChunkControl::Continue
        }));
        std::hint::black_box(chunks);
    });
    let sweep_resume_overhead = sweep_chunked.best_us / sweep_monolithic.best_us.max(1e-9);

    // Sub-spec memoization across overlapping sweeps: warm one grid,
    // then run a second sweep sharing half its points on the same
    // engine; the shared half must come from the memo.
    let memo_engine = SweepRunner::new(HwConfig::paper_default());
    memo_engine.run_models(&sweep_grid);
    let overlapping = Sweep::new()
        .archs([Arch::TbStc, Arch::Stc])
        .models([ModelSpec::Gcn {
            nodes: 64,
            features: 16,
        }])
        .sparsities([0.75, 0.875])
        .jobs();
    let (hits_before, _) = memo_engine.cache_stats();
    memo_engine.run_models(&overlapping);
    let (hits_after, _) = memo_engine.cache_stats();
    let memo_subspec_hit_rate = (hits_after - hits_before) as f64 / overlapping.len().max(1) as f64;

    let serve = measure_serve(cfg.seed);
    let loadgen = measure_loadgen(cfg);

    PerfReport {
        iters: cfg.iters,
        workers: pool::available_workers(),
        train_speedup: train_step_old.best_us / train_step_new.best_us.max(1e-9),
        train_step_old,
        train_step_new,
        sparsify,
        plan_build,
        simulate_layer,
        simulate_layer_by_arch,
        custom_arch_simulate,
        custom_arch_vs_native,
        parallel_gemm_bit_identical,
        lint,
        lint_warm,
        lint_cache_speedup,
        sweep_resume_overhead,
        memo_subspec_hit_rate,
        serve,
        loadgen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed() {
        let t = Timing {
            best_us: 1.5,
            mean_us: 2.0,
        };
        let r = PerfReport {
            iters: 3,
            workers: 2,
            train_step_old: t,
            train_step_new: t,
            train_speedup: 1.0,
            sparsify: t,
            plan_build: t,
            simulate_layer: t,
            simulate_layer_by_arch: vec![("tc", t), ("tb-stc", t)],
            custom_arch_simulate: t,
            custom_arch_vs_native: 1.02,
            parallel_gemm_bit_identical: true,
            lint: t,
            lint_warm: t,
            lint_cache_speedup: 8.0,
            sweep_resume_overhead: 1.02,
            memo_subspec_hit_rate: 0.5,
            serve: ServeStats {
                requests: 384,
                throughput_rps: 800.0,
                cache_hit_rate: 0.95,
                p50_us: 100.0,
                p99_us: 900.0,
                p999_us: 2500.0,
            },
            loadgen: LoadReport {
                connections: 1000,
                completed: 7990,
                failed: 10,
                elapsed_s: 2.0,
                rps: 3995.0,
                p50_us: 150.0,
                p99_us: 1200.0,
                p999_us: 4000.0,
                hit_rate: 0.97,
            },
        };
        let json = r.to_json();
        assert!(json.contains("\"train_speedup\": 1.000"));
        assert!(json.contains("\"plan_build_us\""));
        assert!(json.contains("\"simulate_layer_by_arch_us\""));
        assert!(json.contains("\"tb-stc\":"));
        assert!(json.contains("\"custom_arch_simulate_us\""));
        assert!(json.contains("\"custom_arch_vs_native\": 1.020"));
        assert!(json.contains("\"parallel_gemm_bit_identical\": true"));
        assert!(json.contains("\"lint_workspace_us\""));
        assert!(json.contains("\"lint_warm_us\""));
        assert!(json.contains("\"lint_cache_speedup\": 8.000"));
        assert!(json.contains("\"sweep_resume_overhead\": 1.020"));
        assert!(json.contains("\"memo_subspec_hit_rate\": 0.500"));
        assert!(json.contains("\"serve_requests\": 384"));
        assert!(json.contains("\"serve_cache_hit_rate\": 0.950"));
        assert!(json.contains("\"serve_p99_us\": 900.0"));
        assert!(json.contains("\"serve_p999_us\": 2500.0"));
        assert!(json.contains("\"loadgen_connections\": 1000"));
        assert!(json.contains("\"loadgen_requests\": 8000"));
        assert!(json.contains("\"loadgen_failed\": 10"));
        assert!(json.contains("\"loadgen_p999_us\": 4000.0"));
        assert!(json.contains("\"loadgen_hit_rate\": 0.9700"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn harness_runs_and_reports_speedup() {
        let r = run(&PerfConfig {
            iters: 2,
            seed: 1,
            // Keep the standing loadgen run test-sized; the real report
            // is generated with the 1k-connection defaults.
            loadgen_connections: 32,
            loadgen_requests: 192,
        });
        assert!(r.train_step_new.best_us > 0.0);
        assert!(r.train_speedup > 1.0, "speedup {}", r.train_speedup);
        assert_eq!(r.simulate_layer_by_arch.len(), Arch::ALL.len());
        assert!(r
            .simulate_layer_by_arch
            .iter()
            .all(|(_, t)| t.best_us > 0.0));
        assert!(
            r.custom_arch_simulate.best_us > 0.0 && r.custom_arch_vs_native < 1.25,
            "spec-interpreted TB-STC within 1.25x of native, got {:.3}",
            r.custom_arch_vs_native
        );
        assert!(r.parallel_gemm_bit_identical);
        assert!(
            r.sweep_resume_overhead > 0.0 && r.sweep_resume_overhead < 1.5,
            "chunked execution costs more than 1.5x the monolithic sweep: {:.3}",
            r.sweep_resume_overhead
        );
        assert!(
            (r.memo_subspec_hit_rate - 0.5).abs() < f64::EPSILON,
            "half the overlapping grid must replay from the memo: {}",
            r.memo_subspec_hit_rate
        );
        assert!(
            r.lint.best_us > 0.0 && r.lint.best_us < 2e6,
            "full lint run must stay under 2 s, got {} us",
            r.lint.best_us
        );
        assert!(
            r.lint_warm.best_us > 0.0 && r.lint_warm.best_us <= r.lint.best_us,
            "warm lint ({} us) must not exceed the cold run ({} us)",
            r.lint_warm.best_us,
            r.lint.best_us
        );
        assert_eq!(r.serve.requests, 384, "every fixed-load request completes");
        assert!(r.serve.throughput_rps > 0.0);
        assert!(
            r.serve.cache_hit_rate > 0.8,
            "4 distinct specs over 384 requests mostly hit: {}",
            r.serve.cache_hit_rate
        );
        assert!(r.serve.p50_us > 0.0 && r.serve.p50_us <= r.serve.p99_us);
        assert!(r.serve.p99_us <= r.serve.p999_us);
        assert_eq!(r.loadgen.failed, 0, "zipfian run is clean: {:?}", r.loadgen);
        assert_eq!(r.loadgen.completed, 192);
        assert!(r.loadgen.rps > 0.0 && r.loadgen.p999_us >= r.loadgen.p99_us);
    }
}
