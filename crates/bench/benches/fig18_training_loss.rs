//! Fig. 18: convergence of dense, US and TBS training.
//!
//! Paper result: TBS training reaches almost the same loss as dense
//! training; its wall-clock is shorter than US training because TB-STC
//! accelerates part of the TBS pass while the US search space is larger.

use tbstc::prelude::*;
use tbstc::sparsity::PatternKind;
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner("Fig. 18", "Training-loss convergence: dense vs US vs TBS");
    let data = tbstc_bench::proxy_task(12, 1301);
    let epochs = 45;

    let mut runs = Vec::new();
    for (kind, sparsity) in [
        (PatternKind::Dense, 0.0),
        (PatternKind::Unstructured, 0.75),
        (PatternKind::Tbs, 0.75),
    ] {
        let mut cfg = tbstc_bench::student_config(&data, kind, sparsity, 4);
        cfg.epochs = epochs;
        let rec = SparseTrainer::new(cfg).train(&data);
        runs.push((kind, rec));
    }

    section("loss curves");
    print!("  {:<8}", "epoch");
    for e in (0..epochs).step_by(5) {
        print!("{:>8}", e);
    }
    println!();
    for (kind, rec) in &runs {
        print!("  {:<8}", kind.to_string());
        for e in (0..epochs).step_by(3) {
            print!("{:>8.4}", rec.losses[e]);
        }
        println!();
    }

    section("TBS sparsity ramp during training");
    print!("  {:<8}", "sparsity");
    let tbs = &runs[2].1;
    for e in (0..epochs).step_by(5) {
        print!("{:>7.1}%", tbs.sparsities[e] * 100.0);
    }
    println!();

    section("relative per-epoch hardware time (TB-STC accelerates TBS)");
    // The sparse forward/backward of the TBS run executes on TB-STC;
    // the US run cannot (unstructured) and the dense run uses TC. Use the
    // simulator to cost one representative layer pass per epoch.
    let hw = HwConfig::paper_default();
    let shape = tbstc::models::bert_base(128).layers[0].clone();
    let t_dense = {
        let l = LayerSim::new(&shape)
            .arch(Arch::Tc)
            .sparsity(0.0)
            .seed(1)
            .build(&hw);
        simulate_layer(Arch::Tc, &l, &hw).cycles as f64
    };
    let t_tbs = {
        let l = LayerSim::new(&shape)
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(1)
            .build(&hw);
        simulate_layer(Arch::TbStc, &l, &hw).cycles as f64
    };
    let t_us = {
        let l = LayerSim::new(&shape)
            .arch(Arch::RmStc)
            .sparsity(0.75)
            .seed(1)
            .build(&hw);
        simulate_layer(Arch::RmStc, &l, &hw).cycles as f64
    };
    println!(
        "  dense {:.2}  TBS-on-TB-STC {:.2}  US-on-RM-STC {:.2}  (normalized to dense)",
        1.0,
        t_tbs / t_dense,
        t_us / t_dense
    );

    section("paper-vs-measured");
    let dense_final = *runs[0].1.losses.last().expect("losses");
    let tbs_final = *runs[2].1.losses.last().expect("losses");
    paper_vs_measured(
        "TBS − dense final loss (paper: ≈0, 'almost the same loss')",
        0.0,
        tbs_final - dense_final,
    );
    paper_vs_measured(
        "TBS epoch time / US epoch time (paper: <1, TBS trains faster)",
        0.9,
        t_tbs / t_us,
    );
}
