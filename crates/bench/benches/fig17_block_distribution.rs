//! Fig. 17: distribution of the sparsity pattern at block level in a
//! TBS-pruned ResNet-50.
//!
//! Paper result (whole-model average): 18.7 % row-direction blocks,
//! 46.0 % column-direction, 35.3 % other; the mix correlates with the
//! layer's sparsity degree.

use tbstc::matrix::rng::MatrixRng;
use tbstc::prelude::*;
use tbstc::sparsity::stats::{classify_blocks, BlockDistribution};
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner(
        "Fig. 17",
        "Block-level sparsity-direction distribution (TBS ResNet-50)",
    );

    // Three typical layers with low / medium / high sparsity plus the
    // whole-model aggregate, as in the paper.
    let layers = [
        ("low-sparsity layer", 0.4, 1201u64),
        ("mid-sparsity layer", 0.65, 1202),
        ("high-sparsity layer", 0.85, 1203),
    ];

    println!(
        "  {:<22} {:>10} {:>10} {:>10}",
        "layer", "row %", "column %", "other %"
    );
    let mut total = BlockDistribution::default();
    for (name, sparsity, seed) in layers {
        let w = MatrixRng::seed_from(seed).block_structured_weights(256, 256, 8);
        let p = TbsPattern::sparsify(&w, sparsity, &TbsConfig::paper_default());
        let d = classify_blocks(&p);
        let (r, c, o) = d.fractions();
        println!(
            "  {:<22} {:>9.1}% {:>9.1}% {:>9.1}%",
            format!("{name} ({:.0}%)", sparsity * 100.0),
            r * 100.0,
            c * 100.0,
            o * 100.0
        );
        total.merge(&d);
    }
    let (r, c, o) = total.fractions();
    println!(
        "  {:<22} {:>9.1}% {:>9.1}% {:>9.1}%",
        "Total",
        r * 100.0,
        c * 100.0,
        o * 100.0
    );

    section("paper-vs-measured (whole-model average)");
    paper_vs_measured("row-direction blocks %", 18.7, r * 100.0);
    paper_vs_measured("column-direction blocks %", 46.0, c * 100.0);
    paper_vs_measured("other blocks %", 35.3, o * 100.0);
    println!("  (shape check: both directions occur in force — single-dimension");
    println!("   N:M methods cannot express nearly half of the blocks)");
}
