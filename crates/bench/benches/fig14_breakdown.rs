//! Fig. 14: execution-cycle breakdown of typical BERT layer-9 GEMMs on
//! TB-STC, showing the codec's format conversion hidden in the pipeline.
//!
//! Paper result: conversion accounts for an average of 3.57 % of
//! execution cycles and is hidden within the pipeline.

use tbstc::models::bert_base;
use tbstc::prelude::*;
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner(
        "Fig. 14",
        "Execution cycle breakdown (BERT layer-9 GEMMs on TB-STC)",
    );
    let cfg = HwConfig::paper_default();
    let bert = bert_base(128);
    let mut shares = Vec::new();

    println!(
        "  {:<10} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "layer", "compute", "memory", "codec(hid)", "codec(exp)", "codec %"
    );
    for shape in &bert.layers {
        let layer = LayerSim::new(shape)
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(9)
            .build(&cfg);
        let res = simulate_layer(Arch::TbStc, &layer, &cfg);
        let b = &res.breakdown;
        println!(
            "  {:<10} {:>10} {:>10} {:>12} {:>12} {:>7.2}%",
            shape.name,
            b.compute,
            b.memory,
            b.codec_hidden,
            b.codec_exposed,
            b.codec_share() * 100.0
        );
        shares.push(b.codec_share());
    }
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;

    section("paper-vs-measured");
    paper_vs_measured("mean codec share of cycles %", 3.57, mean * 100.0);
    println!("  (exposed codec cycles are pipeline fill only; conversion is hidden)");
}
