//! Fig. 15(c): effect of off-chip memory bandwidth on TB-STC performance.
//!
//! Paper result: at 64 GB/s TB-STC is memory-limited for high-sparsity
//! tasks; speedup grows with bandwidth up to ~256 GB/s, beyond which it
//! is compute-limited and stops scaling.

use tbstc::models::bert_base;
use tbstc::prelude::*;
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner("Fig. 15(c)", "Effect of memory bandwidth on TB-STC");
    // Decode-style GEMM (32 tokens): weight traffic dominates, which is
    // the memory-limited regime the paper describes at 64 GB/s.
    let shape = bert_base(32).layers[4].clone(); // ffn.fc1
    let bandwidths = [32.0, 64.0, 128.0, 256.0, 512.0];
    let sparsities = [0.5, 0.75, 0.875];

    println!(
        "  {:<12} {}",
        "BW (GB/s)",
        sparsities
            .iter()
            .map(|s| format!("{:>16}", format!("{:.1}% norm.speed", s * 100.0)))
            .collect::<String>()
    );

    // Normalized to the 64 GB/s baseline per sparsity.
    let mut table = Vec::new();
    for &gbps in &bandwidths {
        let hw = HwConfig::with_bandwidth_gbps(gbps);
        let row: Vec<u64> = sparsities
            .iter()
            .map(|&s| {
                let layer = LayerSim::new(&shape)
                    .arch(Arch::TbStc)
                    .sparsity(s)
                    .seed(13)
                    .build(&hw);
                simulate_layer(Arch::TbStc, &layer, &hw).cycles
            })
            .collect();
        table.push((gbps, row));
    }
    let base: Vec<u64> = table
        .iter()
        .find(|(g, _)| *g == 64.0)
        .expect("64GB/s")
        .1
        .clone();
    for (gbps, row) in &table {
        print!("  {gbps:<12}");
        for (i, c) in row.iter().enumerate() {
            print!("{:>16.2}", base[i] as f64 / *c as f64);
        }
        println!();
    }

    section("paper-vs-measured");
    let at = |g: f64, i: usize| table.iter().find(|(x, _)| *x == g).expect("bw").1[i];
    // High sparsity (87.5%): clear gain up to 256, then flat.
    let gain_64_to_256 = at(64.0, 2) as f64 / at(256.0, 2) as f64;
    let gain_256_to_512 = at(256.0, 2) as f64 / at(512.0, 2) as f64;
    paper_vs_measured(
        "64→256 GB/s speedup at 87.5% sparsity (paper: >1)",
        1.5,
        gain_64_to_256,
    );
    paper_vs_measured(
        "256→512 GB/s speedup (paper: ≈1, compute-bound)",
        1.0,
        gain_256_to_512,
    );
}
