//! Table I: algorithm accuracy with retraining on ResNet/BERT-class
//! tasks.
//!
//! Paper protocol: train with US/TS/RS-V/RS-H/TBS under the same epoch
//! budget; CNN tasks at 75 % sparsity, NLP tasks at 50 % (TS is pinned at
//! 4:8 = 50 % by hardware). Paper result: TBS is 0.85–1.03 pts above the
//! other structured patterns and within 0.17 pts of US on average.
//!
//! Tasks are capacity-bound teacher–student proxies (DESIGN.md explains
//! the substitution); each cell averages over seeds.

use tbstc::prelude::*;
use tbstc::sparsity::PatternKind;
use tbstc::train::sparse::SparseTrainer;
use tbstc_bench::{banner, paper_vs_measured, proxy_task, section, student_config};

struct Task {
    name: &'static str,
    classes: usize,
    sparsity: f64,
    seed: u64,
}

fn tasks() -> Vec<Task> {
    vec![
        Task {
            name: "resnet50/cifar10*",
            classes: 12,
            sparsity: 0.75,
            seed: 101,
        },
        Task {
            name: "resnet18/imagenet*",
            classes: 16,
            sparsity: 0.75,
            seed: 102,
        },
        Task {
            name: "bert/sst-2*",
            classes: 8,
            sparsity: 0.5,
            seed: 103,
        },
        Task {
            name: "bert/mrpc*",
            classes: 12,
            sparsity: 0.5,
            seed: 104,
        },
    ]
}

const SEEDS: u64 = 4;

fn main() {
    banner(
        "Table I",
        "Accuracy with retraining (teacher-student proxies; * = substituted task)",
    );
    let order = PatternKind::ALL;
    let mut per_pattern: Vec<(PatternKind, Vec<f64>)> =
        order.iter().map(|&k| (k, Vec::new())).collect();

    print!("{:<24}", "task (sparsity)");
    for k in order {
        print!("{:>9}", k.to_string());
    }
    println!();

    // Every (task, pattern, seed) training run is one independent job:
    // fan the whole table out over the parallel runner, then fold the
    // seed axis back down. Each job owns its seed, so the table is
    // bit-identical to the serial loop it replaced.
    let all_tasks = tasks();
    let jobs: Vec<(usize, PatternKind, u64)> = all_tasks
        .iter()
        .enumerate()
        .flat_map(|(ti, _)| {
            order
                .iter()
                .flat_map(move |&kind| (0..SEEDS).map(move |s| (ti, kind, s)))
        })
        .collect();
    let report = Runner::new().run(&jobs, |&(ti, kind, s)| {
        let task = &all_tasks[ti];
        let data = proxy_task(task.classes, task.seed + s);
        let sp = if kind == PatternKind::Dense {
            0.0
        } else {
            task.sparsity
        };
        let cfg = student_config(&data, kind, sp, s);
        SparseTrainer::new(cfg).train(&data).test_accuracy
    });

    let mut cell = report.results.iter();
    for task in &all_tasks {
        print!(
            "{:<24}",
            format!("{} ({:.0}%)", task.name, task.sparsity * 100.0)
        );
        for &kind in &order {
            let acc = cell.by_ref().take(SEEDS as usize).sum::<f64>() / SEEDS as f64;
            print!("{:>9.2}", acc * 100.0);
            per_pattern
                .iter_mut()
                .find(|(k, _)| *k == kind)
                .expect("pattern present")
                .1
                .push(acc);
        }
        println!();
    }

    section("averages (paper Table I last column)");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    let us_avg = avg(&per_pattern
        .iter()
        .find(|(k, _)| *k == PatternKind::Unstructured)
        .unwrap()
        .1);
    for (kind, accs) in &per_pattern {
        let a = avg(accs);
        println!(
            "  {:<8} {a:>7.2}  (Δ vs US {:+.2})",
            kind.to_string(),
            a - us_avg
        );
    }

    let tbs_avg = avg(&per_pattern
        .iter()
        .find(|(k, _)| *k == PatternKind::Tbs)
        .unwrap()
        .1);
    let ts_avg = avg(&per_pattern
        .iter()
        .find(|(k, _)| *k == PatternKind::TileNm)
        .unwrap()
        .1);
    let rsv_avg = avg(&per_pattern
        .iter()
        .find(|(k, _)| *k == PatternKind::RowWiseVegeta)
        .unwrap()
        .1);
    let rsh_avg = avg(&per_pattern
        .iter()
        .find(|(k, _)| *k == PatternKind::RowWiseHighlight)
        .unwrap()
        .1);

    section("paper-vs-measured");
    paper_vs_measured("US − TBS gap (pts, paper 0.17)", 0.17, us_avg - tbs_avg);
    paper_vs_measured(
        "TBS − best(TS,RS) gain (pts, paper 0.85..1.03)",
        0.85,
        tbs_avg - ts_avg.max(rsv_avg).max(rsh_avg),
    );
}
