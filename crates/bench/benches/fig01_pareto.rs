//! Fig. 1: the accuracy–EDP Pareto frontier (BERT on sst-2 in the paper).
//!
//! Each architecture is swept over the sparsity degrees its pattern
//! supports; every (accuracy, EDP) operating point is plotted and the
//! Pareto-efficient set marked. Paper result: TB-STC's points dominate
//! the frontier.

use tbstc::experiments::{pareto_frontier, AccuracyCurve, ParetoPoint};
use tbstc::prelude::*;
use tbstc::sparsity::criteria::Criterion;
use tbstc::sparsity::PatternKind;
use tbstc::train::oneshot::SyntheticLlm;
use tbstc_bench::{banner, section};

fn main() {
    banner("Fig. 1", "Accuracy-EDP Pareto frontier (BERT/sst-2 proxy)");
    let model = ModelSpec::BertBase { tokens: 128 };
    let llm = SyntheticLlm::with_contrast(256, 256, 32, 4096, 1401, 1.25, 0.75);
    let engine = SweepRunner::new(HwConfig::paper_default());

    // Accuracy curves per pattern from the one-shot protocol (smooth and
    // deterministic), shared across the architectures that execute that
    // pattern.
    let sparsities = [0.4, 0.5, 0.625, 0.75, 0.875];
    let curve = |pattern: PatternKind| AccuracyCurve {
        pattern,
        points: sparsities
            .iter()
            .map(|&s| (s, llm.prune_and_eval(pattern, Criterion::Wanda, s)))
            .collect(),
    };

    // The whole grid — dense anchor + every (arch, sparsity) operating
    // point — goes through the parallel engine as one batch.
    let mut grid: Vec<SimJob> = vec![SimJob {
        arch: Arch::Tc,
        model,
        sparsity: 0.0,
        seed: 14,
    }];
    for arch in [
        Arch::Stc,
        Arch::Vegeta,
        Arch::Highlight,
        Arch::RmStc,
        Arch::TbStc,
    ] {
        let arch_sparsities: &[f64] = if arch == Arch::Stc {
            &[0.5]
        } else {
            &sparsities
        };
        for &s in arch_sparsities {
            grid.push(SimJob {
                arch,
                model,
                sparsity: s,
                seed: 14,
            });
        }
    }
    let report = engine.run_models(&grid);
    let dense = &report.results[0];

    let mut curves: Vec<(PatternKind, AccuracyCurve)> = Vec::new();
    let mut points = Vec::new();
    for (job, res) in grid[1..].iter().zip(&report.results[1..]) {
        let pattern = job.arch.native_pattern();
        if !curves.iter().any(|(p, _)| *p == pattern) {
            curves.push((pattern, curve(pattern)));
        }
        let c = &curves
            .iter()
            .find(|(p, _)| *p == pattern)
            .expect("cached")
            .1;
        points.push(ParetoPoint {
            arch: job.arch,
            edp: res.edp_point().normalized_edp(&dense.edp_point()),
            accuracy: c
                .accuracy_at(job.sparsity)
                .expect("curve has measured points"),
        });
    }
    // The dense point anchors the top-right.
    points.push(ParetoPoint {
        arch: Arch::Tc,
        edp: 1.0,
        accuracy: llm.dense_accuracy(),
    });

    let frontier = pareto_frontier(&points);

    section("operating points (EDP normalized to dense TC; * = Pareto-efficient)");
    println!("  {:<10} {:>12} {:>12}  ", "arch", "norm. EDP", "accuracy");
    let mut sorted: Vec<usize> = (0..points.len()).collect();
    sorted.sort_by(|&a, &b| points[a].edp.partial_cmp(&points[b].edp).expect("finite"));
    for i in sorted {
        let p = &points[i];
        println!(
            "  {:<10} {:>12.4} {:>11.2}% {}",
            p.arch.to_string(),
            p.edp,
            p.accuracy * 100.0,
            if frontier[i] { "*" } else { "" }
        );
    }

    section("shape check");
    let tb_on_frontier = points
        .iter()
        .zip(&frontier)
        .filter(|(p, &f)| f && p.arch == Arch::TbStc)
        .count();
    let others_on_frontier = points
        .iter()
        .zip(&frontier)
        .filter(|(p, &f)| f && !matches!(p.arch, Arch::TbStc | Arch::Tc))
        .count();
    println!(
        "  TB-STC points on the frontier: {tb_on_frontier}; other sparse architectures: {others_on_frontier}"
    );
    println!("  (paper: TB-STC offers an enhanced accuracy-EDP Pareto frontier)");
}
