//! Criterion microbenchmarks of the reproduction's hot kernels: the
//! Algorithm-1 sparsifier, format encode/decode, the codec conversion,
//! the DRAM replay and the reference GEMM.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tbstc::dram::{DramConfig, DramModel};
use tbstc::matrix::rng::MatrixRng;
use tbstc::matrix::{gemm, Matrix};
use tbstc::prelude::*;

fn bench_sparsify(c: &mut Criterion) {
    let w = MatrixRng::seed_from(1).block_structured_weights(128, 128, 8);
    c.bench_function("alg1_tbs_sparsify_128x128", |b| {
        b.iter(|| TbsPattern::sparsify(black_box(&w), 0.75, &TbsConfig::paper_default()))
    });
}

fn bench_formats(c: &mut Criterion) {
    let w = MatrixRng::seed_from(2).block_structured_weights(128, 128, 8);
    let p = TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default());
    let pruned = p.mask().apply(&w);
    c.bench_function("ddc_encode_128x128", |b| {
        b.iter(|| Ddc::encode(black_box(&pruned), black_box(&p)))
    });
    let ddc = Ddc::encode(&pruned, &p);
    c.bench_function("ddc_decode_128x128", |b| {
        b.iter(|| black_box(&ddc).decode())
    });
    c.bench_function("sdc_encode_128x128", |b| {
        b.iter(|| Sdc::encode(black_box(&pruned)))
    });
    c.bench_function("csr_encode_128x128", |b| {
        b.iter(|| Csr::encode(black_box(&pruned)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let w = MatrixRng::seed_from(3).block_structured_weights(128, 128, 8);
    let p = TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default());
    let pruned = p.mask().apply(&w);
    let ddc = Ddc::encode(&pruned, &p);
    let codec = CodecUnit::paper_default();
    c.bench_function("codec_convert_all_blocks", |b| {
        b.iter(|| {
            for block in ddc.blocks() {
                black_box(codec.convert_block(black_box(block)));
            }
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let trace: Vec<(u64, u64)> = (0..4096u64).map(|i| (i * 64, 64)).collect();
    c.bench_function("dram_replay_4096_bursts", |b| {
        b.iter_batched(
            || DramModel::new(DramConfig::paper_default()),
            |mut dram| dram.replay(black_box(trace.iter().copied())),
            BatchSize::SmallInput,
        )
    });
}

fn bench_gemm(c: &mut Criterion) {
    let mut rng = MatrixRng::seed_from(4);
    let a: Matrix = rng.block_structured_weights(128, 128, 8);
    let b_mat = rng.uniform(128, 64, -1.0, 1.0);
    c.bench_function("gemm_128x128x64", |b| {
        b.iter(|| gemm::matmul(black_box(&a), black_box(&b_mat)))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let cfg = HwConfig::paper_default();
    let shape = tbstc::models::bert_base(128).layers[0].clone();
    let layer = LayerSim::new(&shape)
        .arch(Arch::TbStc)
        .sparsity(0.75)
        .seed(5)
        .build(&cfg);
    c.bench_function("simulate_layer_tbstc", |b| {
        b.iter(|| simulate_layer(Arch::TbStc, black_box(&layer), &cfg))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_sparsify, bench_formats, bench_codec, bench_dram, bench_gemm, bench_simulate
);
criterion_main!(kernels);
