//! Table III: area and power breakdown of TB-STC at 7 nm / 1 GHz, plus
//! the §VII-C4 A100-integration arithmetic.
//!
//! Paper result: 1.47 mm² / 200.59 mW total; DVPE array 97.28 % of area
//! and 98.57 % of power; integration adds 12.96 mm² = 1.57 % of an A100.

use tbstc::energy::table3::{a100_integration_overhead, table3_rows};
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner("Table III", "Area and power breakdown of TB-STC");

    println!(
        "  {:<12} {:>10} {:>10} {:>10} {:>10}",
        "Component", "Area(mm2)", "Area %", "Power(mW)", "Power %"
    );
    let rows = table3_rows();
    for r in &rows {
        println!(
            "  {:<12} {:>10.2} {:>9.2}% {:>10.2} {:>9.2}%",
            r.component,
            r.area_mm2,
            r.area_share * 100.0,
            r.power_mw,
            r.power_share * 100.0
        );
    }

    let total = rows.last().expect("total row");
    let dvpe = rows
        .iter()
        .find(|r| r.component == "DVPE Array")
        .expect("dvpe");

    section("integration on an A100 (paper §VII-C4)");
    let (added, frac) = a100_integration_overhead();
    println!(
        "  added units x108 tensor-core equivalents: {added:.2} mm2 = {:.2}% of the 826 mm2 die",
        frac * 100.0
    );

    section("paper-vs-measured");
    paper_vs_measured("total area mm2", 1.47, total.area_mm2);
    paper_vs_measured("total power mW", 200.59, total.power_mw);
    paper_vs_measured("DVPE area share %", 97.28, dvpe.area_share * 100.0);
    paper_vs_measured("DVPE power share %", 98.57, dvpe.power_share * 100.0);
    paper_vs_measured("A100 added area mm2", 12.96, added);
    paper_vs_measured("A100 area fraction %", 1.57, frac * 100.0);
}
