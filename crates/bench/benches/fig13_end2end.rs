//! Fig. 13: end-to-end speedup and normalized EDP at **iso-accuracy** on
//! ResNet-50, BERT and OPT-6.7B.
//!
//! Unlike Fig. 12, each architecture runs at the highest sparsity its
//! pattern sustains at a common accuracy target, so TBS's accuracy
//! advantage converts into extra speed. Paper result: TB-STC improves
//! speedup by 1.22× / 1.06× and EDP by 1.62× / 1.92× over HighLight and
//! RM-STC.
//!
//! Operating points come from accuracy-vs-sparsity curves measured with
//! the one-shot protocol on synthetic structured models (smooth and
//! deterministic; the retraining curves of tiny proxies are too noisy to
//! select operating points from — see EXPERIMENTS.md).

use tbstc::experiments::AccuracyCurve;
use tbstc::prelude::*;
use tbstc::sparsity::criteria::Criterion;
use tbstc::sparsity::PatternKind;
use tbstc::train::oneshot::SyntheticLlm;
use tbstc_bench::{banner, geomean, paper_vs_measured, section};

/// Measures a pattern's one-shot accuracy-vs-sparsity curve on `llm`.
fn curve(llm: &SyntheticLlm, pattern: PatternKind, sparsities: &[f64]) -> AccuracyCurve {
    AccuracyCurve {
        pattern,
        points: sparsities
            .iter()
            .map(|&s| (s, llm.prune_and_eval(pattern, Criterion::Wanda, s)))
            .collect(),
    }
}

/// The iso-accuracy operating sparsity per architecture.
fn operating_points(llm: &SyntheticLlm) -> Vec<(Arch, f64)> {
    let sparsities = [0.4, 0.5, 0.5625, 0.625, 0.6875, 0.75, 0.8125, 0.875];
    // Accuracy target: what the least flexible pattern (STC's fixed 4:8)
    // achieves — the paper anchors every architecture to one accuracy and
    // lets the flexible patterns convert headroom into sparsity.
    let target_acc = curve(llm, PatternKind::TileNm, &sparsities)
        .accuracy_at(0.5)
        .expect("curve has measured points");

    [
        Arch::Stc,
        Arch::Vegeta,
        Arch::Highlight,
        Arch::RmStc,
        Arch::TbStc,
    ]
    .iter()
    .map(|&arch| {
        let s = match arch {
            // STC's hardware pins 4:8.
            Arch::Stc => 0.5,
            _ => curve(llm, arch.native_pattern(), &sparsities)
                .max_sparsity_at_accuracy(target_acc)
                .expect("curve has measured points"),
        };
        (arch, s)
    })
    .collect()
}

fn run_model(
    engine: &SweepRunner,
    name: &str,
    model: ModelSpec,
    llm: &SyntheticLlm,
    seed: u64,
) -> Vec<(Arch, f64, f64)> {
    section(&format!("{name} (iso-accuracy operating points)"));
    let points = operating_points(llm);
    // One batch through the parallel engine: the dense anchor + every
    // architecture at its operating point.
    let jobs: Vec<SimJob> = std::iter::once(SimJob {
        arch: Arch::Tc,
        model,
        sparsity: 0.0,
        seed,
    })
    .chain(points.iter().map(|&(arch, sparsity)| SimJob {
        arch,
        model,
        sparsity,
        seed,
    }))
    .collect();
    let report = engine.run_models(&jobs);
    let dense = &report.results[0];
    let mut out = Vec::new();
    for ((arch, sparsity), res) in points.iter().zip(&report.results[1..]) {
        let speedup = res.speedup_over(dense);
        let edp = res.edp_gain_over(dense);
        println!(
            "  {:<10} sparsity {:>5.1}%  speedup {:>5.2}x  EDP gain {:>5.2}x",
            arch.to_string(),
            sparsity * 100.0,
            speedup,
            edp
        );
        out.push((*arch, speedup, edp));
    }
    out
}

fn main() {
    banner(
        "Fig. 13",
        "End-to-end speedup and normalized EDP at iso-accuracy",
    );

    // Mild lane contrast: pre-trained-model weights spread importance
    // more evenly than the default generator (see EXPERIMENTS.md).
    let runs = [
        (
            "ResNet-50*",
            ModelSpec::ResNet50 { input: 64 },
            SyntheticLlm::with_contrast(256, 256, 32, 4096, 401, 1.25, 0.75),
            401u64,
        ),
        (
            "BERT*",
            ModelSpec::BertBase { tokens: 128 },
            SyntheticLlm::with_contrast(256, 256, 32, 4096, 402, 1.25, 0.75),
            402,
        ),
        (
            "OPT-6.7B*",
            ModelSpec::Opt6_7b { tokens: 128 },
            SyntheticLlm::with_contrast(384, 256, 64, 4096, 403, 1.25, 0.75),
            403,
        ),
    ];

    let engine = SweepRunner::new(HwConfig::paper_default());
    let mut hl_speed = Vec::new();
    let mut hl_edp = Vec::new();
    let mut rm_speed = Vec::new();
    let mut rm_edp = Vec::new();
    for (name, model, llm, seed) in runs {
        let rows = run_model(&engine, name, model, &llm, seed);
        let get = |a: Arch| rows.iter().find(|(x, _, _)| *x == a).expect("arch row");
        let tb = get(Arch::TbStc);
        let hl = get(Arch::Highlight);
        let rm = get(Arch::RmStc);
        hl_speed.push(tb.1 / hl.1);
        hl_edp.push(tb.2 / hl.2);
        rm_speed.push(tb.1 / rm.1);
        rm_edp.push(tb.2 / rm.2);
    }

    section("paper-vs-measured (geomean over models)");
    let gm = |v: &[f64]| geomean(v).expect("ratios are positive");
    paper_vs_measured("speedup vs HighLight", 1.22, gm(&hl_speed));
    paper_vs_measured("speedup vs RM-STC", 1.06, gm(&rm_speed));
    paper_vs_measured("EDP vs HighLight", 1.62, gm(&hl_edp));
    paper_vs_measured("EDP vs RM-STC", 1.92, gm(&rm_edp));
}
