//! Fig. 4(b): mask similarity of each N:M pattern with the unstructured
//! mask on ResNet-50-class weights.
//!
//! Paper result: TBS reaches 85.31 % – 91.62 % similarity with US, far
//! above the other N:M patterns.

use tbstc::matrix::rng::MatrixRng;
use tbstc::prelude::*;
use tbstc::sparsity::similarity::similarity_sweep;
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner("Fig. 4(b)", "Mask similarity with the unstructured pattern");
    let sparsities = [0.5, 0.625, 0.75, 0.875];
    let mut tbs_range: (f64, f64) = (1.0, 0.0);

    println!(
        "  {:<10} {:>8} {:>8} {:>8} {:>8}",
        "sparsity", "TS", "RS-V", "RS-H", "TBS"
    );
    for (i, &s) in sparsities.iter().enumerate() {
        // ResNet-50-like layer shapes.
        let w = MatrixRng::seed_from(500 + i as u64).block_structured_weights(256, 256, 8);
        let rows = similarity_sweep(&w, s);
        let get = |k: PatternKind| rows.iter().find(|r| r.kind == k).expect("row").similarity;
        let tbs = get(PatternKind::Tbs);
        tbs_range.0 = tbs_range.0.min(tbs);
        tbs_range.1 = tbs_range.1.max(tbs);
        println!(
            "  {:<10.3} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%",
            s,
            get(PatternKind::TileNm) * 100.0,
            get(PatternKind::RowWiseVegeta) * 100.0,
            get(PatternKind::RowWiseHighlight) * 100.0,
            tbs * 100.0
        );
    }

    section("paper-vs-measured");
    paper_vs_measured("TBS similarity lower bound %", 85.31, tbs_range.0 * 100.0);
    paper_vs_measured("TBS similarity upper bound %", 91.62, tbs_range.1 * 100.0);
}
