//! Fig. 16(b): ablation of the I/O-aware configurable architecture with
//! hierarchical sparsity-aware scheduling.
//!
//! Paper results: 1.57× average compute-utilization improvement over
//! non-scheduled execution, and SIGMA's element-level FAN reduction
//! network yields 1.61× worse normalized EDP than the DVPE.

use tbstc::models::{bert_base, resnet50};
use tbstc::prelude::*;
use tbstc::sim::compute::{simulate_compute, SchedulePolicy};
use tbstc_bench::{banner, geomean, paper_vs_measured, section};

fn main() {
    banner(
        "Fig. 16(b)",
        "Hierarchical scheduling + reduction-network ablation",
    );
    let cfg = HwConfig::paper_default();
    let r50 = resnet50(64);
    let bert = bert_base(128);
    let layers: Vec<_> = r50
        .layers
        .iter()
        .filter(|l| l.prunable)
        .take(4)
        .chain(bert.layers.iter().take(4))
        .collect();

    section("compute utilization: hierarchical scheduling vs naive mapping");
    println!(
        "  {:<14} {:>12} {:>12} {:>8}",
        "layer", "sched util", "naive util", "gain"
    );
    let mut util_gains = Vec::new();
    for (i, shape) in layers.iter().enumerate() {
        let layer = LayerSim::new(shape)
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(1100 + i as u64)
            .build(&cfg);
        let smart = simulate_compute(
            Arch::TbStc,
            &layer,
            &cfg,
            SchedulePolicy::native(Arch::TbStc),
        );
        let naive = simulate_compute(Arch::TbStc, &layer, &cfg, SchedulePolicy::naive());
        let gain = smart.utilization / naive.utilization;
        println!(
            "  {:<14} {:>11.1}% {:>11.1}% {:>7.2}x",
            shape.name,
            smart.utilization * 100.0,
            naive.utilization * 100.0,
            gain
        );
        util_gains.push(gain);
    }

    section("reduction network: DVPE vs SIGMA FAN (normalized EDP)");
    let mut edp_ratios = Vec::new();
    for (i, shape) in layers.iter().enumerate() {
        let tb_layer = LayerSim::new(shape)
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(1100 + i as u64)
            .build(&cfg);
        let fan_layer = LayerSim::new(shape)
            .arch(Arch::DvpeFan)
            .sparsity(0.75)
            .seed(1100 + i as u64)
            .build(&cfg);
        let tb = simulate_layer(Arch::TbStc, &tb_layer, &cfg);
        let fan = simulate_layer(Arch::DvpeFan, &fan_layer, &cfg);
        edp_ratios.push(fan.edp_point().edp() / tb.edp_point().edp());
    }
    println!(
        "  DVPE+FAN normalized EDP vs DVPE: {:.2}x (per-layer range {:.2}..{:.2})",
        geomean(&edp_ratios).expect("ratios are positive"),
        edp_ratios.iter().copied().fold(f64::MAX, f64::min),
        edp_ratios.iter().copied().fold(0.0, f64::max)
    );

    section("paper-vs-measured");
    paper_vs_measured(
        "compute utilization gain (paper 1.57x)",
        1.57,
        geomean(&util_gains).expect("ratios are positive"),
    );
    paper_vs_measured(
        "FAN normalized EDP (paper 1.61x)",
        1.61,
        geomean(&edp_ratios).expect("ratios are positive"),
    );
}
