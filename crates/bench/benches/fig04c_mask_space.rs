//! Fig. 4(c): the relationship between mask-space (Eqs. 1–4) and model
//! accuracy.
//!
//! Paper result: with X = Y and M = 8, the mask-space ordering is
//! TS < RS < TBS < US, and accuracy rises with mask-space — TBS reaches
//! near-US accuracy at a much smaller mask-space.

use tbstc::sparsity::mask_space::mask_space_row;
use tbstc::sparsity::PatternKind;
use tbstc::train::sparse::accuracy_table;
use tbstc_bench::{banner, section};

fn main() {
    banner("Fig. 4(c)", "Mask-space (log2, Eqs. 1-4) vs model accuracy");

    section("mask-space for X = Y, M = 8 (log2 of mask count)");
    println!(
        "  {:<8} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "X=Y", "TS", "RS-V", "RS-H", "TBS", "US"
    );
    for &dim in &[64u64, 128, 256, 512, 1024] {
        let row = mask_space_row(dim, dim, 8);
        println!(
            "  {:<8} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            dim, row.ts, row.rs_v, row.rs_h, row.tbs, row.us
        );
    }

    section("accuracy at 75% sparsity vs per-element mask-space (ResNet proxy)");
    let data = tbstc_bench::proxy_task(12, 601);
    let accs = accuracy_table(&data, 0.75, 3);
    let ms = mask_space_row(128, 128, 8);
    let per_elem = |log2ms: f64| log2ms / (128.0 * 128.0);
    let pairs = [
        (PatternKind::TileNm, per_elem(ms.ts)),
        (PatternKind::RowWiseVegeta, per_elem(ms.rs_v)),
        (PatternKind::RowWiseHighlight, per_elem(ms.rs_h)),
        (PatternKind::Tbs, per_elem(ms.tbs)),
        (PatternKind::Unstructured, per_elem(ms.us)),
    ];
    println!(
        "  {:<8} {:>18} {:>10}",
        "pattern", "MS bits/element", "accuracy"
    );
    for (kind, bits) in pairs {
        let acc = accs.iter().find(|(k, _)| *k == kind).expect("acc").1;
        println!(
            "  {:<8} {:>18.4} {:>9.2}%",
            kind.to_string(),
            bits,
            acc * 100.0
        );
    }
    println!("\n  shape check: accuracy should rise with mask-space, with TBS");
    println!("  approaching US accuracy at a fraction of US's mask-space.");
}
