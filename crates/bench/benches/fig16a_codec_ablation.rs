//! Fig. 16(a): ablation of the adaptive codec architecture.
//!
//! Deploy the same TBS-pruned model on pipelines without the adaptive
//! codec (SDC- or CSR-based weight streams). Paper result: other
//! architectures trail TB-STC by more than 1.44×, and §V's bandwidth
//! utilization gain is 1.47× on average.

use tbstc::models::resnet50;
use tbstc::prelude::*;
use tbstc::sim::memory::{simulate_memory, FormatOverride};
use tbstc::sim::pipeline::{simulate_layer_with, SimOptions};
use tbstc_bench::{banner, geomean, paper_vs_measured, section};

fn main() {
    banner(
        "Fig. 16(a)",
        "Adaptive codec ablation (TBS-pruned ResNet-50)",
    );
    let cfg = HwConfig::paper_default();
    let r50 = resnet50(64);
    let layers: Vec<_> = r50.layers.iter().filter(|l| l.prunable).take(8).collect();

    let mut slowdowns_sdc = Vec::new();
    let mut slowdowns_csr = Vec::new();
    let mut bw_gains = Vec::new();

    println!(
        "  {:<14} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "layer", "DDC cyc", "SDC cyc", "CSR cyc", "DDC BW", "SDC BW", "CSR BW"
    );
    for (i, shape) in layers.iter().enumerate() {
        let layer = LayerSim::new(shape)
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(1000 + i as u64)
            .build(&cfg);
        let run =
            |fmt| simulate_layer_with(Arch::TbStc, &layer, &cfg, &SimOptions::with_format(fmt));
        let native = run(FormatOverride::Native);
        let sdc = run(FormatOverride::Sdc);
        let csr = run(FormatOverride::Csr);
        let bw = |fmt| simulate_memory(Arch::TbStc, &layer, &cfg, fmt).a_bandwidth_utilization;
        let (bn, bs, bc) = (
            bw(FormatOverride::Native),
            bw(FormatOverride::Sdc),
            bw(FormatOverride::Csr),
        );
        println!(
            "  {:<14} {:>10} {:>10} {:>10} {:>8.1}% {:>8.1}% {:>8.1}%",
            shape.name,
            native.cycles,
            sdc.cycles,
            csr.cycles,
            bn * 100.0,
            bs * 100.0,
            bc * 100.0
        );
        slowdowns_sdc.push(sdc.cycles as f64 / native.cycles as f64);
        slowdowns_csr.push(csr.cycles as f64 / native.cycles as f64);
        bw_gains.push(bn / bs.max(bc));
    }

    section("paper-vs-measured");
    let worst_alt = geomean(&slowdowns_sdc)
        .expect("ratios are positive")
        .max(geomean(&slowdowns_csr).expect("ratios are positive"));
    paper_vs_measured(
        "performance gap of codec-less pipelines (paper >1.44x)",
        1.44,
        worst_alt,
    );
    paper_vs_measured(
        "bandwidth utilization gain (paper 1.47x)",
        1.47,
        geomean(&bw_gains).expect("ratios are positive"),
    );
    println!(
        "  (SDC slowdown {:.2}x, CSR slowdown {:.2}x)",
        geomean(&slowdowns_sdc).expect("ratios are positive"),
        geomean(&slowdowns_csr).expect("ratios are positive")
    );
}
