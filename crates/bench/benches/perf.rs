//! Criterion microbenchmarks of the PR 2 hot paths: optimized vs seed
//! training step, sparsification and the layer pipeline. The JSON report
//! (`BENCH_PR2.json`) is produced by `tbstc-cli perf`, which shares the
//! measurement code in `tbstc_bench::perf`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tbstc::prelude::*;
use tbstc_bench::perf::{perf_net_config, reference, run, PerfConfig};

fn bench_train_step(c: &mut Criterion) {
    let cfg = perf_net_config();
    let x = MatrixRng::seed_from(7).weights(64, cfg.inputs);
    let labels: Vec<usize> = (0..64).map(|i| i % cfg.classes).collect();

    let mut net = Mlp::new(&cfg, 7);
    c.bench_function("train_step_optimized_256", |b| {
        b.iter(|| net.train_batch(black_box(&x), black_box(&labels)))
    });

    let mut old = reference::RefMlp::new(&cfg, 7);
    c.bench_function("train_step_seed_path_256", |b| {
        b.iter(|| old.train_batch(black_box(&x), black_box(&labels)))
    });
}

fn bench_sparsify(c: &mut Criterion) {
    let w = MatrixRng::seed_from(8).block_structured_weights(128, 128, 8);
    c.bench_function("tbs_sparsify_128x128_block_view", |b| {
        b.iter(|| TbsPattern::sparsify(black_box(&w), 0.75, &TbsConfig::paper_default()))
    });
}

fn bench_report(c: &mut Criterion) {
    c.bench_function("perf_report_smoke", |b| {
        b.iter(|| {
            run(black_box(&PerfConfig {
                iters: 1,
                seed: 1,
                loadgen_connections: 4,
                loadgen_requests: 16,
            }))
        })
    });
}

criterion_group!(benches, bench_train_step, bench_sparsify, bench_report);
criterion_main!(benches);
