//! Fig. 15(b): effect of 8-bit weight quantization on TBS-pruned models.
//!
//! Paper result: quantization on top of sparsity ("Q+S") adds 1.33× /
//! 1.39× speedup on ResNet-50 / BERT with almost negligible accuracy loss
//! (0.13 / 0.41 pts).

use tbstc::matrix::quant::QuantizedMatrix;
use tbstc::models::{bert_base, resnet50};
use tbstc::prelude::*;
use tbstc::sim::memory::FormatOverride;
use tbstc::sim::pipeline::{simulate_layer_with, SimOptions};
use tbstc::train::oneshot::SyntheticLlm;
use tbstc_bench::{banner, geomean, paper_vs_measured, section};

fn main() {
    banner(
        "Fig. 15(b)",
        "Effect of int8 weight quantization on TBS-pruned models",
    );
    let cfg = HwConfig::paper_default();

    section("speedup: S (fp16 sparse) vs Q+S (int8 sparse)");
    let mut gains = Vec::new();
    let r50 = resnet50(32);
    let bert = bert_base(128);
    let layer_sets = [("ResNet-50", &r50.layers[3..8]), ("BERT", &bert.layers[..])];
    for (name, layers) in layer_sets {
        let mut per_model = Vec::new();
        for shape in layers {
            let layer = LayerSim::new(shape)
                .arch(Arch::TbStc)
                .sparsity(0.75)
                .seed(11)
                .build(&cfg);
            let fp16 = simulate_layer(Arch::TbStc, &layer, &cfg);
            let int8 = simulate_layer_with(
                Arch::TbStc,
                &layer,
                &cfg,
                &SimOptions::with_format(FormatOverride::Int8),
            );
            per_model.push(fp16.cycles as f64 / int8.cycles as f64);
        }
        let g = geomean(&per_model).expect("ratios are positive");
        println!("  {name:<10} Q+S speedup over S: {g:.2}x");
        gains.push((name, g));
    }

    section("accuracy: quantizing the TBS-pruned synthetic model");
    let llm = SyntheticLlm::new(256, 256, 32, 2048, 801);
    let sparse_acc = llm.prune_sparse_only(0.75);
    let quant_acc = llm.prune_quantize_and_eval(0.75);
    println!(
        "  S accuracy {:.2}%   Q+S accuracy {:.2}%   loss {:.2} pts",
        sparse_acc * 100.0,
        quant_acc * 100.0,
        (sparse_acc - quant_acc) * 100.0
    );

    // Round-trip sanity: int8 error bound on a pruned matrix.
    let w = tbstc::matrix::rng::MatrixRng::seed_from(5).block_structured_weights(64, 64, 8);
    let p = TbsPattern::sparsify(&w, 0.75, &TbsConfig::paper_default());
    let pruned = p.mask().apply(&w);
    let q = QuantizedMatrix::quantize(&pruned);
    println!(
        "  int8 round-trip max error on pruned weights: {:.5}",
        pruned.max_abs_diff(&q.dequantize()).expect("same shape")
    );

    section("paper-vs-measured");
    paper_vs_measured("ResNet-50 Q+S speedup", 1.33, gains[0].1);
    paper_vs_measured("BERT Q+S speedup", 1.39, gains[1].1);
    paper_vs_measured(
        "accuracy loss pts (paper 0.13-0.41)",
        0.41,
        (sparse_acc - quant_acc) * 100.0,
    );
}
