//! Fig. 15(a): effect of the TBS block size on speedup and accuracy.
//!
//! Paper result: speedup growth flattens as the block size increases,
//! while accuracy drops (94.91 % → 93.82 % from block 8 to the largest),
//! so the paper selects block size 8.

use tbstc::models::bert_base;
use tbstc::prelude::*;
use tbstc::train::oneshot::SyntheticLlm;
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner("Fig. 15(a)", "Effect of block size on speedup and accuracy");
    let cfg = HwConfig::paper_default();
    let shape = bert_base(128).layers[4].clone(); // ffn.fc1

    // Accuracy: one-shot prune synthetic structured models with TBS at
    // each block size (ResNet-50-proxy protocol), averaged over seeds.
    let llms: Vec<SyntheticLlm> = (0..4)
        .map(|s| SyntheticLlm::new(256, 256, 32, 2048, 701 + s))
        .collect();

    // Speedup: TB-STC at 75% sparsity with the block-size-specific
    // pattern, vs the dense Tensor Core.
    let dense = {
        let l = LayerSim::new(&shape)
            .arch(Arch::Tc)
            .sparsity(0.0)
            .seed(7)
            .build(&cfg);
        simulate_layer(Arch::Tc, &l, &cfg)
    };

    println!(
        "  {:<8} {:>10} {:>12} {:>12}",
        "block", "speedup", "accuracy", "Δcycles vs M=8"
    );
    let mut rows = Vec::new();
    for m in [4usize, 8, 16, 32] {
        let tbs_cfg = TbsConfig::with_block_size(m);
        let res = LayerSim::new(&shape)
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(7)
            .tbs_config(tbs_cfg.clone())
            .run(&cfg);
        let speedup = res.speedup_over(&dense);
        let acc = llms
            .iter()
            .map(|l| l.prune_and_eval_with_tbs(&tbs_cfg, 0.75))
            .sum::<f64>()
            / llms.len() as f64;
        rows.push((m, speedup, acc, res.cycles));
    }
    let base_cycles = rows.iter().find(|r| r.0 == 8).expect("m=8").3 as f64;
    for (m, speedup, acc, cycles) in &rows {
        println!(
            "  {:<8} {:>9.2}x {:>11.2}% {:>11.2}%",
            m,
            speedup,
            acc * 100.0,
            (*cycles as f64 / base_cycles - 1.0) * 100.0
        );
    }

    section("paper-vs-measured");
    let acc8 = rows.iter().find(|r| r.0 == 8).expect("m=8").2;
    let acc32 = rows.iter().find(|r| r.0 == 32).expect("m=32").2;
    paper_vs_measured(
        "accuracy drop 8→32 (pts, paper 94.91→93.82 = 1.09)",
        1.09,
        (acc8 - acc32) * 100.0,
    );
    let s8 = rows.iter().find(|r| r.0 == 8).expect("m=8").1;
    let s32 = rows.iter().find(|r| r.0 == 32).expect("m=32").1;
    paper_vs_measured("speedup flattening 32/8 ratio (paper ≈1.0)", 1.0, s32 / s8);
}
