//! Fig. 6(d): power consumption of RM-STC vs TB-STC datapaths.
//!
//! Paper point: RM-STC's gather/union modules for unstructured sparsity
//! burden the hardware; TB-STC supports the more flexible TBS pattern
//! with far less power.

use tbstc::energy::components::PeArrayShape;
use tbstc::prelude::*;
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner("Fig. 6(d)", "Datapath power comparison");
    let shape = PeArrayShape::paper_default();

    println!("  {:<10} {:>12} {:>12}", "arch", "area (mm2)", "power (mW)");
    for arch in [Arch::Tc, Arch::Stc, Arch::RmStc, Arch::TbStc] {
        let dp = arch.datapath(shape);
        println!(
            "  {:<10} {:>12.3} {:>12.2}",
            arch.to_string(),
            dp.total_area_mm2(),
            dp.total_power_mw()
        );
        for c in &dp.components {
            println!(
                "     - {:<22} {:>8.3} mm2 {:>9.2} mW",
                c.name, c.area_mm2, c.power_mw
            );
        }
    }

    let rm = Arch::RmStc.datapath(shape).total_power_mw();
    let tb = Arch::TbStc.datapath(shape).total_power_mw();

    section("paper-vs-measured");
    // The paper plots the bar chart without numbers; the claim is the
    // direction and the rough factor (RM-STC clearly higher).
    paper_vs_measured(
        "RM-STC / TB-STC power ratio (paper: >1.5, bar chart)",
        1.6,
        rm / tb,
    );
}
