//! Fig. 15(d): effect of the sparsity degree — TB-STC vs SGCN on a GCN
//! workload.
//!
//! Paper result: SGCN (high-sparsity GNN accelerator with a 256 GB/s
//! bandwidth provision) wins at ~95 %+ sparsity; TB-STC is better by
//! 1.32× on average across the 30–90 % range where DNNs live.

use tbstc::models::gcn_layer;
use tbstc::prelude::*;
use tbstc_bench::{banner, geomean, paper_vs_measured, section};

fn main() {
    banner(
        "Fig. 15(d)",
        "TB-STC vs SGCN across sparsity degrees (GCN workload)",
    );
    let engine = SweepRunner::new(HwConfig::paper_default());
    let shape = gcn_layer(1024, 128).layers[0].clone();
    let sparsities = [0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.97];

    // Both architectures over the whole sparsity range as one batch.
    let jobs: Vec<LayerSim> = sparsities
        .iter()
        .enumerate()
        .flat_map(|(i, &s)| {
            [Arch::TbStc, Arch::Sgcn].map(|arch| {
                LayerSim::new(&shape)
                    .arch(arch)
                    .sparsity(s)
                    .seed(900 + i as u64)
            })
        })
        .collect();
    let batch = engine.run_layers(&jobs).results;

    println!(
        "  {:<10} {:>12} {:>12} {:>14}",
        "sparsity", "TB-STC cyc", "SGCN cyc", "TB-STC/SGCN"
    );
    let mut dnn_range = Vec::new();
    let mut extreme = Vec::new();
    for (i, &s) in sparsities.iter().enumerate() {
        let (tb, sg) = (&batch[2 * i], &batch[2 * i + 1]);
        let ratio = sg.cycles as f64 / tb.cycles as f64; // >1 = TB-STC wins
        println!(
            "  {:<10.2} {:>12} {:>12} {:>13.2}x",
            s, tb.cycles, sg.cycles, ratio
        );
        if s <= 0.9 {
            dnn_range.push(ratio);
        } else {
            extreme.push(ratio);
        }
    }

    section("paper-vs-measured");
    paper_vs_measured(
        "TB-STC advantage in 30-90% band (paper 1.32x)",
        1.32,
        geomean(&dnn_range).expect("ratios are positive"),
    );
    let min_extreme = extreme.iter().copied().fold(f64::MAX, f64::min);
    paper_vs_measured(
        "SGCN overtakes at >=95% (ratio < 1, paper: SGCN wins)",
        1.0,
        min_extreme,
    );
}
