//! Fig. 12: layer-wise speedup and normalized EDP across sparsity degrees
//! on typical ResNet-50 and BERT layers.
//!
//! Paper result: average speedups of TB-STC over STC / VEGETA /
//! HighLight / RM-STC of 1.55× / 1.29× / 1.21× / 1.06×, and 1.41× EDP
//! over HighLight, 1.75× EDP over RM-STC.

use tbstc::models::{bert_base, resnet50};
use tbstc::prelude::*;
use tbstc_bench::{banner, geomean, paper_vs_measured, section};

fn main() {
    banner(
        "Fig. 12",
        "Layer-wise speedup and normalized EDP vs sparsity degree",
    );
    let engine = SweepRunner::new(HwConfig::paper_default());
    let archs = [
        Arch::Tc,
        Arch::Stc,
        Arch::Vegeta,
        Arch::Highlight,
        Arch::RmStc,
        Arch::TbStc,
    ];
    let sparsities = [0.5, 0.625, 0.75, 0.875];

    // Typical layers: a mid-network ResNet-50 conv and the BERT FFN GEMMs.
    let r50 = resnet50(64);
    let bert = bert_base(128);
    let layers = [
        r50.layers
            .iter()
            .find(|l| l.name == "conv3 3x3")
            .expect("conv3"),
        r50.layers
            .iter()
            .find(|l| l.name == "conv4 1x1b")
            .expect("conv4"),
        bert.layers
            .iter()
            .find(|l| l.name == "ffn.fc1")
            .expect("fc1"),
        bert.layers
            .iter()
            .find(|l| l.name == "attn.q")
            .expect("attn"),
    ];

    // gains[arch] = per-(layer, sparsity) speedup and EDP of TB-STC over it.
    let mut speedups: Vec<(Arch, Vec<f64>)> = archs[..5].iter().map(|&a| (a, vec![])).collect();
    let mut edps: Vec<(Arch, Vec<f64>)> = archs[..5].iter().map(|&a| (a, vec![])).collect();

    for layer in layers {
        section(&format!(
            "{} (M={}, K={}, N={})",
            layer.name, layer.m, layer.k, layer.n
        ));
        println!(
            "  {:<10} {}",
            "arch",
            sparsities
                .iter()
                .map(|s| format!("{:>12}", format!("{:.1}% spd/EDP", s * 100.0)))
                .collect::<String>()
        );
        // One batch per layer: arch × sparsity, each job owning its seed.
        // The dense TC row repeats the same point per sparsity column —
        // the engine's cache computes each unique (seed) point once.
        let jobs: Vec<LayerSim> = archs
            .iter()
            .flat_map(|&arch| {
                sparsities.iter().enumerate().map(move |(si, &s)| {
                    let target = if arch == Arch::Tc { 0.0 } else { s };
                    LayerSim::new(layer)
                        .arch(arch)
                        .sparsity(target)
                        .seed(300 + si as u64)
                })
            })
            .collect();
        let batch = engine.run_layers(&jobs).results;
        let mut results = Vec::new();
        for (ai, &arch) in archs.iter().enumerate() {
            print!("  {:<10}", arch.to_string());
            let row: Vec<_> = batch[ai * sparsities.len()..(ai + 1) * sparsities.len()].to_vec();
            for res in &row {
                print!("{:>12}", format!("{}", res.cycles));
            }
            println!();
            results.push((arch, row));
        }
        let tb_row = results.last().expect("tb last").1.clone();
        for (arch, row) in &results[..5] {
            if *arch == Arch::Tc {
                continue;
            }
            for (i, r) in row.iter().enumerate() {
                let s = speedups.iter_mut().find(|(a, _)| a == arch).unwrap();
                s.1.push(r.cycles as f64 / tb_row[i].cycles as f64);
                let e = edps.iter_mut().find(|(a, _)| a == arch).unwrap();
                e.1.push(tb_row[i].edp_gain_over(r));
            }
        }
    }

    section("average TB-STC gains (geomean over layers x sparsities)");
    let get = |v: &[(Arch, Vec<f64>)], a: Arch| {
        geomean(&v.iter().find(|(x, _)| *x == a).unwrap().1).expect("ratios are positive")
    };
    println!(
        "  speedup:  vs STC {:.2}x  vs VEGETA {:.2}x  vs HighLight {:.2}x  vs RM-STC {:.2}x",
        get(&speedups, Arch::Stc),
        get(&speedups, Arch::Vegeta),
        get(&speedups, Arch::Highlight),
        get(&speedups, Arch::RmStc)
    );
    println!(
        "  EDP gain: vs STC {:.2}x  vs VEGETA {:.2}x  vs HighLight {:.2}x  vs RM-STC {:.2}x",
        get(&edps, Arch::Stc),
        get(&edps, Arch::Vegeta),
        get(&edps, Arch::Highlight),
        get(&edps, Arch::RmStc)
    );

    section("paper-vs-measured");
    paper_vs_measured("speedup vs STC", 1.55, get(&speedups, Arch::Stc));
    paper_vs_measured("speedup vs VEGETA", 1.29, get(&speedups, Arch::Vegeta));
    paper_vs_measured(
        "speedup vs HighLight",
        1.21,
        get(&speedups, Arch::Highlight),
    );
    paper_vs_measured("speedup vs RM-STC", 1.06, get(&speedups, Arch::RmStc));
    paper_vs_measured("EDP vs HighLight", 1.41, get(&edps, Arch::Highlight));
    paper_vs_measured("EDP vs RM-STC", 1.75, get(&edps, Arch::RmStc));
}
