//! Table II: one-shot pruning accuracy (OPT-6.7B / Llama2-7B protocol).
//!
//! Paper protocol: prune a trained model in one shot with Wanda and
//! SparseGPT at 50 % sparsity under each pattern, no fine-tuning. Paper
//! result: TBS improves average accuracy by 2.58 pts over TS and narrows
//! the US-vs-structured gap from 2.58–3.24 pts to 0.66 pts.

use tbstc::sparsity::PatternKind;
use tbstc::train::oneshot::SyntheticLlm;
use tbstc_bench::{banner, paper_vs_measured, section};

fn main() {
    banner(
        "Table II",
        "One-shot pruning accuracy at 50% (LLM-proxy teachers; see DESIGN.md substitutions)",
    );

    // Two synthetic "pre-trained LLMs" standing in for OPT-6.7B and
    // Llama2-7B: MLPs with block-structured weights (the local structure
    // real trained models exhibit, Fig. 17), evaluated by agreement with
    // their own dense outputs — the analogue of perplexity against the
    // original model (see DESIGN.md substitutions).
    let tasks = [
        ("opt-6.7b*", SyntheticLlm::new(256, 256, 32, 2048, 201)),
        ("llama2-7b*", SyntheticLlm::new(384, 256, 64, 2048, 202)),
    ];

    let mut sums: Vec<(PatternKind, f64, usize)> =
        PatternKind::SPARSE.iter().map(|&k| (k, 0.0, 0)).collect();
    let mut dense_sum = 0.0;

    for (name, llm) in &tasks {
        section(name);
        let dense = llm.dense_accuracy();
        dense_sum += dense;
        println!(
            "  {:<8} Wanda {:>6.2}  SparseGPT {:>6.2}",
            "Dense",
            dense * 100.0,
            dense * 100.0
        );
        for row in llm.one_shot_table(0.5) {
            println!(
                "  {:<8} Wanda {:>6.2}  SparseGPT {:>6.2}",
                row.pattern.to_string(),
                row.wanda * 100.0,
                row.sparsegpt * 100.0
            );
            let e = sums.iter_mut().find(|(k, _, _)| *k == row.pattern).unwrap();
            e.1 += row.wanda + row.sparsegpt;
            e.2 += 2;
        }
    }

    section("averages (paper Table II last column)");
    let avg = |k: PatternKind| {
        let e = sums.iter().find(|(p, _, _)| *p == k).unwrap();
        e.1 / e.2 as f64 * 100.0
    };
    let us = avg(PatternKind::Unstructured);
    println!(
        "  {:<8} {:>7.2}",
        "Dense",
        dense_sum / tasks.len() as f64 * 100.0
    );
    for &k in &PatternKind::SPARSE {
        println!(
            "  {:<8} {:>7.2}  (Δ vs US {:+.2})",
            k.to_string(),
            avg(k),
            avg(k) - us
        );
    }

    section("paper-vs-measured");
    paper_vs_measured(
        "TBS − TS gain (pts, paper 2.58)",
        2.58,
        avg(PatternKind::Tbs) - avg(PatternKind::TileNm),
    );
    paper_vs_measured(
        "US − TBS gap (pts, paper 0.66)",
        0.66,
        us - avg(PatternKind::Tbs),
    );
    paper_vs_measured(
        "US − TS gap (pts, paper 3.24)",
        3.24,
        us - avg(PatternKind::TileNm),
    );
}
