//! A minimal HTTP/1.1 transport over `std::net`: request/response types,
//! serialization, and the blocking client.
//!
//! The workspace builds offline, so this speaks exactly the protocol
//! subset the job service needs: `Content-Length` bodies, no chunked
//! encoding, no TLS. Requests are size-capped before parsing — the
//! listener faces arbitrary network input. The server side reads
//! requests incrementally through [`crate::conn::RequestParser`] (with
//! keep-alive and pipelining); [`Request::read_from`] remains as the
//! simple blocking reader the client-side tests use.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tbstc::Error;

/// Maximum bytes of request line + headers we accept.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes we accept (job specs are small).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-connection socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request path, e.g. `/v1/jobs`.
    pub path: String,
    /// Raw header list in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Reads one request from the stream.
    ///
    /// # Errors
    ///
    /// [`Error::Http`] on protocol violations or size-cap breaches,
    /// [`Error::Io`] on transport failures.
    pub fn read_from(stream: &mut TcpStream) -> Result<Request, Error> {
        let (head, mut body) = read_head(stream)?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| Error::Http("empty request".into()))?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| Error::Http("missing method".into()))?
            .to_ascii_uppercase();
        let path = parts
            .next()
            .ok_or_else(|| Error::Http("missing path".into()))?
            .to_string();
        if !path.starts_with('/') {
            return Err(Error::Http(format!("bad path `{path}`")));
        }

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| Error::Http(format!("malformed header `{line}`")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| {
                v.parse::<usize>()
                    .map_err(|_| Error::Http(format!("bad content-length `{v}`")))
            })
            .transpose()?
            .unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(Error::Http(format!(
                "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
            )));
        }
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = stream
                .read(&mut chunk)
                .map_err(|e| Error::Io(e.to_string()))?;
            if n == 0 {
                return Err(Error::Http("connection closed mid-body".into()));
            }
            body.extend_from_slice(filled(&chunk, n)?);
        }
        body.truncate(content_length);

        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }
}

/// Reads up to the `\r\n\r\n` head terminator; returns (head text, any
/// body bytes already pulled off the socket).
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), Error> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some((head, rest)) = split_head(&buf) {
            let head = std::str::from_utf8(head)
                .map_err(|_| Error::Http("non-utf8 request head".into()))?
                .to_string();
            return Ok((head, rest.to_vec()));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(Error::Http(format!(
                "request head exceeds the {MAX_HEAD_BYTES}-byte cap"
            )));
        }
        let mut chunk = [0u8; 1024];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| Error::Io(e.to_string()))?;
        if n == 0 {
            if buf.is_empty() {
                return Err(Error::Http("connection closed before request".into()));
            }
            return Err(Error::Http("connection closed mid-head".into()));
        }
        buf.extend_from_slice(filled(&chunk, n)?);
    }
}

/// Splits `buf` at the `\r\n\r\n` head terminator into (head bytes,
/// remaining bytes), when the terminator has arrived.
pub fn split_head(buf: &[u8]) -> Option<(&[u8], &[u8])> {
    let pos = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    Some((buf.get(..pos)?, buf.get(pos + 4..)?))
}

/// The first `n` bytes of a read buffer. `Read::read` promises `n` never
/// exceeds the buffer, but this transport faces the network — an error
/// beats a panic if that promise is ever broken.
fn filled(chunk: &[u8], n: usize) -> Result<&[u8], Error> {
    chunk.get(..n).ok_or_else(|| {
        Error::Io(format!(
            "read reported {n} bytes into a {}-byte buffer",
            chunk.len()
        ))
    })
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status and an empty body.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Sets a plain-text body.
    #[must_use]
    pub fn text(self, body: impl Into<String>) -> Response {
        self.header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// Sets a JSON body.
    #[must_use]
    pub fn json(self, body: impl Into<String>) -> Response {
        self.header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// The response status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serializes the response to wire bytes. `keep_alive` selects the
    /// `Connection` header: the event loop keeps connections open unless
    /// the request asked to close (or a protocol error poisoned the
    /// stream).
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let reason = reason_phrase(self.status);
        let mut head = String::with_capacity(128 + self.headers.len() * 32);
        head.push_str(&format!("HTTP/1.1 {} {}\r\n", self.status, reason));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: {}\r\n\r\n",
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        ));
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes and writes the response, closing semantics
    /// (`Connection: close`) — the blocking one-request path.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport failures.
    pub fn write_to(&self, stream: &mut TcpStream) -> Result<(), Error> {
        stream
            .write_all(&self.serialize(false))
            .and_then(|()| stream.flush())
            .map_err(|e| Error::Io(e.to_string()))
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        409 => "Conflict",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A client-side response: status, headers (names lowercased), body text.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one request against `addr` and reads the full response (the
/// client side of `tbstc-cli submit` and the loopback tests).
///
/// # Errors
///
/// [`Error::Io`] when the connection fails, [`Error::Http`] when the
/// response is malformed.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, Error> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| Error::Io(format!("cannot connect to {addr}: {e}")))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| Error::Io(e.to_string()))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| Error::Io(e.to_string()))?;
    let (head, rest) =
        split_head(&raw).ok_or_else(|| Error::Http("response has no head".into()))?;
    let head =
        std::str::from_utf8(head).map_err(|_| Error::Http("non-utf8 response head".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| Error::Http("empty response".into()))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| Error::Http(format!("bad status line `{status_line}`")))?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            l.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    let body = String::from_utf8(rest.to_vec())
        .map_err(|_| Error::Http("non-utf8 response body".into()))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &str) -> Result<Request, Error> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = Request::read_from(&mut stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"{\"a\":1}");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(roundtrip(&raw), Err(Error::Http(_))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(
            roundtrip("not http at all\r\n\r\n").is_err() || {
                // A single word parses as a method with no path — also an error.
                true
            }
        );
        assert!(matches!(roundtrip("GET\r\n\r\n"), Err(Error::Http(_))));
    }

    #[test]
    fn response_serializes_and_client_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = Request::read_from(&mut stream).unwrap();
            Response::new(200)
                .header("X-Cache", "hit")
                .json("{\"ok\":true}")
                .write_to(&mut stream)
                .unwrap();
        });
        let resp = request(&addr, "POST", "/v1/jobs", Some("{}")).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("hit"));
        assert_eq!(resp.body, "{\"ok\":true}");
    }
}
