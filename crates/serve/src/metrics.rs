//! Service counters and the `/metrics` Prometheus text rendering.
//!
//! Everything is lock-free atomics so the hot path (one job request)
//! costs a handful of relaxed increments. Gauges that belong to other
//! components (queue depth, in-flight jobs, memo totals) are passed in
//! at render time rather than duplicated here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Upper bounds of the job-latency histogram buckets, seconds. One more
/// implicit `+Inf` bucket follows.
pub const LATENCY_BUCKETS_S: [f64; 8] = [0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0];

/// Counters the serve subsystem exposes.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    /// `POST /v1/jobs` requests received.
    pub requests_jobs: AtomicU64,
    /// `GET /metrics` requests received.
    pub requests_metrics: AtomicU64,
    /// Requests to any other endpoint.
    pub requests_other: AtomicU64,
    /// Jobs answered 200 (computed or cached).
    pub jobs_ok: AtomicU64,
    /// Jobs rejected 400 (malformed spec).
    pub jobs_bad: AtomicU64,
    /// Jobs rejected 429 (admission queue full).
    pub jobs_rejected: AtomicU64,
    /// Jobs answered 500 (panicking execution or poisoned state).
    pub jobs_failed: AtomicU64,
    /// Jobs served verbatim from the on-disk result cache.
    pub disk_hits: AtomicU64,
    /// Jobs that had to execute (disk-cache misses).
    pub disk_misses: AtomicU64,
    /// Jobs served from the in-memory hot tier (no disk read).
    pub mem_hits: AtomicU64,
    /// Distinct executions the engine actually ran.
    pub jobs_executed: AtomicU64,
    /// Requests that attached to an identical in-flight job
    /// (single-flight coalescing) instead of executing.
    pub jobs_coalesced: AtomicU64,
    /// Simulate jobs that rode in a multi-job engine batch.
    pub jobs_batched: AtomicU64,
    /// Long jobs accepted 202 into the durable queue.
    pub jobs_accepted: AtomicU64,
    /// Durable jobs cancelled before completion.
    pub jobs_cancelled: AtomicU64,
    /// Durable jobs resumed from a checkpoint after a restart.
    pub jobs_resumed: AtomicU64,
    /// Sweep chunks checkpointed by the durable executor.
    pub sweep_chunks: AtomicU64,
    /// Corrupt `memo.jsonl` lines skipped while preloading the memo.
    pub memo_corrupt_lines: AtomicU64,
    /// Microseconds spent executing jobs (for worker utilization).
    pub busy_us: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_S.len() + 1],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters; uptime starts now.
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            requests_jobs: AtomicU64::new(0),
            requests_metrics: AtomicU64::new(0),
            requests_other: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_bad: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            jobs_coalesced: AtomicU64::new(0),
            jobs_batched: AtomicU64::new(0),
            jobs_accepted: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_resumed: AtomicU64::new(0),
            sweep_chunks: AtomicU64::new(0),
            memo_corrupt_lines: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            latency_buckets: Default::default(),
            latency_sum_us: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
        }
    }

    /// Records one served job's end-to-end latency.
    pub fn observe_latency(&self, seconds: f64) {
        let idx = LATENCY_BUCKETS_S
            .iter()
            .position(|&b| seconds <= b)
            .unwrap_or(LATENCY_BUCKETS_S.len());
        if let Some(bucket) = self.latency_buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_sum_us
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean observed job latency in seconds (used for `Retry-After`
    /// hints); falls back to `default` before any observation.
    pub fn mean_latency_s(&self, default: f64) -> f64 {
        let count = self.latency_count.load(Ordering::Relaxed);
        if count == 0 {
            return default;
        }
        self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6 / count as f64
    }

    /// Seconds since the metrics were created.
    pub fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Renders the Prometheus text exposition. Gauges owned elsewhere
    /// (queue state, memo totals) come in as arguments.
    pub fn render(&self, gauges: &Gauges) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, pairs: &[(&str, u64)]| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (labels, v) in pairs {
                if labels.is_empty() {
                    out.push_str(&format!("{name} {v}\n"));
                } else {
                    out.push_str(&format!("{name}{{{labels}}} {v}\n"));
                }
            }
        };

        counter(
            "tbstc_requests_total",
            "HTTP requests received, by endpoint.",
            &[
                ("endpoint=\"jobs\"", load(&self.requests_jobs)),
                ("endpoint=\"metrics\"", load(&self.requests_metrics)),
                ("endpoint=\"other\"", load(&self.requests_other)),
            ],
        );
        counter(
            "tbstc_jobs_total",
            "Job submissions by outcome.",
            &[
                ("outcome=\"ok\"", load(&self.jobs_ok)),
                ("outcome=\"accepted\"", load(&self.jobs_accepted)),
                ("outcome=\"bad_request\"", load(&self.jobs_bad)),
                ("outcome=\"rejected\"", load(&self.jobs_rejected)),
                ("outcome=\"internal_error\"", load(&self.jobs_failed)),
            ],
        );
        counter(
            "tbstc_jobs_rejected_total",
            "Jobs turned away with 429 because the admission queue was full.",
            &[("", load(&self.jobs_rejected))],
        );
        counter(
            "tbstc_cache_hits_total",
            "Jobs served from a cache tier without recomputation.",
            &[
                ("tier=\"mem\"", load(&self.mem_hits)),
                ("tier=\"disk\"", load(&self.disk_hits)),
                ("tier=\"memo\"", gauges.memo_hits),
            ],
        );
        counter(
            "tbstc_cache_misses_total",
            "Cache lookups that had to compute, by tier.",
            &[
                ("tier=\"disk\"", load(&self.disk_misses)),
                ("tier=\"memo\"", gauges.memo_misses),
            ],
        );
        counter(
            "tbstc_jobs_executed_total",
            "Distinct executions the engine actually ran (after \
             single-flight dedup and cache hits).",
            &[("", load(&self.jobs_executed))],
        );
        counter(
            "tbstc_jobs_coalesced_total",
            "Requests that shared an identical in-flight execution.",
            &[("", load(&self.jobs_coalesced))],
        );
        counter(
            "tbstc_jobs_batched_total",
            "Simulate jobs executed as part of a multi-job engine batch.",
            &[("", load(&self.jobs_batched))],
        );
        counter(
            "tbstc_jobs_cancelled_total",
            "Durable jobs cancelled before completion.",
            &[("", load(&self.jobs_cancelled))],
        );
        counter(
            "tbstc_jobs_resumed_total",
            "Durable jobs resumed from a persisted checkpoint at startup.",
            &[("", load(&self.jobs_resumed))],
        );
        counter(
            "tbstc_sweep_chunks_total",
            "Sweep chunks checkpointed by the durable executor.",
            &[("", load(&self.sweep_chunks))],
        );
        counter(
            "tbstc_memo_corrupt_lines_total",
            "Corrupt memo.jsonl lines skipped while preloading the memo.",
            &[("", load(&self.memo_corrupt_lines))],
        );

        let mut gauge = |name: &str, help: &str, v: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            "tbstc_queue_depth",
            "Admitted jobs waiting for a worker slot.",
            gauges.queue_depth.to_string(),
        );
        gauge(
            "tbstc_jobs_in_flight",
            "Jobs currently executing.",
            gauges.in_flight.to_string(),
        );
        let uptime = self.uptime_s().max(1e-9);
        let utilization =
            (load(&self.busy_us) as f64 / 1e6) / (uptime * gauges.job_workers.max(1) as f64);
        gauge(
            "tbstc_worker_utilization",
            "Fraction of worker capacity spent executing jobs since start.",
            format!("{:.6}", utilization.min(1.0)),
        );
        gauge(
            "tbstc_open_connections",
            "Live client connections in the event loop.",
            gauges.open_connections.to_string(),
        );
        gauge(
            "tbstc_uptime_seconds",
            "Seconds since the server started.",
            format!("{uptime:.3}"),
        );

        out.push_str(
            "# HELP tbstc_job_latency_seconds End-to-end job latency (admission to response).\n\
             # TYPE tbstc_job_latency_seconds histogram\n",
        );
        let mut cumulative = 0u64;
        for (bucket, bound) in self.latency_buckets.iter().zip(&LATENCY_BUCKETS_S) {
            cumulative += bucket.load(Ordering::Relaxed);
            out.push_str(&format!(
                "tbstc_job_latency_seconds_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        // The zip above stops at the named buckets; the one extra slot
        // is the overflow bucket.
        cumulative += self
            .latency_buckets
            .last()
            .map_or(0, |b| b.load(Ordering::Relaxed));
        out.push_str(&format!(
            "tbstc_job_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "tbstc_job_latency_seconds_sum {:.6}\n",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "tbstc_job_latency_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        out
    }
}

/// Point-in-time gauge values owned by other components, sampled at
/// scrape time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Admitted jobs waiting for a worker slot.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Job-worker slots the server schedules onto.
    pub job_workers: usize,
    /// Memo-cache hits across all engines.
    pub memo_hits: u64,
    /// Memo-cache misses across all engines.
    pub memo_misses: u64,
    /// Live client connections in the event loop.
    pub open_connections: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histogram() {
        let m = Metrics::new();
        m.requests_jobs.fetch_add(3, Ordering::Relaxed);
        m.jobs_ok.fetch_add(2, Ordering::Relaxed);
        m.disk_hits.fetch_add(1, Ordering::Relaxed);
        m.observe_latency(0.003);
        m.observe_latency(0.2);
        m.observe_latency(120.0); // lands in +Inf

        m.mem_hits.fetch_add(4, Ordering::Relaxed);
        m.jobs_executed.fetch_add(7, Ordering::Relaxed);
        m.jobs_coalesced.fetch_add(8, Ordering::Relaxed);
        m.jobs_batched.fetch_add(9, Ordering::Relaxed);
        m.jobs_accepted.fetch_add(12, Ordering::Relaxed);
        m.jobs_cancelled.fetch_add(13, Ordering::Relaxed);
        m.jobs_resumed.fetch_add(14, Ordering::Relaxed);
        m.sweep_chunks.fetch_add(15, Ordering::Relaxed);
        m.memo_corrupt_lines.fetch_add(16, Ordering::Relaxed);
        let text = m.render(&Gauges {
            queue_depth: 1,
            in_flight: 2,
            job_workers: 4,
            memo_hits: 5,
            memo_misses: 6,
            open_connections: 11,
        });
        assert!(text.contains("tbstc_requests_total{endpoint=\"jobs\"} 3"));
        assert!(text.contains("tbstc_cache_hits_total{tier=\"disk\"} 1"));
        assert!(text.contains("tbstc_cache_hits_total{tier=\"memo\"} 5"));
        assert!(text.contains("tbstc_cache_hits_total{tier=\"mem\"} 4"));
        assert!(text.contains("tbstc_jobs_executed_total 7"));
        assert!(text.contains("tbstc_jobs_coalesced_total 8"));
        assert!(text.contains("tbstc_jobs_batched_total 9"));
        assert!(text.contains("tbstc_jobs_total{outcome=\"accepted\"} 12"));
        assert!(text.contains("tbstc_jobs_cancelled_total 13"));
        assert!(text.contains("tbstc_jobs_resumed_total 14"));
        assert!(text.contains("tbstc_sweep_chunks_total 15"));
        assert!(text.contains("tbstc_memo_corrupt_lines_total 16"));
        assert!(text.contains("tbstc_open_connections 11"));
        assert!(text.contains("tbstc_queue_depth 1"));
        assert!(text.contains("tbstc_jobs_in_flight 2"));
        assert!(text.contains("tbstc_job_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tbstc_job_latency_seconds_count 3"));
        // Histogram buckets are cumulative.
        assert!(text.contains("tbstc_job_latency_seconds_bucket{le=\"0.005\"} 1"));
        assert!(text.contains("tbstc_job_latency_seconds_bucket{le=\"0.5\"} 2"));
    }

    #[test]
    fn mean_latency_defaults_then_tracks() {
        let m = Metrics::new();
        assert_eq!(m.mean_latency_s(1.5), 1.5);
        m.observe_latency(2.0);
        m.observe_latency(4.0);
        assert!((m.mean_latency_s(0.0) - 3.0).abs() < 1e-3);
    }
}
