//! tbstc-serve — a std-only HTTP job service for TB-STC simulations.
//!
//! The server accepts simulation and sweep jobs as JSON over HTTP/1.1
//! (plain `std::net`, no external dependencies), executes them on the
//! existing [`tbstc::runner::SweepRunner`] engine, and returns
//! deterministic, canonically-serialized results. Three properties the
//! rest of the workspace leans on:
//!
//! * **Admission control** — a bounded queue ([`queue::AdmissionQueue`])
//!   turns overload into `429 Too Many Requests` + `Retry-After` instead
//!   of unbounded memory growth; in-flight jobs are never dropped.
//! * **Persistent, content-addressed results** — the response body for a
//!   job is stored under a hash of its canonicalized spec
//!   ([`store::ResultStore`]); resubmitting the identical job — even
//!   across a server restart — returns byte-identical bytes with
//!   `X-Cache: hit`. The engine's memo cache persists through the same
//!   store (`memo.jsonl`).
//! * **Observability** — `GET /metrics` renders Prometheus text
//!   ([`metrics::Metrics`]): request/job counters, cache hits and misses
//!   by tier, queue depth, worker utilization, and a latency histogram.
//!
//! Graceful shutdown (SIGTERM / ctrl-c, [`signal`]) closes admission,
//! drains in-flight jobs, and flushes the memo cache before exit.
//!
//! See `DESIGN.md` §8 for the job-spec schema, cache-key derivation, and
//! backpressure policy; the `tbstc-cli` crate wires this up as the
//! `serve` and `submit` subcommands.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;
pub mod store;

pub use metrics::{Gauges, Metrics};
pub use queue::AdmissionQueue;
pub use server::{Handle, Running, ServeConfig, Server};
pub use store::{MemoEntry, ResultStore};
