//! tbstc-serve — a std-only HTTP job service for TB-STC simulations.
//!
//! The server accepts simulation and sweep jobs as JSON over HTTP/1.1
//! (plain `std::net`, no external dependencies), executes them on the
//! existing [`tbstc::runner::SweepRunner`] engine, and returns
//! deterministic, canonically-serialized results. The front end is a
//! non-blocking readiness loop ([`event`]) over `poll(2)` — one thread
//! owns every socket, with per-connection incremental HTTP/1.1 parsing,
//! keep-alive, and pipelining ([`conn`]); there is no `thread::sleep`
//! anywhere on the hot path (enforced by the `blocking-in-event-loop`
//! lint rule). Properties the rest of the workspace leans on:
//!
//! * **Admission control** — a bounded queue ([`queue::AdmissionQueue`])
//!   turns overload into `429 Too Many Requests` + `Retry-After` instead
//!   of unbounded memory growth; in-flight jobs are never dropped.
//! * **Coalescing** — identical in-flight specs share one execution
//!   (single-flight keyed by the content address), and same-bandwidth
//!   `simulate` jobs batch into one engine pass ([`coalesce`]).
//! * **Persistent, content-addressed results** — the response body for a
//!   job is stored under a hash of its canonicalized spec
//!   ([`store::ResultStore`], sharded by key prefix on disk), with a
//!   bounded sharded in-memory hot tier above it ([`lru::ShardedLru`]);
//!   resubmitting the identical job — even across a server restart —
//!   returns byte-identical bytes with `X-Cache: hit`. The engine's
//!   memo cache persists through the same store (`memo.jsonl`).
//! * **Observability** — `GET /metrics` renders Prometheus text
//!   ([`metrics::Metrics`]): request/job counters, cache hits and misses
//!   by tier (`mem`/`disk`/`memo`), coalescing counters, queue depth,
//!   open connections, worker utilization, and a latency histogram.
//!
//! Graceful shutdown (SIGTERM / ctrl-c, [`signal`]) closes admission,
//! drains in-flight jobs, and flushes the memo cache before exit.
//!
//! The readiness machinery is POSIX-only (`poll(2)` via a bare
//! `extern "C"` declaration, no external crate — same pattern as
//! [`signal`]).
//!
//! See `DESIGN.md` §8 for the job-spec schema, cache-key derivation, and
//! backpressure policy, and §12 for the event loop, coalescing, and
//! cache-shard layout; the `tbstc-cli` crate wires this up as the
//! `serve`, `submit`, and `loadgen` subcommands.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
pub mod conn;
pub mod event;
pub mod http;
pub mod jobs;
pub mod lru;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;
pub mod store;

pub use coalesce::{BatchExecutor, Dispatcher, Enqueue, QueuedJob};
pub use event::{poll_fds, PollFd, Waker, POLLERR, POLLHUP, POLLIN, POLLOUT};
pub use jobs::DurableQueue;
pub use lru::ShardedLru;
pub use metrics::{Gauges, Metrics};
pub use queue::{AdmissionQueue, OwnedTicket};
pub use server::{Handle, Running, ServeConfig, Server};
pub use store::{MemoEntry, ResultStore};
