//! The durable job queue: the in-process half of the durable-job
//! controller.
//!
//! `POST /v1/jobs` enqueues long jobs here (after persisting a `queued`
//! [`tbstc::jobstate::JobStatus`] in the store); a controller thread
//! drains the queue one job at a time, executing each sweep in
//! checkpointed chunks. The queue itself is deliberately dumb — ordered
//! keys plus a cancel set — because all durable state (status documents,
//! checkpoints, cross-process claims) lives in the store; this type only
//! coordinates threads inside one process.
//!
//! Cancellation has two faces: [`DurableQueue::request_cancel`] marks a
//! key in memory (checked between chunks by the executor in this
//! process), while the store-level cancel marker file reaches executors
//! in *other* processes sharing the store.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// FIFO of durable job keys plus the in-memory cancel set (see module
/// docs).
#[derive(Debug, Default)]
pub struct DurableQueue {
    queue: Mutex<VecDeque<String>>,
    wake: Condvar,
    cancels: Mutex<BTreeSet<String>>,
    closed: AtomicBool,
}

impl DurableQueue {
    /// An empty, open queue.
    pub fn new() -> DurableQueue {
        DurableQueue::default()
    }

    /// Enqueues `key` unless it is already waiting. Returns whether the
    /// key was newly enqueued. Keys submitted after [`DurableQueue::close`]
    /// are dropped (the controller is draining).
    pub fn submit(&self, key: &str) -> bool {
        if self.closed.load(Ordering::SeqCst) {
            return false;
        }
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.iter().any(|k| k == key) {
            return false;
        }
        q.push_back(key.to_string());
        drop(q);
        self.wake.notify_all();
        true
    }

    /// Blocks until a key is available, the queue closes (`None`), or
    /// `should_stop` returns true (`None`). `should_stop` is polled
    /// about every 100 ms, so shutdown never waits on a quiet queue.
    pub fn next(&self, should_stop: &dyn Fn() -> bool) -> Option<String> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(key) = q.pop_front() {
                return Some(key);
            }
            // tbstc-lint: allow(lock-order) — `.load` here is AtomicBool::load; the name-based call graph aliases it with store/cache `load` fns
            if self.closed.load(Ordering::SeqCst) || should_stop() {
                return None;
            }
            q = self
                .wake
                .wait_timeout(q, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Removes a still-queued key (a cancel that beat the controller to
    /// it). Returns whether the key was waiting.
    pub fn remove(&self, key: &str) -> bool {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let before = q.len();
        q.retain(|k| k != key);
        q.len() != before
    }

    /// Number of keys waiting (for gauges and tests).
    pub fn depth(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Marks `key` cancelled in this process; the executor checks
    /// between chunks via [`DurableQueue::cancel_requested`].
    pub fn request_cancel(&self, key: &str) {
        self.cancels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.to_string());
    }

    /// Whether an in-memory cancel is pending for `key`.
    pub fn cancel_requested(&self, key: &str) -> bool {
        self.cancels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(key)
    }

    /// Clears the in-memory cancel mark (after honoring it, or when the
    /// job is re-submitted).
    pub fn clear_cancel(&self, key: &str) {
        self.cancels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            // tbstc-lint: allow(lock-order) — HashSet::remove on the guard; the name-based call graph aliases it with DurableQueue::remove
            .remove(key);
    }

    /// Closes the queue: `submit` becomes a no-op and blocked `next`
    /// callers drain the backlog, then return `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Whether [`DurableQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const NEVER: &dyn Fn() -> bool = &|| false;

    #[test]
    fn submit_dedupes_and_preserves_fifo_order() {
        let q = DurableQueue::new();
        assert!(q.submit("a"));
        assert!(q.submit("b"));
        assert!(!q.submit("a"), "duplicate key must not enqueue twice");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.next(NEVER).as_deref(), Some("a"));
        assert_eq!(q.next(NEVER).as_deref(), Some("b"));
    }

    #[test]
    fn remove_pulls_a_waiting_key() {
        let q = DurableQueue::new();
        q.submit("a");
        q.submit("b");
        assert!(q.remove("a"));
        assert!(!q.remove("a"), "already removed");
        assert_eq!(q.next(NEVER).as_deref(), Some("b"));
    }

    #[test]
    fn close_wakes_blocked_consumer_and_drops_new_submissions() {
        let q = Arc::new(DurableQueue::new());
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.next(NEVER))
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert!(!q.submit("late"), "closed queue drops submissions");
        assert!(q.is_closed());
    }

    #[test]
    fn backlog_drains_after_close() {
        let q = DurableQueue::new();
        q.submit("a");
        q.close();
        assert_eq!(q.next(NEVER).as_deref(), Some("a"));
        assert_eq!(q.next(NEVER), None);
    }

    #[test]
    fn should_stop_interrupts_an_idle_wait() {
        let q = DurableQueue::new();
        assert_eq!(q.next(&|| true), None);
    }

    #[test]
    fn cancel_marks_roundtrip() {
        let q = DurableQueue::new();
        assert!(!q.cancel_requested("k"));
        q.request_cancel("k");
        assert!(q.cancel_requested("k"));
        q.clear_cancel("k");
        assert!(!q.cancel_requested("k"));
    }
}
