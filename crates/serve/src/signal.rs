//! SIGTERM / ctrl-c → graceful-shutdown flag.
//!
//! The workspace carries no `libc` crate, but the process already links
//! the platform C library, so a single `extern "C"` declaration of
//! `signal(2)` is all the unsafe surface we need. The handler does the
//! only async-signal-safe thing there is to do: set an atomic flag. The
//! accept loop polls it between non-blocking accepts.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    pub type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    pub fn install(signum: i32, handler: Handler) {
        // SAFETY: `signal` is the C library's signal(2); the handler only
        // stores to a static AtomicBool, which is async-signal-safe.
        unsafe {
            signal(signum, handler);
        }
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers that trip the shutdown flag. Safe to
/// call more than once; a no-op on non-unix platforms.
pub fn install_shutdown_handlers() {
    #[cfg(unix)]
    {
        sys::install(sys::SIGINT, on_signal);
        sys::install(sys::SIGTERM, on_signal);
    }
}

/// Whether a shutdown signal has arrived (or [`request_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trips the flag programmatically — what `Handle::shutdown` and the
/// oneshot path use, and what tests use instead of raising signals.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (between oneshot runs and tests in one process).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
        install_shutdown_handlers();
    }
}
