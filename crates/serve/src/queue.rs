//! Bounded admission with backpressure.
//!
//! The queue guards the expensive part of the service — simulation jobs —
//! with two limits:
//!
//! * **capacity** — the total number of admitted-but-unfinished jobs
//!   (waiting + executing). When reached, [`AdmissionQueue::try_enter`]
//!   refuses and the server answers `429 Too Many Requests` with a
//!   `Retry-After` hint instead of accepting unbounded work.
//! * **workers** — how many admitted jobs may execute concurrently; the
//!   rest wait on a condvar in FIFO-ish order (condvar wakeup order).
//!
//! Cheap endpoints (`/metrics`, `/healthz`) bypass the queue entirely, so
//! observability survives saturation.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

#[derive(Debug, Default)]
struct QueueState {
    waiting: usize,
    executing: usize,
    closed: bool,
}

/// The bounded admission queue (see module docs).
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
    workers: usize,
}

impl AdmissionQueue {
    /// Locks the state, recovering from poison: the counters are updated
    /// atomically under the lock (no invariant can be left half-written),
    /// so a panicking holder never invalidates them — and `Ticket::drop`
    /// must release its slot even mid-unwind or capacity would leak.
    fn guard(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Waits on the condvar, recovering from poison for the same reason.
    fn wait<'g>(&self, g: MutexGuard<'g, QueueState>) -> MutexGuard<'g, QueueState> {
        self.cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    /// A queue admitting at most `capacity` unfinished jobs, executing at
    /// most `workers` of them concurrently. Both are clamped to ≥ 1.
    pub fn new(capacity: usize, workers: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            workers: workers.max(1),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The concurrent-execution limit.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Tries to admit a job. `None` means the queue is full (or closed
    /// for shutdown) — reject with 429, no state was taken.
    pub fn try_enter(&self) -> Option<Ticket<'_>> {
        let mut s = self.guard();
        if s.closed || s.waiting + s.executing >= self.capacity {
            return None;
        }
        s.waiting += 1;
        Some(Ticket {
            queue: self,
            executing: false,
        })
    }

    /// Like [`AdmissionQueue::try_enter`], but the slot is held by an
    /// owned handle backed by an `Arc`, so it can outlive the admitting
    /// scope — the coalescing dispatcher stores tickets in its queue
    /// until a worker picks the job up.
    pub fn try_enter_owned(self: &Arc<Self>) -> Option<OwnedTicket> {
        let mut s = self.guard();
        if s.closed || s.waiting + s.executing >= self.capacity {
            return None;
        }
        s.waiting += 1;
        Some(OwnedTicket {
            queue: Arc::clone(self),
            executing: false,
        })
    }

    /// `(waiting, executing)` right now.
    pub fn depth(&self) -> (usize, usize) {
        let s = self.guard();
        (s.waiting, s.executing)
    }

    /// Whether no admitted job remains (drained).
    pub fn is_idle(&self) -> bool {
        let s = self.guard();
        s.waiting == 0 && s.executing == 0
    }

    /// Stops admitting new jobs; jobs already admitted keep their slots
    /// and run to completion (the graceful-shutdown drain).
    pub fn close(&self) {
        self.guard().closed = true;
        self.cv.notify_all();
    }

    /// Blocks until every admitted job has finished.
    pub fn wait_idle(&self) {
        let mut s = self.guard();
        while s.waiting + s.executing > 0 {
            s = self.wait(s);
        }
    }
}

/// An admitted job's slot. Dropping it releases the slot (whether the
/// job ran or not), so a panicking handler can never leak capacity.
#[derive(Debug)]
pub struct Ticket<'q> {
    queue: &'q AdmissionQueue,
    executing: bool,
}

impl Ticket<'_> {
    /// Waits for a worker slot, then transitions waiting → executing.
    pub fn begin(&mut self) {
        let mut s = self.queue.guard();
        while s.executing >= self.queue.workers {
            s = self.queue.wait(s);
        }
        s.waiting -= 1;
        s.executing += 1;
        self.executing = true;
        drop(s);
        // Depth changed; wake metrics-free waiters (other begins/drains).
        self.queue.cv.notify_all();
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let mut s = self.queue.guard();
        if self.executing {
            s.executing -= 1;
        } else {
            s.waiting -= 1;
        }
        drop(s);
        self.queue.cv.notify_all();
    }
}

/// The owned counterpart of [`Ticket`]: same slot semantics (dropping
/// releases, even mid-unwind), but holds the queue by `Arc` so it can
/// be stored — e.g. in the dispatcher's pending-job map.
#[derive(Debug)]
pub struct OwnedTicket {
    queue: Arc<AdmissionQueue>,
    executing: bool,
}

impl OwnedTicket {
    /// Waits for a worker slot, then transitions waiting → executing.
    pub fn begin(&mut self) {
        let mut s = self.queue.guard();
        while s.executing >= self.queue.workers {
            s = self.queue.wait(s);
        }
        s.waiting -= 1;
        s.executing += 1;
        self.executing = true;
        drop(s);
        self.queue.cv.notify_all();
    }
}

impl Drop for OwnedTicket {
    fn drop(&mut self) {
        let mut s = self.queue.guard();
        if self.executing {
            s.executing -= 1;
        } else {
            s.waiting -= 1;
        }
        drop(s);
        self.queue.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let q = AdmissionQueue::new(2, 1);
        let a = q.try_enter().expect("first fits");
        let b = q.try_enter().expect("second fits");
        assert!(q.try_enter().is_none(), "third must be rejected");
        drop(a);
        let c = q.try_enter().expect("slot freed");
        drop(b);
        drop(c);
        assert!(q.is_idle());
    }

    #[test]
    fn begin_respects_worker_limit() {
        let q = Arc::new(AdmissionQueue::new(4, 1));
        let mut first = q.try_enter().unwrap();
        first.begin();
        assert_eq!(q.depth(), (0, 1));

        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            let mut t = q2.try_enter().unwrap();
            t.begin(); // blocks until `first` drops
            q2.depth()
        });
        // Give the waiter time to block on the worker limit.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(q.depth(), (1, 1), "second job queued, not executing");
        drop(first);
        let depth = waiter.join().unwrap();
        assert_eq!(depth.1, 1, "waiter got the worker slot");
        q.wait_idle();
    }

    #[test]
    fn dropped_ticket_never_leaks_capacity() {
        let q = AdmissionQueue::new(1, 1);
        {
            let _t = q.try_enter().unwrap();
            assert!(q.try_enter().is_none());
        }
        assert!(q.try_enter().is_some(), "slot returned on drop");
    }

    #[test]
    fn owned_tickets_share_capacity_and_release_on_drop() {
        let q = Arc::new(AdmissionQueue::new(2, 1));
        let a = q.try_enter_owned().expect("first fits");
        let _b = q.try_enter().expect("borrowed shares the same pool");
        assert!(q.try_enter_owned().is_none(), "capacity exhausted");
        drop(a);
        let mut c = q.try_enter_owned().expect("slot freed");
        c.begin();
        assert_eq!(q.depth().1, 1);
        drop(c);
    }

    #[test]
    fn close_stops_admission_but_keeps_in_flight() {
        let q = AdmissionQueue::new(4, 2);
        let mut t = q.try_enter().unwrap();
        t.begin();
        q.close();
        assert!(q.try_enter().is_none(), "closed queue admits nothing");
        assert_eq!(q.depth(), (0, 1), "in-flight job keeps running");
        drop(t);
        q.wait_idle();
    }
}
