//! The non-blocking readiness loop: `poll(2)` shim, wakeup channel,
//! completion queue, and the connection slab.
//!
//! Architecture: one event-loop thread owns every socket. It polls the
//! listener, a waker pipe, and each live [`crate::conn::Conn`] for
//! readiness, then does single non-blocking `read`/`write` calls —
//! never a blocking syscall, never a `thread::sleep`. Job execution
//! happens on the [`crate::coalesce::Dispatcher`] worker threads; when
//! a job finishes, the worker pushes a [`Completion`] and tickles the
//! [`Waker`], which makes the poll call return so the response can be
//! routed back to its connection.
//!
//! The `poll(2)` binding follows the same pattern as
//! [`crate::signal`]: a bare `extern "C"` declaration against the
//! platform C library that `std` already links, so no external crate
//! is needed. This module is POSIX-only, like the rest of the serve
//! front end's readiness machinery.
//!
//! Tokens carry a slab generation counter so a completion for a
//! connection that died (and whose slot was reused) is dropped instead
//! of being delivered to the new occupant.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::conn::{Conn, ConnEvent};
use crate::http::{Request, Response};

/// Readable readiness (POLLIN).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (POLLOUT).
pub const POLLOUT: i16 = 0x004;
/// Error condition (POLLERR, revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hangup (POLLHUP, revents only).
pub const POLLHUP: i16 = 0x010;

/// One entry for `poll(2)`: fd, requested events, kernel-filled
/// revents. Layout must match the C `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: i32,
    /// Requested readiness mask ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported readiness, valid after [`poll_fds`] returns.
    pub revents: i16,
}

impl PollFd {
    /// Builds an entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! Raw binding to the C library's `poll`, which `std` links anyway.
    use super::PollFd;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Thin safe wrapper; EINTR is reported as zero ready fds so
    /// callers simply re-poll.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `fds` is an exclusively borrowed slice of repr(C)
        // pollfd records valid for the duration of the call; the kernel
        // only writes `revents` within the `fds.len()` bound we pass.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(unix)]
pub use sys::poll_fds;

/// Wakes the event loop from worker threads by writing one byte to a
/// loopback socket pair registered with the poller.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Makes the blocked `poll` call return. Best-effort: a full pipe
    /// means a wakeup is already pending, which is all we need.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// Creates the waker and the receive end the event loop registers and
/// drains. Built on a loopback TCP pair so no platform pipe API is
/// needed.
///
/// # Errors
///
/// Propagates socket setup failures.
pub fn waker_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((Waker { tx }, rx))
}

/// Routes a finished job's response back to the connection that asked.
#[derive(Debug)]
pub struct Completion {
    /// Which connection slot + pipeline position to fill.
    pub token: Token,
    /// The response to serialize into that slot.
    pub response: Response,
}

/// Thread-safe queue of finished responses, paired with the waker so
/// pushes interrupt the poll wait.
#[derive(Debug)]
pub struct Completions {
    q: Mutex<VecDeque<Completion>>,
    waker: Waker,
}

impl Completions {
    /// Creates the queue around the loop's waker.
    pub fn new(waker: Waker) -> Self {
        Self {
            q: Mutex::new(VecDeque::with_capacity(64)),
            waker,
        }
    }

    /// Enqueues one completion and wakes the loop.
    pub fn push(&self, token: Token, response: Response) {
        {
            let mut q = self.q.lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(Completion { token, response });
        }
        self.waker.wake();
    }

    /// Enqueues a batch under one lock acquisition and wakes once.
    pub fn push_all(&self, batch: Vec<Completion>) {
        if batch.is_empty() {
            return;
        }
        {
            let mut q = self.q.lock().unwrap_or_else(PoisonError::into_inner);
            q.extend(batch);
        }
        self.waker.wake();
    }

    /// Takes everything queued (event-loop side).
    pub fn drain(&self) -> VecDeque<Completion> {
        let mut q = self.q.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *q)
    }
}

/// Opaque handle tying an in-flight request to (connection slot,
/// slab generation, pipeline sequence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    idx: usize,
    generation: u64,
    seq: u64,
}

impl Token {
    /// Test-only constructor for dispatcher tests that never deliver.
    #[cfg(test)]
    pub(crate) fn test_token(idx: usize, generation: u64, seq: u64) -> Self {
        Self {
            idx,
            generation,
            seq,
        }
    }
}

/// What the router is handed per parsed event.
#[derive(Debug)]
pub enum RouteEvent {
    /// A complete well-formed request.
    Request(Request),
    /// A protocol violation (the connection closes after the reply).
    Protocol {
        /// Suggested response status (400/413/431).
        status: u16,
        /// Reason for the error body.
        message: String,
    },
}

/// The router's verdict for an event.
#[derive(Debug)]
pub enum Action {
    /// Respond immediately (cache hit, metrics, errors, ...).
    Reply(Response),
    /// A worker owns the request; a [`Completion`] will arrive later.
    Pending,
}

/// Tunables for [`run_loop`].
#[derive(Clone, Copy, Debug)]
pub struct LoopOptions {
    /// Hard cap on simultaneously open connections; the listener is
    /// simply not polled while at the cap.
    pub max_connections: usize,
    /// Idle connections (no pending work) past this age are closed.
    pub idle_timeout: Duration,
    /// After shutdown is requested, in-flight jobs get this long to
    /// complete and flush before the loop exits.
    pub drain_grace: Duration,
    /// Poll timeout — the loop's housekeeping tick (shutdown checks,
    /// idle sweeps). This is a readiness wait, not a sleep: any I/O or
    /// completion interrupts it immediately.
    pub tick: Duration,
}

impl Default for LoopOptions {
    fn default() -> Self {
        Self {
            max_connections: 8192,
            idle_timeout: Duration::from_secs(60),
            drain_grace: Duration::from_secs(10),
            tick: Duration::from_millis(200),
        }
    }
}

/// A slab slot: the connection plus the generation stamped into tokens.
#[derive(Debug)]
struct ConnSlot {
    conn: Conn,
    generation: u64,
}

/// What each poll entry refers back to.
#[derive(Clone, Copy, Debug)]
enum PollTarget {
    Listener,
    Waker,
    Conn(usize),
}

/// Runs the readiness loop until `shutting_down` turns true and the
/// drain grace expires (or all connections finish earlier).
///
/// `connections` is kept equal to the number of live sockets for the
/// metrics gauge. `route` is called on the loop thread and must not
/// block: it either replies from cache/static state or hands the job
/// to a dispatcher and returns [`Action::Pending`].
#[cfg(unix)]
pub fn run_loop(
    listener: &TcpListener,
    waker_rx: &TcpStream,
    completions: &Completions,
    shutting_down: &dyn Fn() -> bool,
    route: &mut dyn FnMut(RouteEvent, Token) -> Action,
    connections: &AtomicUsize,
    opts: &LoopOptions,
) {
    let mut slots: Vec<Option<ConnSlot>> = Vec::with_capacity(64);
    let mut free: Vec<usize> = Vec::with_capacity(64);
    let mut generation: u64 = 0;
    let mut fds: Vec<PollFd> = Vec::with_capacity(64);
    let mut targets: Vec<PollTarget> = Vec::with_capacity(64);
    let mut drain_deadline: Option<Instant> = None;
    let tick_ms = i32::try_from(opts.tick.as_millis()).unwrap_or(200).max(1);

    loop {
        let shutting = shutting_down();
        let live = slots.iter().filter(|s| s.is_some()).count();
        connections.store(live, Ordering::Relaxed);
        if shutting {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + opts.drain_grace);
            let busy = slots
                .iter()
                .flatten()
                .any(|s| s.conn.has_pending() || s.conn.wants_write());
            if !busy || Instant::now() >= deadline {
                break;
            }
        }

        fds.clear();
        targets.clear();
        if !shutting && live < opts.max_connections {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
            targets.push(PollTarget::Listener);
        }
        fds.push(PollFd::new(waker_rx.as_raw_fd(), POLLIN));
        targets.push(PollTarget::Waker);
        for (idx, slot) in slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let mut events: i16 = 0;
            if !shutting && slot.conn.wants_read() {
                events |= POLLIN;
            }
            if slot.conn.wants_write() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(slot.conn.stream().as_raw_fd(), events));
                targets.push(PollTarget::Conn(idx));
            }
        }

        if poll_fds(&mut fds, tick_ms).is_err() {
            // Unrecoverable poll failure: nothing sane to do but stop.
            break;
        }

        for (entry, target) in fds.iter().zip(targets.iter()) {
            if entry.revents == 0 {
                continue;
            }
            match *target {
                PollTarget::Listener => {
                    accept_ready(
                        listener,
                        &mut slots,
                        &mut free,
                        &mut generation,
                        opts.max_connections,
                    );
                }
                PollTarget::Waker => {
                    drain_waker(waker_rx);
                }
                PollTarget::Conn(idx) => {
                    let readable = entry.revents & (POLLIN | POLLERR | POLLHUP) != 0;
                    let writable = entry.revents & POLLOUT != 0;
                    service_conn(&mut slots, idx, readable, writable, route);
                }
            }
        }

        for done in completions.drain() {
            deliver(&mut slots, done);
        }

        reap(&mut slots, &mut free, shutting, opts.idle_timeout);
    }

    connections.store(0, Ordering::Relaxed);
}

/// Accepts until `WouldBlock`, installing each stream into the slab.
/// No sleeps: a transient accept error just defers to the next poll.
fn accept_ready(
    listener: &TcpListener,
    slots: &mut Vec<Option<ConnSlot>>,
    free: &mut Vec<usize>,
    generation: &mut u64,
    max_connections: usize,
) {
    let mut live = slots.iter().filter(|s| s.is_some()).count();
    loop {
        if live >= max_connections {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let Ok(conn) = Conn::new(stream) else {
                    continue;
                };
                *generation += 1;
                let slot = ConnSlot {
                    conn,
                    generation: *generation,
                };
                if let Some(idx) = free.pop() {
                    if let Some(entry) = slots.get_mut(idx) {
                        *entry = Some(slot);
                    }
                } else {
                    slots.push(Some(slot));
                }
                live += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Drains wakeup bytes so the pipe never fills.
fn drain_waker(waker_rx: &TcpStream) {
    let mut sink = [0u8; 256];
    loop {
        match (&*waker_rx).read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
}

/// Reads/parses/routes a ready connection, then flushes.
fn service_conn(
    slots: &mut [Option<ConnSlot>],
    idx: usize,
    readable: bool,
    writable: bool,
    route: &mut dyn FnMut(RouteEvent, Token) -> Action,
) {
    let Some(slot) = slots.get_mut(idx).and_then(Option::as_mut) else {
        return;
    };
    if readable {
        for event in slot.conn.read_ready() {
            let (seq, route_event) = match event {
                ConnEvent::Request { seq, request } => (seq, RouteEvent::Request(request)),
                ConnEvent::Protocol {
                    seq,
                    status,
                    message,
                } => (seq, RouteEvent::Protocol { status, message }),
            };
            let token = Token {
                idx,
                generation: slot.generation,
                seq,
            };
            match route(route_event, token) {
                Action::Reply(response) => slot.conn.complete(seq, &response),
                Action::Pending => {}
            }
        }
    }
    if writable || slot.conn.wants_write() {
        slot.conn.flush();
    }
}

/// Fills a completion into its connection, unless the slot was reused
/// (generation mismatch) or already closed.
fn deliver(slots: &mut [Option<ConnSlot>], done: Completion) {
    let Some(slot) = slots.get_mut(done.token.idx).and_then(Option::as_mut) else {
        return;
    };
    if slot.generation != done.token.generation {
        return;
    }
    slot.conn.complete(done.token.seq, &done.response);
    slot.conn.flush();
}

/// Closes finished and idle connections, returning slots to the free
/// list.
fn reap(
    slots: &mut [Option<ConnSlot>],
    free: &mut Vec<usize>,
    shutting: bool,
    idle_timeout: Duration,
) {
    let now = Instant::now();
    for (idx, entry) in slots.iter_mut().enumerate() {
        let Some(slot) = entry else { continue };
        let idle = !slot.conn.has_pending()
            && !slot.conn.wants_write()
            && now.duration_since(slot.conn.last_activity()) > idle_timeout;
        let drained = shutting && !slot.conn.has_pending() && !slot.conn.wants_write();
        if slot.conn.is_done() || idle || drained {
            *entry = None;
            free.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_interrupts_poll_wait() {
        let (waker, rx) = waker_pair().expect("waker pair");
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let started = Instant::now();
        waker.wake();
        let n = poll_fds(&mut fds, 5_000).expect("poll");
        assert_eq!(n, 1, "waker byte must make poll return");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "poll should return promptly"
        );
        drain_waker(&rx);
        // After draining, a short poll times out with nothing ready.
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).expect("poll");
        assert_eq!(n, 0);
    }

    #[test]
    fn completions_queue_roundtrip_preserves_order() {
        let (waker, _rx) = waker_pair().expect("waker pair");
        let completions = Completions::new(waker);
        let t1 = Token {
            idx: 0,
            generation: 1,
            seq: 0,
        };
        let t2 = Token {
            idx: 3,
            generation: 9,
            seq: 4,
        };
        completions.push(t1, Response::new(200).text("a"));
        completions.push(t2, Response::new(500).text("b"));
        let drained = completions.drain();
        let tokens: Vec<Token> = drained.iter().map(|c| c.token).collect();
        assert_eq!(tokens, vec![t1, t2]);
        assert!(completions.drain().is_empty());
    }
}
