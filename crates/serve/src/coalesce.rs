//! Request coalescing: single-flight per content address, plus
//! batching of small `simulate` jobs into one engine pass.
//!
//! The dispatcher sits between the event loop and the engine:
//!
//! * **Single-flight** — a spec is identified by its FNV-1a-128
//!   content address ([`tbstc::jobspec::JobSpec::cache_key`]). While a
//!   key is queued or executing, further requests for the same key
//!   *attach as waiters* instead of taking admission slots; one
//!   execution fans its response out to every waiter.
//! * **Batching** — when a worker picks up a job, it drains every other
//!   queued `simulate` job with the same bandwidth configuration into
//!   one batch (up to [`MAX_BATCH`]) and warms them through a single
//!   `SweepRunner::run_models` call, so PR 6's `BlockPlan` batching
//!   amortizes across independent HTTP requests. Sweeps run singly —
//!   they are already internally batched.
//!
//! Workers are plain threads (this module is *not* on the event loop's
//! no-blocking path); responses travel back via
//! [`crate::event::Completions`], which wakes the poll loop.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use tbstc::jobspec::JobSpec;

use crate::event::{Completion, Completions, Token};
use crate::http::Response;
use crate::queue::{AdmissionQueue, OwnedTicket};

/// Maximum queued `simulate` jobs drained into one engine batch.
pub const MAX_BATCH: usize = 32;

/// A deduplicated job handed to the executor.
#[derive(Debug)]
pub struct QueuedJob {
    /// Content address (the single-flight key).
    pub key: String,
    /// The canonical spec.
    pub spec: JobSpec,
}

/// Executes batches of deduplicated specs. Implemented by the server
/// (engine + store + metrics) and by test fakes; must return exactly
/// one response per job, in order.
pub trait BatchExecutor: Send + Sync {
    /// Runs `jobs` and returns one response per entry.
    fn execute(&self, jobs: &[QueuedJob]) -> Vec<Response>;
}

/// Called once per delivered waiter with the response and the waiter's
/// queue-to-response latency (the server wires this to metrics).
pub type FinishFn = dyn Fn(&Response, Duration) + Send + Sync;

/// Outcome of [`Dispatcher::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Admitted as a new job (took an admission slot).
    Queued,
    /// Attached to an identical in-flight or queued job — no new slot,
    /// no new execution.
    Coalesced,
    /// Admission queue full or closed: answer 429.
    Rejected,
}

#[derive(Debug)]
struct PendingJob {
    spec: JobSpec,
    waiters: Vec<(Token, Instant)>,
    ticket: OwnedTicket,
    batchable: bool,
    bandwidth_bits: u64,
}

#[derive(Default)]
struct DispatchState {
    queued: BTreeMap<String, PendingJob>,
    /// FIFO pickup order over `queued` keys.
    order: VecDeque<String>,
    /// Executing keys → waiters (late arrivals attach here too).
    inflight: BTreeMap<String, Vec<(Token, Instant)>>,
    closed: bool,
}

struct Inner {
    state: Mutex<DispatchState>,
    cv: Condvar,
    executor: Arc<dyn BatchExecutor>,
    completions: Arc<Completions>,
    finish: Arc<FinishFn>,
    hold: Duration,
}

impl Inner {
    fn guard(&self) -> MutexGuard<'_, DispatchState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The coalescing dispatcher: owns the worker threads.
pub struct Dispatcher {
    inner: Arc<Inner>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Dispatcher {
    /// Starts `workers` worker threads. `hold` artificially extends
    /// each pickup (the `--hold-ms` testing knob); `finish` is invoked
    /// once per delivered waiter.
    pub fn start(
        workers: usize,
        hold: Duration,
        executor: Arc<dyn BatchExecutor>,
        completions: Arc<Completions>,
        finish: Arc<FinishFn>,
    ) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(DispatchState::default()),
            cv: Condvar::new(),
            executor,
            completions,
            finish,
            hold,
        });
        let mut threads = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let inner = Arc::clone(&inner);
            let handle = thread::Builder::new()
                .name(format!("tbstc-worker-{i}"))
                .spawn(move || worker_loop(&inner))
                .ok();
            if let Some(handle) = handle {
                threads.push(handle);
            }
        }
        Self { inner, threads }
    }

    /// Submits a job from the event loop. Never blocks: either attaches
    /// to an identical in-flight/queued job, admits a new one, or
    /// rejects.
    pub fn submit(
        &self,
        queue: &Arc<AdmissionQueue>,
        key: &str,
        spec: JobSpec,
        token: Token,
        started: Instant,
    ) -> Enqueue {
        let mut s = self.inner.guard();
        if s.closed {
            return Enqueue::Rejected;
        }
        if let Some(waiters) = s.inflight.get_mut(key) {
            waiters.push((token, started));
            return Enqueue::Coalesced;
        }
        if let Some(pending) = s.queued.get_mut(key) {
            pending.waiters.push((token, started));
            return Enqueue::Coalesced;
        }
        let Some(ticket) = queue.try_enter_owned() else {
            return Enqueue::Rejected;
        };
        let batchable = matches!(spec, JobSpec::Simulate(_));
        let bandwidth_bits = spec.bandwidth_gbps().to_bits();
        s.queued.insert(
            key.to_string(),
            PendingJob {
                spec,
                waiters: vec![(token, started)],
                ticket,
                batchable,
                bandwidth_bits,
            },
        );
        s.order.push_back(key.to_string());
        drop(s);
        self.inner.cv.notify_one();
        Enqueue::Queued
    }

    /// Queued + in-flight distinct jobs (for the depth gauge).
    pub fn depth(&self) -> usize {
        let s = self.inner.guard();
        s.queued.len() + s.inflight.len()
    }

    /// Stops accepting work, wakes the workers, and joins them after
    /// they finish everything already queued.
    pub fn close_and_join(self) {
        {
            let mut s = self.inner.guard();
            s.closed = true;
        }
        self.inner.cv.notify_all();
        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

/// One worker: pick up a batch, execute, deliver, repeat.
fn worker_loop(inner: &Inner) {
    loop {
        let Some(pickup) = next_batch(inner) else {
            return;
        };
        run_batch(inner, pickup);
    }
}

struct Pickup {
    jobs: Vec<QueuedJob>,
    tickets: Vec<OwnedTicket>,
}

/// Blocks until work is queued (or the dispatcher closes and drains),
/// then drains one batch: the FIFO head plus, if it is a `simulate`,
/// every other queued `simulate` with the same bandwidth bits.
fn next_batch(inner: &Inner) -> Option<Pickup> {
    let mut s = inner.guard();
    let lead_key = loop {
        if let Some(key) = s.order.pop_front() {
            break key;
        }
        if s.closed {
            return None;
        }
        s = inner.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
    };
    let Some(lead) = s.queued.remove(&lead_key) else {
        // Key vanished (should not happen); retry from the top.
        drop(s);
        return next_batch(inner);
    };
    let mut jobs = Vec::with_capacity(4);
    let mut tickets = Vec::with_capacity(4);
    let batch_bits = lead.batchable.then_some(lead.bandwidth_bits);
    s.inflight.insert(lead_key.clone(), lead.waiters);
    jobs.push(QueuedJob {
        key: lead_key,
        spec: lead.spec,
    });
    tickets.push(lead.ticket);
    if let Some(bits) = batch_bits {
        let mut keep: VecDeque<String> = VecDeque::with_capacity(s.order.len());
        while let Some(key) = s.order.pop_front() {
            if jobs.len() >= MAX_BATCH {
                keep.push_back(key);
                continue;
            }
            let joins = s
                .queued
                .get(&key)
                .is_some_and(|p| p.batchable && p.bandwidth_bits == bits);
            if !joins {
                keep.push_back(key);
                continue;
            }
            let Some(p) = s.queued.remove(&key) else {
                continue;
            };
            s.inflight.insert(key.clone(), p.waiters);
            jobs.push(QueuedJob { key, spec: p.spec });
            tickets.push(p.ticket);
        }
        s.order = keep;
    }
    drop(s);
    Some(Pickup { jobs, tickets })
}

/// Executes a pickup and fans responses out to every waiter.
fn run_batch(inner: &Inner, mut pickup: Pickup) {
    // Only the lead ticket takes a worker slot: the whole batch is one
    // engine pass, and follower tickets beginning would deadlock a
    // single-worker queue against itself.
    if let Some(lead) = pickup.tickets.first_mut() {
        lead.begin();
    }
    if !inner.hold.is_zero() {
        thread::sleep(inner.hold);
    }
    let mut responses = inner.executor.execute(&pickup.jobs);
    while responses.len() < pickup.jobs.len() {
        responses
            .push(Response::new(500).json("{\"error\":\"executor returned too few responses\"}"));
    }
    let mut delivery: Vec<Completion> = Vec::with_capacity(pickup.jobs.len());
    {
        let mut s = inner.guard();
        for (job, response) in pickup.jobs.iter().zip(responses) {
            let Some(waiters) = s.inflight.remove(&job.key) else {
                continue;
            };
            for (token, started) in waiters {
                (inner.finish)(&response, started.elapsed());
                delivery.push(Completion {
                    token,
                    response: response.clone(),
                });
            }
        }
    }
    inner.completions.push_all(delivery);
    // Tickets drop here: admission capacity is released only after the
    // responses are queued for delivery.
    drop(pickup.tickets);
    inner.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::waker_pair;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn spec(seed: u64) -> JobSpec {
        JobSpec::from_json(&format!(
            r#"{{"type":"simulate","arch":"tb-stc","model":{{"kind":"gcn","nodes":64,"features":16}},"sparsity":0.5,"seed":{seed}}}"#
        ))
        .expect("valid spec")
    }

    fn token() -> Token {
        // Tokens are opaque; any value works here since nothing drains
        // the completions queue in these tests.
        Token::test_token(0, 0, 0)
    }

    /// Executor that blocks until released, recording every call.
    struct GatedExec {
        calls: AtomicUsize,
        batch_sizes: Mutex<Vec<usize>>,
        gate: Mutex<mpsc::Receiver<()>>,
    }

    impl BatchExecutor for GatedExec {
        fn execute(&self, jobs: &[QueuedJob]) -> Vec<Response> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.batch_sizes
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(jobs.len());
            let _ = self
                .gate
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv_timeout(Duration::from_secs(5));
            jobs.iter()
                .map(|j| Response::new(200).text(format!("done:{}\n", j.key)))
                .collect()
        }
    }

    fn harness(
        workers: usize,
        capacity: usize,
    ) -> (
        Dispatcher,
        Arc<AdmissionQueue>,
        Arc<GatedExec>,
        mpsc::Sender<()>,
    ) {
        let (waker, _rx) = waker_pair().expect("waker");
        let completions = Arc::new(Completions::new(waker));
        let (gate_tx, gate_rx) = mpsc::channel();
        let exec = Arc::new(GatedExec {
            calls: AtomicUsize::new(0),
            batch_sizes: Mutex::new(Vec::new()),
            gate: Mutex::new(gate_rx),
        });
        let queue = Arc::new(AdmissionQueue::new(capacity, workers));
        let dispatcher = Dispatcher::start(
            workers,
            Duration::ZERO,
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
            completions,
            Arc::new(|_, _| {}),
        );
        (dispatcher, queue, exec, gate_tx)
    }

    fn wait_until(deadline_ms: u64, cond: impl Fn() -> bool) {
        for _ in 0..deadline_ms {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
        assert!(cond(), "condition not reached in {deadline_ms}ms");
    }

    #[test]
    fn identical_concurrent_specs_execute_exactly_once() {
        let (dispatcher, queue, exec, gate) = harness(1, 16);
        // Occupy the single worker with a blocker job.
        let blocker = spec(999);
        let key_b = blocker.cache_key();
        assert_eq!(
            dispatcher.submit(&queue, &key_b, blocker, token(), Instant::now()),
            Enqueue::Queued
        );
        wait_until(2000, || exec.calls.load(Ordering::SeqCst) == 1);

        // N identical submissions while the worker is busy: one queues,
        // the rest coalesce onto it.
        let shared = spec(7);
        let key_s = shared.cache_key();
        let n = 8;
        let mut outcomes = Vec::with_capacity(n);
        for _ in 0..n {
            outcomes.push(dispatcher.submit(&queue, &key_s, spec(7), token(), Instant::now()));
        }
        let queued = outcomes.iter().filter(|o| **o == Enqueue::Queued).count();
        let coalesced = outcomes
            .iter()
            .filter(|o| **o == Enqueue::Coalesced)
            .count();
        assert_eq!((queued, coalesced), (1, n - 1));

        // Release the blocker, then the shared job.
        gate.send(()).expect("release blocker");
        wait_until(2000, || exec.calls.load(Ordering::SeqCst) == 2);
        gate.send(()).expect("release shared");
        wait_until(2000, || dispatcher.depth() == 0);
        // Exactly two executions total: blocker + ONE for the N
        // identical specs.
        assert_eq!(exec.calls.load(Ordering::SeqCst), 2);
        dispatcher.close_and_join();
        queue.wait_idle();
    }

    #[test]
    fn distinct_simulate_jobs_batch_into_one_pickup() {
        let (dispatcher, queue, exec, gate) = harness(1, 16);
        let blocker = spec(999);
        let key_b = blocker.cache_key();
        dispatcher.submit(&queue, &key_b, blocker, token(), Instant::now());
        wait_until(2000, || exec.calls.load(Ordering::SeqCst) == 1);

        // Four distinct specs queue behind the blocker.
        for seed in 0..4 {
            let s = spec(seed);
            let key = s.cache_key();
            assert_eq!(
                dispatcher.submit(&queue, &key, s, token(), Instant::now()),
                Enqueue::Queued
            );
        }
        gate.send(()).expect("release blocker");
        wait_until(2000, || exec.calls.load(Ordering::SeqCst) == 2);
        gate.send(()).expect("release batch");
        wait_until(2000, || dispatcher.depth() == 0);
        let sizes = exec
            .batch_sizes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        assert_eq!(sizes, vec![1, 4], "four queued jobs must form one batch");
        dispatcher.close_and_join();
        queue.wait_idle();
    }

    #[test]
    fn full_queue_rejects_new_keys_but_still_coalesces() {
        let (dispatcher, queue, exec, gate) = harness(1, 1);
        let a = spec(1);
        let key_a = a.cache_key();
        assert_eq!(
            dispatcher.submit(&queue, &key_a, a, token(), Instant::now()),
            Enqueue::Queued
        );
        wait_until(2000, || exec.calls.load(Ordering::SeqCst) == 1);
        // Distinct key: no capacity left.
        let b = spec(2);
        let key_b = b.cache_key();
        assert_eq!(
            dispatcher.submit(&queue, &key_b, b, token(), Instant::now()),
            Enqueue::Rejected
        );
        // Identical key: attaches without needing capacity.
        assert_eq!(
            dispatcher.submit(&queue, &key_a, spec(1), token(), Instant::now()),
            Enqueue::Coalesced
        );
        gate.send(()).expect("release");
        wait_until(2000, || dispatcher.depth() == 0);
        dispatcher.close_and_join();
        queue.wait_idle();
    }
}
