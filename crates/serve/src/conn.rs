//! Per-connection state machines for the event loop.
//!
//! Each accepted socket gets a [`Conn`]: an incremental HTTP/1.1
//! request parser ([`RequestParser`]) feeding a pipeline of response
//! slots, plus a buffered non-blocking writer with backpressure. The
//! event loop ([`crate::event`]) owns the readiness notification; this
//! module owns all per-socket protocol state, so it can be unit-tested
//! byte-by-byte without a socket.
//!
//! Protocol rules implemented here:
//! - requests may arrive split across arbitrarily many reads, or many
//!   per read (pipelining);
//! - the request line is capped at [`MAX_REQUEST_LINE_BYTES`] and the
//!   head at [`crate::http::MAX_HEAD_BYTES`] — beyond either the
//!   connection gets a `431` and closes (we cannot resync);
//! - bodies are capped at [`crate::http::MAX_BODY_BYTES`] (`413`);
//! - malformed heads get a `400` and close the connection, but a *valid*
//!   request carrying a malformed job spec is routed normally, answered
//!   `400`, and the connection stays usable (application errors do not
//!   poison the transport);
//! - responses are written in request order regardless of completion
//!   order, so pipelined clients always see matching replies.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{Request, Response, MAX_BODY_BYTES, MAX_HEAD_BYTES};

/// Cap on the request line alone; an overlong first line means a
/// confused or abusive client and earns a `431` before the full head
/// cap is reached.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Stop reading new requests once this many unflushed response bytes
/// are queued — write-buffer backpressure against slow readers.
pub const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Maximum pipelined requests awaiting responses on one connection;
/// further reads pause until responses drain.
pub const MAX_PIPELINE_DEPTH: usize = 64;

/// Bytes pulled per `read` syscall.
const READ_CHUNK: usize = 16 * 1024;

/// One step of the incremental parser.
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold a complete request.
    NeedMore,
    /// A complete request was pulled off the front of the buffer.
    Request {
        /// The parsed request.
        request: Request,
        /// Whether the client asked to keep the connection open.
        keep_alive: bool,
    },
    /// The byte stream is not valid HTTP (or exceeds caps); the
    /// connection must be answered with `status` and closed.
    Bad {
        /// Response status (400, 413, or 431).
        status: u16,
        /// Human-readable reason, returned in the error body.
        message: String,
    },
}

/// Incremental HTTP/1.1 request parser over an internal byte buffer.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for the head terminator, so
    /// repeated `next()` calls on a slow-arriving head stay O(n).
    scanned: usize,
}

impl RequestParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(1024),
            scanned: 0,
        }
    }

    /// Appends newly read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (for backpressure accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to pull one complete request off the front of the
    /// buffer. Call repeatedly until [`Parsed::NeedMore`] to drain a
    /// segment carrying pipelined requests.
    pub fn next_request(&mut self) -> Parsed {
        // Resume the terminator scan just before where we stopped, in
        // case `\r\n\r\n` straddles the old/new byte boundary.
        let start = self.scanned.saturating_sub(3);
        let found = self
            .buf
            .get(start..)
            .and_then(|tail| tail.windows(4).position(|w| w == b"\r\n\r\n"))
            .map(|p| start + p);
        let head_end = match found {
            Some(p) => p,
            None => {
                self.scanned = self.buf.len();
                return self.check_caps_without_head();
            }
        };
        if head_end > MAX_HEAD_BYTES {
            return Parsed::Bad {
                status: 431,
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            };
        }
        let head_bytes = self.buf.get(..head_end).unwrap_or_default();
        if let Some(bad) = check_request_line(head_bytes) {
            return bad;
        }
        let head = match std::str::from_utf8(head_bytes) {
            Ok(h) => h.to_string(),
            Err(_) => {
                return Parsed::Bad {
                    status: 400,
                    message: "request head is not valid UTF-8".to_string(),
                }
            }
        };
        let (request_line, header_lines) = match parse_head_lines(&head) {
            Ok(parts) => parts,
            Err(message) => {
                return Parsed::Bad {
                    status: 400,
                    message,
                }
            }
        };
        let content_length = match content_length_of(&header_lines) {
            Ok(len) => len,
            Err(bad) => return bad,
        };
        if content_length > MAX_BODY_BYTES {
            return Parsed::Bad {
                status: 413,
                message: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
            };
        }
        let total = head_end + 4 + content_length;
        if self.buf.len() < total {
            // Head parsed but body incomplete; leave buffer intact. The
            // head re-parse on the next call is bounded by
            // MAX_HEAD_BYTES, so this stays cheap.
            self.scanned = head_end;
            return Parsed::NeedMore;
        }
        let body: Vec<u8> = self
            .buf
            .get(head_end + 4..total)
            .unwrap_or_default()
            .to_vec();
        self.buf.drain(..total);
        self.scanned = 0;
        let keep_alive = keep_alive_of(&request_line, &header_lines);
        let request = Request {
            method: request_line.method,
            path: request_line.path,
            headers: header_lines,
            body,
        };
        Parsed::Request {
            request,
            keep_alive,
        }
    }

    /// Cap checks that apply while the head terminator has not arrived.
    fn check_caps_without_head(&self) -> Parsed {
        let line_done = self
            .buf
            .get(..MAX_REQUEST_LINE_BYTES.min(self.buf.len()))
            .is_some_and(|head| head.windows(2).any(|w| w == b"\r\n"));
        if !line_done && self.buf.len() > MAX_REQUEST_LINE_BYTES {
            return Parsed::Bad {
                status: 431,
                message: format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
            };
        }
        if self.buf.len() > MAX_HEAD_BYTES {
            return Parsed::Bad {
                status: 431,
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            };
        }
        Parsed::NeedMore
    }
}

/// The request line, already split.
#[derive(Debug)]
struct RequestLine {
    method: String,
    path: String,
    version: String,
}

/// Rejects overlong request lines even when the full head terminator
/// already arrived (one huge first line, tiny headers).
fn check_request_line(head_bytes: &[u8]) -> Option<Parsed> {
    let line_len = head_bytes
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(head_bytes.len());
    if line_len > MAX_REQUEST_LINE_BYTES {
        return Some(Parsed::Bad {
            status: 431,
            message: format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
        });
    }
    None
}

/// Splits a head into the request line and lowercased header pairs.
fn parse_head_lines(head: &str) -> Result<(RequestLine, Vec<(String, String)>), String> {
    let mut lines = head.split("\r\n");
    let first = lines.next().unwrap_or_default();
    let mut parts = first.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(format!("malformed request line: {first:?}"));
    }
    if !version.is_empty() && !version.starts_with("HTTP/") {
        return Err(format!("malformed HTTP version: {version:?}"));
    }
    let mut headers = Vec::with_capacity(8);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line: {line:?}"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((
        RequestLine {
            method,
            path,
            version,
        },
        headers,
    ))
}

/// Parses `Content-Length` out of lowercased header pairs.
fn content_length_of(headers: &[(String, String)]) -> Result<usize, Parsed> {
    let Some((_, value)) = headers.iter().find(|(name, _)| name == "content-length") else {
        return Ok(0);
    };
    value.parse::<usize>().map_err(|_| Parsed::Bad {
        status: 400,
        message: format!("invalid Content-Length: {value:?}"),
    })
}

/// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
/// `Connection` header wins either way.
fn keep_alive_of(line: &RequestLine, headers: &[(String, String)]) -> bool {
    let connection = headers
        .iter()
        .find(|(name, _)| name == "connection")
        .map(|(_, value)| value.to_ascii_lowercase());
    match connection {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => line.version != "HTTP/1.0",
    }
}

/// Events a readable connection produces, tagged with the per-connection
/// request sequence number that routes the eventual response back into
/// pipeline order.
#[derive(Debug)]
pub enum ConnEvent {
    /// A complete, well-formed request.
    Request {
        /// Pipeline sequence number; pass back to [`Conn::complete`].
        seq: u64,
        /// The parsed request.
        request: Request,
    },
    /// A transport-level protocol error; the connection closes after
    /// the error response flushes.
    Protocol {
        /// Pipeline sequence number; pass back to [`Conn::complete`].
        seq: u64,
        /// Response status (400, 413, or 431).
        status: u16,
        /// Reason, for the error body.
        message: String,
    },
}

/// A response slot in the pipeline: opened when a request is parsed,
/// filled (in any order) by [`Conn::complete`], drained to the write
/// buffer strictly in request order.
#[derive(Debug)]
struct Slot {
    seq: u64,
    bytes: Option<Vec<u8>>,
    close_after: bool,
}

/// One client connection: parser, pipeline slots, and write buffer.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    pending: VecDeque<Slot>,
    next_seq: u64,
    out: Vec<u8>,
    out_pos: usize,
    read_closed: bool,
    close_after_flush: bool,
    dead: bool,
    last_activity: Instant,
}

impl Conn {
    /// Wraps an accepted stream, switching it to non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            parser: RequestParser::new(),
            pending: VecDeque::with_capacity(4),
            next_seq: 0,
            out: Vec::with_capacity(1024),
            out_pos: 0,
            read_closed: false,
            close_after_flush: false,
            dead: false,
            last_activity: Instant::now(),
        })
    }

    /// The underlying stream (for registering its fd with the poller).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Instant of the last read or write progress, for idle sweeps.
    pub fn last_activity(&self) -> Instant {
        self.last_activity
    }

    /// Whether the event loop should poll this connection for
    /// readability: still open, under the pipeline cap, and under the
    /// write-buffer high-water mark.
    pub fn wants_read(&self) -> bool {
        !self.dead
            && !self.read_closed
            && !self.close_after_flush
            && self.pending.len() < MAX_PIPELINE_DEPTH
            && self.unflushed() < WRITE_HIGH_WATER
    }

    /// Whether there are buffered response bytes to flush.
    pub fn wants_write(&self) -> bool {
        !self.dead && self.unflushed() > 0
    }

    /// Whether requests are still awaiting responses.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether the connection is finished and should be dropped.
    pub fn is_done(&self) -> bool {
        if self.dead {
            return true;
        }
        if self.unflushed() > 0 {
            return false;
        }
        if self.close_after_flush {
            return true;
        }
        self.read_closed && self.pending.is_empty()
    }

    fn unflushed(&self) -> usize {
        self.out.len().saturating_sub(self.out_pos)
    }

    /// Reads until `WouldBlock`/EOF and parses every complete request
    /// in the buffer, opening a pipeline slot per event.
    pub fn read_ready(&mut self) -> Vec<ConnEvent> {
        let mut events = Vec::with_capacity(2);
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if !self.wants_read() {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    self.parser.feed(chunk.get(..n).unwrap_or_default());
                    self.drain_parser(&mut events);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        events
    }

    fn drain_parser(&mut self, events: &mut Vec<ConnEvent>) {
        while self.pending.len() < MAX_PIPELINE_DEPTH && !self.close_after_flush {
            match self.parser.next_request() {
                Parsed::NeedMore => break,
                Parsed::Request {
                    request,
                    keep_alive,
                } => {
                    let seq = self.open_slot(!keep_alive);
                    events.push(ConnEvent::Request { seq, request });
                }
                Parsed::Bad { status, message } => {
                    // The stream cannot be resynced past a protocol
                    // error: answer, then close once flushed.
                    let seq = self.open_slot(true);
                    events.push(ConnEvent::Protocol {
                        seq,
                        status,
                        message,
                    });
                    break;
                }
            }
        }
    }

    fn open_slot(&mut self, close_after: bool) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(Slot {
            seq,
            bytes: None,
            close_after,
        });
        seq
    }

    /// Fills the pipeline slot for `seq` with a response and moves any
    /// now-contiguous head-of-line responses into the write buffer.
    /// Unknown sequence numbers (connection already resynced) are
    /// ignored.
    pub fn complete(&mut self, seq: u64, response: &Response) {
        let Some(slot) = self.pending.iter_mut().find(|slot| slot.seq == seq) else {
            return;
        };
        if slot.bytes.is_some() {
            return;
        }
        slot.bytes = Some(response.serialize(!slot.close_after));
        while let Some(front) = self.pending.front() {
            if front.bytes.is_none() {
                break;
            }
            let Some(slot) = self.pending.pop_front() else {
                break;
            };
            if let Some(bytes) = slot.bytes {
                self.out.extend_from_slice(&bytes);
            }
            if slot.close_after {
                // Later pipelined requests (if any) die with the
                // connection, matching `Connection: close` semantics.
                self.close_after_flush = true;
                self.pending.clear();
                break;
            }
        }
    }

    /// Writes buffered response bytes until `WouldBlock` or empty,
    /// using single `write` calls (never blocking loops).
    pub fn flush(&mut self) {
        while let Some(remaining) = self.out.get(self.out_pos..) {
            if remaining.is_empty() {
                break;
            }
            match self.stream.write(remaining) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos >= self.out.len() && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(parser: &mut RequestParser) -> Vec<Parsed> {
        let mut out = Vec::new();
        loop {
            match parser.next_request() {
                Parsed::NeedMore => break,
                p @ Parsed::Bad { .. } => {
                    out.push(p);
                    break;
                }
                p => out.push(p),
            }
        }
        out
    }

    #[test]
    fn request_split_across_many_reads_parses_once_complete() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\nHost: x\r\n\r\nbody";
        let mut parser = RequestParser::new();
        // Feed one byte at a time; no request may surface early.
        for (i, b) in raw.iter().enumerate() {
            parser.feed(&[*b]);
            let step = parser.next_request();
            if i + 1 < raw.len() {
                assert!(
                    matches!(step, Parsed::NeedMore),
                    "byte {i}: unexpected {step:?}"
                );
            } else {
                let Parsed::Request {
                    request,
                    keep_alive,
                } = step
                else {
                    panic!("expected request, got {step:?}");
                };
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/v1/jobs");
                assert_eq!(request.body, b"body");
                assert!(keep_alive);
            }
        }
        assert!(matches!(parser.next_request(), Parsed::NeedMore));
    }

    #[test]
    fn headers_split_across_reads_keep_values_intact() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /metrics HTTP/1.1\r\nX-Tra");
        assert!(matches!(parser.next_request(), Parsed::NeedMore));
        parser.feed(b"ce: ab\r\n\r\n");
        let Parsed::Request { request, .. } = parser.next_request() else {
            panic!("expected request");
        };
        assert_eq!(request.header("x-trace"), Some("ab"));
    }

    #[test]
    fn pipelined_requests_in_one_segment_all_parse_in_order() {
        let mut parser = RequestParser::new();
        parser.feed(
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n",
        );
        let events = parse_all(&mut parser);
        let paths: Vec<String> = events
            .iter()
            .map(|p| match p {
                Parsed::Request { request, .. } => request.path.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(paths, ["/healthz", "/v1/jobs", "/metrics"]);
    }

    #[test]
    fn oversized_request_line_gets_431() {
        let mut parser = RequestParser::new();
        let long = vec![b'a'; MAX_REQUEST_LINE_BYTES + 10];
        parser.feed(b"GET /");
        parser.feed(&long);
        let Parsed::Bad { status, .. } = parser.next_request() else {
            panic!("expected Bad");
        };
        assert_eq!(status, 431);
    }

    #[test]
    fn oversized_request_line_with_complete_head_gets_431() {
        let mut parser = RequestParser::new();
        let mut raw = Vec::new();
        raw.extend_from_slice(b"GET /");
        raw.extend_from_slice(&vec![b'a'; MAX_REQUEST_LINE_BYTES]);
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        parser.feed(&raw);
        let Parsed::Bad { status, .. } = parser.next_request() else {
            panic!("expected Bad");
        };
        assert_eq!(status, 431);
    }

    #[test]
    fn oversized_head_gets_431() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        let filler = format!("X-Pad: {}\r\n", "p".repeat(1000));
        while parser.buffered() <= MAX_HEAD_BYTES {
            parser.feed(filler.as_bytes());
        }
        let Parsed::Bad { status, .. } = parser.next_request() else {
            panic!("expected Bad");
        };
        assert_eq!(status, 431);
    }

    #[test]
    fn oversized_body_gets_413() {
        let mut parser = RequestParser::new();
        parser.feed(
            format!(
                "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        let Parsed::Bad { status, .. } = parser.next_request() else {
            panic!("expected Bad");
        };
        assert_eq!(status, 413);
    }

    #[test]
    fn malformed_head_gets_400() {
        let mut parser = RequestParser::new();
        parser.feed(b"NOT-HTTP\r\ngarbage\r\n\r\n");
        let Parsed::Bad { status, .. } = parser.next_request() else {
            panic!("expected Bad");
        };
        assert_eq!(status, 400);
    }

    #[test]
    fn http10_defaults_to_close_and_connection_header_wins() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.0\r\n\r\n");
        let Parsed::Request { keep_alive, .. } = parser.next_request() else {
            panic!("expected request");
        };
        assert!(!keep_alive, "HTTP/1.0 must default to close");

        parser.feed(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        let Parsed::Request { keep_alive, .. } = parser.next_request() else {
            panic!("expected request");
        };
        assert!(keep_alive);

        parser.feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        let Parsed::Request { keep_alive, .. } = parser.next_request() else {
            panic!("expected request");
        };
        assert!(!keep_alive);
    }

    #[test]
    fn conn_pipeline_writes_responses_in_request_order() {
        // Completing out of order must still flush in request order.
        let (server, mut client) = loopback_pair();
        let mut conn = Conn::new(server).expect("conn");
        use std::io::Write as _;
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .expect("write");
        let events = wait_events(&mut conn, 2);
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| match e {
                ConnEvent::Request { seq, .. } => *seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Complete the second request first.
        conn.complete(seqs[1], &Response::new(200).text("second\n"));
        assert!(!conn.wants_write(), "head-of-line must gate writes");
        conn.complete(seqs[0], &Response::new(200).text("first\n"));
        assert!(conn.wants_write());
        conn.flush();
        let got = read_available(&mut client);
        let first = got.find("first\n").expect("first body present");
        let second = got.find("second\n").expect("second body present");
        assert!(first < second, "responses out of order: {got}");
        assert!(!conn.is_done(), "keep-alive connection must stay open");
    }

    #[test]
    fn conn_closes_after_connection_close_response() {
        let (server, mut client) = loopback_pair();
        let mut conn = Conn::new(server).expect("conn");
        use std::io::Write as _;
        client
            .write_all(b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("write");
        let events = wait_events(&mut conn, 1);
        let ConnEvent::Request { seq, .. } = &events[0] else {
            panic!("expected request");
        };
        conn.complete(*seq, &Response::new(200).text("bye\n"));
        conn.flush();
        assert!(conn.is_done());
        let got = read_available(&mut client);
        assert!(got.contains("Connection: close"), "got: {got}");
    }

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (server, client)
    }

    fn wait_events(conn: &mut Conn, want: usize) -> Vec<ConnEvent> {
        let mut events = Vec::new();
        for _ in 0..200 {
            events.extend(conn.read_ready());
            if events.len() >= want {
                return events;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("wanted {want} events, got {}", events.len());
    }

    fn read_available(client: &mut TcpStream) -> String {
        use std::io::Read as _;
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .expect("timeout");
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match client.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        String::from_utf8_lossy(&buf).into_owned()
    }
}
