//! The persistent result store: a content-addressed response cache plus
//! the `SweepRunner` memo persistence file.
//!
//! Layout under the cache directory:
//!
//! * `<kk>/<key>.json` — one file per job, where `key` is
//!   [`tbstc::jobspec::JobSpec::cache_key`] (32 hex chars of the
//!   canonicalized spec) and `<kk>` is its first two hex chars — 256
//!   shard subdirectories, so concurrent writers never contend on one
//!   directory and listing stays cheap at millions of entries. Reads
//!   fall back to the pre-shard flat `<key>.json` path, so caches
//!   written by earlier versions keep hitting. The file holds the
//!   *exact response body bytes*, so a hit across a process restart is
//!   byte-identical to the original response.
//! * `memo.jsonl` — the serialized model-level memo cache: a version
//!   header line, then one `{"bandwidth_gbps":..,"job":..,"result":..}`
//!   entry per line, sorted for deterministic files.
//!
//! Both readers are corruption-tolerant: a truncated or garbled file
//! logs a warning to stderr and degrades to a recompute — it never
//! panics and never serves bad bytes (every read is validated by a full
//! JSON parse before use).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tbstc::jobspec::{
    model_result_from_value, model_result_to_value, sim_job_from_value, sim_job_to_value,
};
use tbstc::json::Json;
use tbstc::runner::SimJob;
use tbstc::sim::ModelResult;
use tbstc::Error;

/// Name of the memo persistence file inside the cache directory.
pub const MEMO_FILE: &str = "memo.jsonl";
/// Header line identifying the memo file format.
pub const MEMO_HEADER: &str = r#"{"format":"tbstc-memo","version":1}"#;

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One persisted memo entry: the engine bandwidth it belongs to, the job
/// key and its result.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoEntry {
    /// Off-chip bandwidth of the engine that computed this entry, GB/s.
    pub bandwidth_gbps: f64,
    /// The memoized grid point.
    pub job: SimJob,
    /// Its simulation result.
    pub result: ModelResult,
}

/// The on-disk store (see module docs).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultStore, Error> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| Error::Io(format!("cannot create cache dir {}: {e}", dir.display())))?;
        Ok(ResultStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether `key` has the shape our cache keys have (32 hex chars).
    /// Anything else is refused — keys arrive in URLs and must never
    /// escape the cache directory.
    pub fn valid_key(key: &str) -> bool {
        key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit())
    }

    /// The sharded entry path: `<first two hex>/<key>.json`.
    fn path_for(&self, key: &str) -> Option<PathBuf> {
        if !Self::valid_key(key) {
            return None;
        }
        let shard = key.get(..2)?;
        Some(self.dir.join(shard).join(format!("{key}.json")))
    }

    /// Pre-sharding flat path, still honored on reads so caches written
    /// by earlier versions keep hitting.
    fn legacy_path_for(&self, key: &str) -> Option<PathBuf> {
        Self::valid_key(key).then(|| self.dir.join(format!("{key}.json")))
    }

    /// Fetches the cached response body for `key`, validating that the
    /// bytes still parse as JSON. Corrupt entries log a warning and
    /// report a miss (the caller recomputes and overwrites).
    pub fn get(&self, key: &str) -> Option<String> {
        let path = self.path_for(key)?;
        let body = match fs::read_to_string(&path) {
            Ok(b) => b,
            Err(_) => {
                let legacy = self.legacy_path_for(key)?;
                match fs::read_to_string(&legacy) {
                    Ok(b) => b,
                    Err(_) => return None,
                }
            }
        };
        if Json::parse(body.trim_end()).is_err() {
            eprintln!(
                "tbstc-serve: warning: corrupt cache entry {} — recomputing",
                path.display()
            );
            return None;
        }
        Some(body)
    }

    /// Stores `body` under `key` atomically (write to a temp file in the
    /// same directory, then rename), so a crash mid-write can never leave
    /// a half-entry at the final path.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] on a malformed key, [`Error::Io`] on write
    /// failures.
    pub fn put(&self, key: &str, body: &str) -> Result<(), Error> {
        let path = self
            .path_for(key)
            .ok_or_else(|| Error::InvalidSpec(format!("malformed cache key `{key}`")))?;
        let shard_dir = path.parent().unwrap_or(&self.dir);
        fs::create_dir_all(shard_dir).map_err(|e| {
            Error::Io(format!(
                "cannot create shard dir {}: {e}",
                shard_dir.display()
            ))
        })?;
        let tmp = shard_dir.join(format!(
            "{key}.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut f = fs::File::create(tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
            fs::rename(tmp, &path)
        };
        write(&tmp).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            Error::Io(format!("cannot persist {}: {e}", path.display()))
        })
    }

    /// Path of the memo persistence file.
    pub fn memo_path(&self) -> PathBuf {
        self.dir.join(MEMO_FILE)
    }

    /// Persists the memo entries (sorted for a deterministic file),
    /// atomically like [`ResultStore::put`].
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on write failures.
    pub fn save_memo(&self, entries: &[MemoEntry]) -> Result<(), Error> {
        let mut lines: Vec<String> = entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("bandwidth_gbps", Json::Num(e.bandwidth_gbps)),
                    ("job", sim_job_to_value(&e.job)),
                    ("result", model_result_to_value(&e.result)),
                ])
                .to_string()
            })
            .collect();
        lines.sort_unstable();
        let mut text = String::with_capacity(lines.iter().map(String::len).sum::<usize>() + 64);
        text.push_str(MEMO_HEADER);
        text.push('\n');
        for line in lines {
            text.push_str(&line);
            text.push('\n');
        }
        let path = self.memo_path();
        let tmp = self.dir.join(format!(
            "memo.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &text)
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                Error::Io(format!("cannot persist {}: {e}", path.display()))
            })
    }

    /// Reloads the memo file. Tolerant by construction: a missing file is
    /// an empty cache; a bad header, truncated line, or malformed entry
    /// logs one warning and returns every entry parsed up to that point —
    /// the worst outcome is recomputation, never a panic.
    pub fn load_memo(&self) -> Vec<MemoEntry> {
        let path = self.memo_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return Vec::new(),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(MEMO_HEADER) => {}
            _ => {
                eprintln!(
                    "tbstc-serve: warning: {} has an unknown header — ignoring the memo cache",
                    path.display()
                );
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            match parse_memo_line(line) {
                Ok(entry) => out.push(entry),
                Err(e) => {
                    eprintln!(
                        "tbstc-serve: warning: {} entry {} is corrupt ({e}) — keeping the {} entries before it",
                        path.display(),
                        i + 1,
                        out.len()
                    );
                    break;
                }
            }
        }
        out
    }
}

fn parse_memo_line(line: &str) -> Result<MemoEntry, Error> {
    let v = Json::parse(line)?;
    let bandwidth_gbps = v
        .get("bandwidth_gbps")
        .and_then(Json::as_f64)
        .filter(|b| b.is_finite() && *b > 0.0)
        .ok_or_else(|| Error::InvalidSpec("memo entry missing bandwidth".into()))?;
    let job = sim_job_from_value(
        v.get("job")
            .ok_or_else(|| Error::InvalidSpec("memo entry missing job".into()))?,
    )?;
    let result = model_result_from_value(
        v.get("result")
            .ok_or_else(|| Error::InvalidSpec("memo entry missing result".into()))?,
    )?;
    Ok(MemoEntry {
        bandwidth_gbps,
        job,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc::prelude::*;
    use tbstc::sim::Arch;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("tbstc-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    fn sample_entry(seed: u64) -> MemoEntry {
        let job = SimJob {
            arch: Arch::TbStc,
            model: ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            },
            sparsity: 0.5,
            seed,
        };
        let engine = SweepRunner::with_runner(
            tbstc::sim::HwConfig::with_bandwidth_gbps(64.0),
            Runner::serial(),
        );
        MemoEntry {
            bandwidth_gbps: 64.0,
            job,
            result: engine.model(job),
        }
    }

    #[test]
    fn put_get_roundtrips_bytes() {
        let store = tmp_store("putget");
        let key = "0123456789abcdef0123456789abcdef";
        let body = "{\"x\":1}\n";
        store.put(key, body).unwrap();
        assert_eq!(store.get(key).as_deref(), Some(body));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn rejects_path_traversal_keys() {
        let store = tmp_store("keys");
        assert!(!ResultStore::valid_key("../../../../etc/passwd"));
        assert!(!ResultStore::valid_key("0123456789abcdef0123456789abcdeg"));
        assert!(store.get("../escape").is_none());
        assert!(store.put("../escape", "{}").is_err());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_result_entry_reads_as_miss() {
        let store = tmp_store("corrupt");
        let key = "00000000000000000000000000000001";
        store.put(key, "{\"ok\":true}").unwrap();
        fs::write(store.path_for(key).unwrap(), "{\"ok\":tru").unwrap();
        assert!(store.get(key).is_none(), "corrupt entry must read as miss");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn entries_land_in_prefix_shard_dirs() {
        let store = tmp_store("shards");
        let key = "ab0000000000000000000000000000ff";
        store.put(key, "{\"v\":1}").unwrap();
        assert!(
            store.dir().join("ab").join(format!("{key}.json")).is_file(),
            "entry must live under its two-hex shard directory"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn legacy_flat_entries_still_hit() {
        let store = tmp_store("legacy");
        let key = "cd0000000000000000000000000000aa";
        fs::write(store.dir().join(format!("{key}.json")), "{\"old\":true}").unwrap();
        assert_eq!(store.get(key).as_deref(), Some("{\"old\":true}"));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn memo_roundtrips() {
        let store = tmp_store("memo");
        let entries = vec![sample_entry(0), sample_entry(1)];
        store.save_memo(&entries).unwrap();
        let mut back = store.load_memo();
        back.sort_by_key(|e| e.job.seed);
        assert_eq!(back, entries);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_memo_file_degrades_without_panic() {
        let store = tmp_store("truncated");
        let entries = vec![sample_entry(0), sample_entry(1), sample_entry(2)];
        store.save_memo(&entries).unwrap();
        // Chop the file mid-way through the last entry.
        let path = store.memo_path();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 40]).unwrap();

        let back = store.load_memo();
        assert_eq!(back.len(), 2, "entries before the tear survive");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn garbage_memo_file_loads_empty() {
        let store = tmp_store("garbage");
        fs::write(store.memo_path(), "not a memo file\n").unwrap();
        assert!(store.load_memo().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_memo_file_loads_empty() {
        let store = tmp_store("missing");
        assert!(store.load_memo().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }
}
