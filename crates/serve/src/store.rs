//! The persistent result store: a content-addressed response cache plus
//! the `SweepRunner` memo persistence file.
//!
//! Layout under the cache directory:
//!
//! * `<kk>/<key>.json` — one file per job, where `key` is
//!   [`tbstc::jobspec::JobSpec::cache_key`] (32 hex chars of the
//!   canonicalized spec) and `<kk>` is its first two hex chars — 256
//!   shard subdirectories, so concurrent writers never contend on one
//!   directory and listing stays cheap at millions of entries. Reads
//!   fall back to the pre-shard flat `<key>.json` path, so caches
//!   written by earlier versions keep hitting. The file holds the
//!   *exact response body bytes*, so a hit across a process restart is
//!   byte-identical to the original response.
//! * `memo.jsonl` — the serialized model-level memo cache: a version
//!   header line, then one `{"bandwidth_gbps":..,"job":..,"result":..}`
//!   entry per line, sorted for deterministic files. Checkpoint appends
//!   during a run go through [`ResultStore::append_memo`]; the shutdown
//!   flush rewrites the file merged and sorted.
//! * `jobs/<key>.json` — the durable [`JobStatus`] document of one
//!   long-running job, and `jobs/<key>.cancel` — a cancel-request
//!   marker another process's controller picks up between chunks.
//! * `locks/<name>.lock` — flock(2) advisory lock files. Every mutation
//!   of shared state (the memo file, a job's execution) is serialized
//!   through [`ResultStore::lock_store`] / [`ResultStore::lock_job`],
//!   which is what lets N serve processes share one store: the lock is
//!   per open file description, so it excludes other processes *and*
//!   other store handles inside one process.
//!
//! All readers are corruption-tolerant: a truncated or garbled file
//! logs a warning to stderr and degrades to a recompute — it never
//! panics and never serves bad bytes (every read is validated by a full
//! JSON parse before use). Corrupt memo lines are skipped (not fatal to
//! the rest of the file) and counted for the
//! `tbstc_memo_corrupt_lines_total` metric.
//!
//! Lock-discipline invariant (enforced by the `store-lock-discipline`
//! lint rule): this module is the only place in `tbstc-serve` allowed
//! to create, write, or rename files — every store mutation funnels
//! through the accessors here, where the locking lives.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tbstc::jobspec::{
    model_result_from_value, model_result_to_value, sim_job_from_value, sim_job_to_value,
};
use tbstc::jobstate::JobStatus;
use tbstc::json::Json;
use tbstc::runner::SimJob;
use tbstc::sim::ModelResult;
use tbstc::Error;

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! flock(2) shim. Like the signal(2) and poll(2) shims, the process
    //! already links the platform C library, so one `extern "C"`
    //! declaration is the whole unsafe surface.

    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    /// Takes a non-blocking exclusive advisory lock on `file`.
    /// `Err(WouldBlock)` means another holder (process or open file
    /// description) has it. The lock releases when `file` closes.
    pub fn try_lock_exclusive(file: &File) -> io::Result<()> {
        loop {
            // SAFETY: flock(2) takes the raw fd (owned by `file`, alive
            // for the whole call) and an i32 flag word; it reads or
            // writes no memory of ours.
            let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
            if rc == 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io;

    /// No advisory locking off unix — locks degrade to in-process
    /// single-flight only (the dispatcher still dedupes within one
    /// server).
    pub fn try_lock_exclusive(_file: &File) -> io::Result<()> {
        Ok(())
    }
}

/// A held advisory lock; dropping it releases the lock (the file
/// descriptor closes). See the module docs for the lock layout.
#[derive(Debug)]
pub struct StoreLock {
    _file: fs::File,
}

/// Name of the memo persistence file inside the cache directory.
pub const MEMO_FILE: &str = "memo.jsonl";
/// Header line identifying the memo file format.
pub const MEMO_HEADER: &str = r#"{"format":"tbstc-memo","version":1}"#;

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One persisted memo entry: the engine bandwidth it belongs to, the job
/// key and its result.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoEntry {
    /// Off-chip bandwidth of the engine that computed this entry, GB/s.
    pub bandwidth_gbps: f64,
    /// The memoized grid point.
    pub job: SimJob,
    /// Its simulation result.
    pub result: ModelResult,
}

/// The on-disk store (see module docs).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultStore, Error> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| Error::Io(format!("cannot create cache dir {}: {e}", dir.display())))?;
        Ok(ResultStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether `key` has the shape our cache keys have (32 hex chars).
    /// Anything else is refused — keys arrive in URLs and must never
    /// escape the cache directory.
    pub fn valid_key(key: &str) -> bool {
        key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit())
    }

    /// The sharded entry path: `<first two hex>/<key>.json`.
    fn path_for(&self, key: &str) -> Option<PathBuf> {
        if !Self::valid_key(key) {
            return None;
        }
        let shard = key.get(..2)?;
        Some(self.dir.join(shard).join(format!("{key}.json")))
    }

    /// Pre-sharding flat path, still honored on reads so caches written
    /// by earlier versions keep hitting.
    fn legacy_path_for(&self, key: &str) -> Option<PathBuf> {
        Self::valid_key(key).then(|| self.dir.join(format!("{key}.json")))
    }

    /// Fetches the cached response body for `key`, validating that the
    /// bytes still parse as JSON. Corrupt entries log a warning and
    /// report a miss (the caller recomputes and overwrites).
    pub fn get(&self, key: &str) -> Option<String> {
        let path = self.path_for(key)?;
        let body = match fs::read_to_string(&path) {
            Ok(b) => b,
            Err(_) => {
                let legacy = self.legacy_path_for(key)?;
                match fs::read_to_string(&legacy) {
                    Ok(b) => b,
                    Err(_) => return None,
                }
            }
        };
        if Json::parse(body.trim_end()).is_err() {
            eprintln!(
                "tbstc-serve: warning: corrupt cache entry {} — recomputing",
                path.display()
            );
            return None;
        }
        Some(body)
    }

    /// Stores `body` under `key` atomically (write to a temp file in the
    /// same directory, then rename), so a crash mid-write can never leave
    /// a half-entry at the final path.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] on a malformed key, [`Error::Io`] on write
    /// failures.
    pub fn put(&self, key: &str, body: &str) -> Result<(), Error> {
        let path = self
            .path_for(key)
            .ok_or_else(|| Error::InvalidSpec(format!("malformed cache key `{key}`")))?;
        let shard_dir = path.parent().unwrap_or(&self.dir);
        fs::create_dir_all(shard_dir).map_err(|e| {
            Error::Io(format!(
                "cannot create shard dir {}: {e}",
                shard_dir.display()
            ))
        })?;
        let tmp = shard_dir.join(format!(
            "{key}.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut f = fs::File::create(tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
            fs::rename(tmp, &path)
        };
        write(&tmp).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            Error::Io(format!("cannot persist {}: {e}", path.display()))
        })
    }

    /// Path of the memo persistence file.
    pub fn memo_path(&self) -> PathBuf {
        self.dir.join(MEMO_FILE)
    }

    /// Opens (creating if needed) the lock file for `name`.
    fn open_lock_file(&self, name: &str) -> Result<fs::File, Error> {
        let locks = self.dir.join("locks");
        fs::create_dir_all(&locks)
            .map_err(|e| Error::Io(format!("cannot create lock dir {}: {e}", locks.display())))?;
        let path = locks.join(format!("{name}.lock"));
        fs::OpenOptions::new()
            .create(true)
            .truncate(false) // never rewrite: the fd exists only to flock
            .write(true)
            .open(&path)
            .map_err(|e| Error::Io(format!("cannot open lock file {}: {e}", path.display())))
    }

    /// Tries to take the named exclusive lock without waiting.
    /// `Ok(None)` means another holder has it.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the lock file cannot be opened or locked for a
    /// reason other than contention.
    pub fn try_lock(&self, name: &str) -> Result<Option<StoreLock>, Error> {
        let file = self.open_lock_file(name)?;
        match sys::try_lock_exclusive(&file) {
            Ok(()) => Ok(Some(StoreLock { _file: file })),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(Error::Io(format!("cannot lock `{name}`: {e}"))),
        }
    }

    /// Takes the named exclusive lock, polling until it is free or
    /// `should_abort` returns true (`Ok(None)`). Polling rather than a
    /// blocking flock keeps the wait interruptible by shutdown.
    ///
    /// # Errors
    ///
    /// As [`ResultStore::try_lock`].
    pub fn lock(
        &self,
        name: &str,
        should_abort: &dyn Fn() -> bool,
    ) -> Result<Option<StoreLock>, Error> {
        loop {
            if let Some(lock) = self.try_lock(name)? {
                return Ok(Some(lock));
            }
            if should_abort() {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The store-wide lock guarding `memo.jsonl` mutations. Held only
    /// for the duration of a file rewrite, so waiting is unconditional.
    ///
    /// # Errors
    ///
    /// As [`ResultStore::try_lock`].
    pub fn lock_store(&self) -> Result<StoreLock, Error> {
        match self.lock("store", &|| false)? {
            Some(lock) => Ok(lock),
            None => Err(Error::Io("store lock wait aborted".into())),
        }
    }

    /// Tries to claim execution of job `key` fleet-wide (no waiting).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] on a malformed key, else as
    /// [`ResultStore::try_lock`].
    pub fn try_lock_job(&self, key: &str) -> Result<Option<StoreLock>, Error> {
        if !Self::valid_key(key) {
            return Err(Error::InvalidSpec(format!("malformed cache key `{key}`")));
        }
        self.try_lock(&format!("job-{key}"))
    }

    /// Claims execution of job `key` fleet-wide, waiting until the
    /// current holder finishes or `should_abort` trips (`Ok(None)`).
    ///
    /// # Errors
    ///
    /// As [`ResultStore::try_lock_job`].
    pub fn lock_job(
        &self,
        key: &str,
        should_abort: &dyn Fn() -> bool,
    ) -> Result<Option<StoreLock>, Error> {
        if !Self::valid_key(key) {
            return Err(Error::InvalidSpec(format!("malformed cache key `{key}`")));
        }
        self.lock(&format!("job-{key}"), should_abort)
    }

    /// Persists the memo entries merged with whatever is already on disk
    /// (another process sharing the store may have appended since we
    /// loaded), deduplicated on the serialized line, sorted for a
    /// deterministic file, written atomically like [`ResultStore::put`].
    /// The whole read-merge-write runs under the store lock so
    /// concurrent flushes cannot lose each other's entries.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on lock or write failures.
    pub fn save_memo(&self, entries: &[MemoEntry]) -> Result<(), Error> {
        let _lock = self.lock_store()?;
        let mut lines: BTreeSet<String> = entries.iter().map(serialize_memo_line).collect();
        if let Ok(text) = fs::read_to_string(self.memo_path()) {
            let mut existing = text.lines();
            if existing.next() == Some(MEMO_HEADER) {
                for line in existing {
                    if !line.is_empty() && parse_memo_line(line).is_ok() {
                        lines.insert(line.to_string());
                    }
                }
            }
        }
        let mut text = String::with_capacity(lines.iter().map(String::len).sum::<usize>() + 64);
        text.push_str(MEMO_HEADER);
        text.push('\n');
        for line in &lines {
            text.push_str(line);
            text.push('\n');
        }
        let path = self.memo_path();
        let tmp = self.dir.join(format!(
            "memo.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &text)
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                Error::Io(format!("cannot persist {}: {e}", path.display()))
            })
    }

    /// Appends freshly computed entries to the memo file under the store
    /// lock — the checkpoint write of the durable job path. Cheaper than
    /// [`ResultStore::save_memo`] (no rewrite) at the cost of the sorted
    /// invariant, which the shutdown flush restores.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on lock or write failures.
    pub fn append_memo(&self, entries: &[MemoEntry]) -> Result<(), Error> {
        if entries.is_empty() {
            return Ok(());
        }
        let _lock = self.lock_store()?;
        let path = self.memo_path();
        let fresh = fs::metadata(&path).map(|m| m.len() == 0).unwrap_or(true);
        let mut text = String::new();
        if fresh {
            text.push_str(MEMO_HEADER);
            text.push('\n');
        }
        for entry in entries {
            text.push_str(&serialize_memo_line(entry));
            text.push('\n');
        }
        let append = |path: &Path| -> std::io::Result<()> {
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()
        };
        append(&path).map_err(|e| Error::Io(format!("cannot append to {}: {e}", path.display())))
    }

    /// Reloads the memo file. Tolerant by construction: a missing file
    /// is an empty cache; a bad header ignores the file; a truncated or
    /// malformed entry line is skipped and counted (one summary warning)
    /// while every other line still loads — the worst outcome is
    /// recomputation, never a panic. Returns the entries and the number
    /// of corrupt lines skipped (exported as
    /// `tbstc_memo_corrupt_lines_total`).
    pub fn load_memo_counting(&self) -> (Vec<MemoEntry>, u64) {
        let path = self.memo_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            // tbstc-lint: allow(hot-path-alloc) — empty vec, never grows
            Err(_) => return (Vec::new(), 0),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(MEMO_HEADER) => {}
            // tbstc-lint: allow(hot-path-alloc) — empty vec, never grows
            None => return (Vec::new(), 0),
            Some(_) => {
                eprintln!(
                    "tbstc-serve: warning: {} has an unknown header — ignoring the memo cache",
                    path.display()
                );
                // tbstc-lint: allow(hot-path-alloc) — empty vec, never grows
                return (Vec::new(), 1);
            }
        }
        let mut out = Vec::new();
        let mut corrupt = 0u64;
        let mut first_bad: Option<(usize, Error)> = None;
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            match parse_memo_line(line) {
                Ok(entry) => out.push(entry),
                Err(e) => {
                    corrupt += 1;
                    if first_bad.is_none() {
                        first_bad = Some((i + 1, e));
                    }
                }
            }
        }
        if let Some((lineno, e)) = first_bad {
            eprintln!(
                "tbstc-serve: warning: {}: skipped {corrupt} corrupt line(s), first at entry {lineno} ({e}) — kept {} entries",
                path.display(),
                out.len()
            );
        }
        (out, corrupt)
    }

    /// [`ResultStore::load_memo_counting`] without the count.
    pub fn load_memo(&self) -> Vec<MemoEntry> {
        self.load_memo_counting().0
    }

    /// The durable job-status path for `key`: `jobs/<key>.json`.
    fn job_status_path(&self, key: &str) -> Option<PathBuf> {
        Self::valid_key(key).then(|| self.dir.join("jobs").join(format!("{key}.json")))
    }

    /// The cancel-request marker path for `key`: `jobs/<key>.cancel`.
    fn cancel_path(&self, key: &str) -> Option<PathBuf> {
        Self::valid_key(key).then(|| self.dir.join("jobs").join(format!("{key}.cancel")))
    }

    /// Persists a job's status document atomically (temp file + rename),
    /// so readers in other processes only ever see complete documents.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] on a malformed id, [`Error::Io`] on write
    /// failures.
    pub fn put_job_status(&self, status: &JobStatus) -> Result<(), Error> {
        let path = self
            .job_status_path(&status.id)
            .ok_or_else(|| Error::InvalidSpec(format!("malformed job id `{}`", status.id)))?;
        let jobs_dir = path.parent().unwrap_or(&self.dir);
        fs::create_dir_all(jobs_dir).map_err(|e| {
            Error::Io(format!(
                "cannot create jobs dir {}: {e}",
                jobs_dir.display()
            ))
        })?;
        let tmp = jobs_dir.join(format!(
            "{}.tmp.{}.{}",
            status.id,
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let body = format!("{}\n", status.to_json());
        fs::write(&tmp, &body)
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                Error::Io(format!("cannot persist {}: {e}", path.display()))
            })
    }

    /// Fetches the persisted status of job `key`, if any. A corrupt
    /// document logs a warning and reads as absent.
    pub fn get_job_status(&self, key: &str) -> Option<JobStatus> {
        let path = self.job_status_path(key)?;
        let text = fs::read_to_string(&path).ok()?;
        match JobStatus::from_json(text.trim_end()) {
            Ok(status) => Some(status),
            Err(e) => {
                eprintln!(
                    "tbstc-serve: warning: corrupt job status {} ({e}) — ignoring",
                    path.display()
                );
                None
            }
        }
    }

    /// Every persisted job status, sorted by id for deterministic
    /// listings. Corrupt documents are skipped with a warning.
    pub fn list_job_statuses(&self) -> Vec<JobStatus> {
        let jobs_dir = self.dir.join("jobs");
        let entries = match fs::read_dir(&jobs_dir) {
            Ok(e) => e,
            Err(_) => return Vec::new(),
        };
        let mut out: Vec<JobStatus> = entries
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name();
                let name = name.to_str()?;
                let key = name.strip_suffix(".json")?;
                self.get_job_status(key)
            })
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// Drops a cancel-request marker for job `key`, visible to whichever
    /// process's controller owns the job — cancellation works across the
    /// fleet, not just within the process that took the DELETE.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] on a malformed key, [`Error::Io`] on write
    /// failures.
    pub fn request_cancel(&self, key: &str) -> Result<(), Error> {
        let path = self
            .cancel_path(key)
            .ok_or_else(|| Error::InvalidSpec(format!("malformed cache key `{key}`")))?;
        let jobs_dir = path.parent().unwrap_or(&self.dir);
        fs::create_dir_all(jobs_dir).map_err(|e| {
            Error::Io(format!(
                "cannot create jobs dir {}: {e}",
                jobs_dir.display()
            ))
        })?;
        fs::write(&path, b"cancel\n")
            .map_err(|e| Error::Io(format!("cannot persist {}: {e}", path.display())))
    }

    /// Whether a cancel marker is pending for job `key`.
    pub fn cancel_requested(&self, key: &str) -> bool {
        self.cancel_path(key).is_some_and(|p| p.exists())
    }

    /// Removes the cancel marker for job `key` (after honoring it, or
    /// when re-queueing a cancelled job).
    pub fn clear_cancel(&self, key: &str) {
        if let Some(path) = self.cancel_path(key) {
            let _ = fs::remove_file(path);
        }
    }
}

/// The canonical serialized line of one memo entry (the dedup key for
/// merge-on-save).
fn serialize_memo_line(e: &MemoEntry) -> String {
    Json::obj([
        ("bandwidth_gbps", Json::Num(e.bandwidth_gbps)),
        ("job", sim_job_to_value(&e.job)),
        ("result", model_result_to_value(&e.result)),
    ])
    .to_string()
}

fn parse_memo_line(line: &str) -> Result<MemoEntry, Error> {
    let v = Json::parse(line)?;
    let bandwidth_gbps = v
        .get("bandwidth_gbps")
        .and_then(Json::as_f64)
        .filter(|b| b.is_finite() && *b > 0.0)
        .ok_or_else(|| Error::InvalidSpec("memo entry missing bandwidth".into()))?;
    let job = sim_job_from_value(
        v.get("job")
            .ok_or_else(|| Error::InvalidSpec("memo entry missing job".into()))?,
    )?;
    let result = model_result_from_value(
        v.get("result")
            .ok_or_else(|| Error::InvalidSpec("memo entry missing result".into()))?,
    )?;
    Ok(MemoEntry {
        bandwidth_gbps,
        job,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc::prelude::*;
    use tbstc::sim::Arch;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("tbstc-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    fn sample_entry(seed: u64) -> MemoEntry {
        let job = SimJob {
            arch: Arch::TbStc,
            model: ModelSpec::Gcn {
                nodes: 64,
                features: 16,
            },
            sparsity: 0.5,
            seed,
        };
        let engine = SweepRunner::with_runner(
            tbstc::sim::HwConfig::with_bandwidth_gbps(64.0),
            Runner::serial(),
        );
        MemoEntry {
            bandwidth_gbps: 64.0,
            job,
            result: engine.model(job),
        }
    }

    #[test]
    fn put_get_roundtrips_bytes() {
        let store = tmp_store("putget");
        let key = "0123456789abcdef0123456789abcdef";
        let body = "{\"x\":1}\n";
        store.put(key, body).unwrap();
        assert_eq!(store.get(key).as_deref(), Some(body));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn rejects_path_traversal_keys() {
        let store = tmp_store("keys");
        assert!(!ResultStore::valid_key("../../../../etc/passwd"));
        assert!(!ResultStore::valid_key("0123456789abcdef0123456789abcdeg"));
        assert!(store.get("../escape").is_none());
        assert!(store.put("../escape", "{}").is_err());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_result_entry_reads_as_miss() {
        let store = tmp_store("corrupt");
        let key = "00000000000000000000000000000001";
        store.put(key, "{\"ok\":true}").unwrap();
        fs::write(store.path_for(key).unwrap(), "{\"ok\":tru").unwrap();
        assert!(store.get(key).is_none(), "corrupt entry must read as miss");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn entries_land_in_prefix_shard_dirs() {
        let store = tmp_store("shards");
        let key = "ab0000000000000000000000000000ff";
        store.put(key, "{\"v\":1}").unwrap();
        assert!(
            store.dir().join("ab").join(format!("{key}.json")).is_file(),
            "entry must live under its two-hex shard directory"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn legacy_flat_entries_still_hit() {
        let store = tmp_store("legacy");
        let key = "cd0000000000000000000000000000aa";
        fs::write(store.dir().join(format!("{key}.json")), "{\"old\":true}").unwrap();
        assert_eq!(store.get(key).as_deref(), Some("{\"old\":true}"));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn memo_roundtrips() {
        let store = tmp_store("memo");
        let entries = vec![sample_entry(0), sample_entry(1)];
        store.save_memo(&entries).unwrap();
        let mut back = store.load_memo();
        back.sort_by_key(|e| e.job.seed);
        assert_eq!(back, entries);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_memo_file_degrades_without_panic() {
        let store = tmp_store("truncated");
        let entries = vec![sample_entry(0), sample_entry(1), sample_entry(2)];
        store.save_memo(&entries).unwrap();
        // Chop the file mid-way through the last entry.
        let path = store.memo_path();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 40]).unwrap();

        let back = store.load_memo();
        assert_eq!(back.len(), 2, "entries before the tear survive");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_memo_lines_are_skipped_and_counted() {
        let store = tmp_store("skipcount");
        let entries = vec![sample_entry(0), sample_entry(1), sample_entry(2)];
        store.save_memo(&entries).unwrap();
        let path = store.memo_path();
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        // Garble the *middle* entry: everything after it must still load.
        lines[2] = "{\"bandwidth_gbps\":64.0,\"job\":gar";
        fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let (back, corrupt) = store.load_memo_counting();
        assert_eq!(back.len(), 2, "entries after the corrupt line survive");
        assert_eq!(corrupt, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn append_then_save_merges_without_duplicates() {
        let store = tmp_store("append");
        let a = sample_entry(0);
        let b = sample_entry(1);
        store.append_memo(std::slice::from_ref(&a)).unwrap();
        store.append_memo(std::slice::from_ref(&b)).unwrap();
        // Re-appending an identical entry duplicates the line on disk...
        store.append_memo(std::slice::from_ref(&a)).unwrap();
        // ...but the merge-on-save flush dedupes and sorts.
        store.save_memo(std::slice::from_ref(&b)).unwrap();
        let text = fs::read_to_string(store.memo_path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], MEMO_HEADER);
        assert_eq!(lines.len(), 3, "header + two unique entries: {text}");
        let mut sorted = lines[1..].to_vec();
        sorted.sort_unstable();
        assert_eq!(lines[1..], sorted[..], "flush leaves a sorted file");
        let mut back = store.load_memo();
        back.sort_by_key(|e| e.job.seed);
        assert_eq!(back, vec![a, b]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn job_lock_excludes_second_holder_until_dropped() {
        let store = tmp_store("lock");
        let other = ResultStore::open(store.dir()).unwrap();
        let key = "0123456789abcdef0123456789abcdef";
        let held = store.try_lock_job(key).unwrap();
        assert!(held.is_some(), "first claim wins");
        if cfg!(unix) {
            assert!(
                other.try_lock_job(key).unwrap().is_none(),
                "second handle must see the job as claimed"
            );
            assert!(
                other.lock_job(key, &|| true).unwrap().is_none(),
                "aborting waiter gives up"
            );
        }
        drop(held);
        assert!(
            other.try_lock_job(key).unwrap().is_some(),
            "released lock is claimable"
        );
        assert!(store.try_lock_job("../escape").is_err());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn job_status_persists_lists_and_survives_corruption() {
        let store = tmp_store("jobstatus");
        let spec = tbstc::jobspec::JobSpec::from_json(
            r#"{"type":"sweep","archs":["tb-stc"],
                "models":[{"kind":"gcn","nodes":64,"features":16}],
                "sparsities":[0.5,0.75]}"#,
        )
        .unwrap();
        let status = tbstc::jobstate::JobStatus::queued(&spec);
        store.put_job_status(&status).unwrap();
        assert_eq!(store.get_job_status(&status.id), Some(status.clone()));

        let running = status
            .clone()
            .with_state(tbstc::jobstate::JobState::Running { done: 1, total: 2 });
        store.put_job_status(&running).unwrap();
        assert_eq!(store.list_job_statuses(), vec![running.clone()]);

        fs::write(
            store.dir().join("jobs").join(format!("{}.json", status.id)),
            "{\"id\":tru",
        )
        .unwrap();
        assert!(store.get_job_status(&status.id).is_none());
        assert!(store.list_job_statuses().is_empty());
        assert!(store.get_job_status("not-a-key").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn cancel_markers_roundtrip() {
        let store = tmp_store("cancel");
        let key = "ff000000000000000000000000000000";
        assert!(!store.cancel_requested(key));
        store.request_cancel(key).unwrap();
        assert!(store.cancel_requested(key));
        store.clear_cancel(key);
        assert!(!store.cancel_requested(key));
        assert!(store.request_cancel("../escape").is_err());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn garbage_memo_file_loads_empty() {
        let store = tmp_store("garbage");
        fs::write(store.memo_path(), "not a memo file\n").unwrap();
        assert!(store.load_memo().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_memo_file_loads_empty() {
        let store = tmp_store("missing");
        assert!(store.load_memo().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }
}
