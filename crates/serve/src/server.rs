//! The job server: event-driven front end, routing, coalesced job
//! execution, graceful drain.
//!
//! Request flow for `POST /v1/jobs`:
//!
//! 1. the event loop ([`crate::event`]) parses the request
//!    incrementally off a non-blocking socket (keep-alive and
//!    pipelining included); malformed specs get 400 *without* closing
//!    the connection,
//! 2. derive the content-addressed cache key and probe the caches —
//!    first the sharded in-memory hot tier ([`crate::lru`],
//!    `X-Cache-Tier: mem`), then the sharded on-disk store
//!    (`X-Cache-Tier: disk`); a hit is answered immediately with
//!    `X-Cache: hit` and the *exact bytes* of the original response,
//! 3. otherwise hand the spec to the coalescing dispatcher
//!    ([`crate::coalesce`]): an identical in-flight spec shares its
//!    execution (single-flight); a full admission queue is 429 with a
//!    `Retry-After` estimate,
//! 4. workers drain same-bandwidth `simulate` jobs into one batched
//!    [`SweepRunner`] pass, persist each body, and answer
//!    `X-Cache: miss` through the completion queue.
//!
//! Shutdown (SIGTERM/ctrl-c via [`crate::signal`], or
//! [`Handle::shutdown`]) stops accepting, drains in-flight jobs,
//! flushes the memo cache to `memo.jsonl`, and only then returns.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use tbstc::jobspec::JobSpec;
use tbstc::jobstate::{JobState, JobStatus};
use tbstc::prelude::*;
use tbstc::runner::{available_workers, ChunkControl};
use tbstc::sim::{HwConfig, ModelResult};

use crate::coalesce::{BatchExecutor, Dispatcher, Enqueue, FinishFn, QueuedJob};
use crate::event::{self, Action, Completions, LoopOptions, RouteEvent, Token};
use crate::http::{Request, Response};
use crate::jobs::DurableQueue;
use crate::lru::ShardedLru;
use crate::metrics::{Gauges, Metrics};
use crate::queue::AdmissionQueue;
use crate::signal;
use crate::store::{MemoEntry, ResultStore};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 = ephemeral).
    pub addr: String,
    /// Maximum admitted-but-unfinished jobs before 429s start.
    pub queue_capacity: usize,
    /// Concurrently executing jobs (each job parallelizes internally).
    pub job_workers: usize,
    /// Directory of the persistent result cache.
    pub cache_dir: PathBuf,
    /// Artificial per-job delay after admission, milliseconds. A test and
    /// benchmark knob for exercising backpressure deterministically;
    /// 0 (the default) in production.
    pub hold_ms: u64,
    /// Also honor the process-wide SIGINT/SIGTERM flag (the CLI binary
    /// sets this; embedded servers and tests leave it off so signals and
    /// parallel test servers cannot interfere).
    pub watch_signals: bool,
    /// Suppress startup/shutdown stderr chatter.
    pub quiet: bool,
    /// Grid points per checkpointed chunk of a durable sweep.
    pub chunk_size: usize,
    /// Grid-point threshold above which a job goes durable: accepted
    /// 202 into the checkpointed queue instead of computed inline.
    pub long_job_points: usize,
    /// Artificial delay after each durable chunk, milliseconds — a test
    /// knob for catching a sweep mid-run deterministically; 0 in
    /// production.
    pub chunk_hold_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            queue_capacity: 32,
            job_workers: available_workers().max(1),
            cache_dir: PathBuf::from(".tbstc-cache"),
            hold_ms: 0,
            watch_signals: false,
            quiet: false,
            chunk_size: 16,
            long_job_points: 8,
            chunk_hold_ms: 0,
        }
    }
}

/// Shared server state (metrics, queue, caches, engines).
#[derive(Debug)]
pub struct State {
    cfg: ServeConfig,
    /// Service counters.
    pub metrics: Metrics,
    queue: Arc<AdmissionQueue>,
    store: ResultStore,
    /// The bounded in-memory hot tier above the on-disk store.
    hot: ShardedLru,
    /// One engine per platform bandwidth (bit pattern of the GB/s value),
    /// because `SweepRunner` binds its `HwConfig`. Keyed by a `BTreeMap`
    /// so memo flushes walk engines in a stable order.
    engines: Mutex<BTreeMap<u64, Arc<SweepRunner>>>,
    /// Persisted memo entries not yet claimed by an engine.
    preload: Mutex<BTreeMap<u64, Vec<(SimJob, ModelResult)>>>,
    /// Durable long-job queue drained by the controller thread.
    durable: DurableQueue,
    shutdown: AtomicBool,
    connections: AtomicUsize,
}

impl State {
    fn new(cfg: ServeConfig) -> Result<State, Error> {
        let store = ResultStore::open(cfg.cache_dir.clone())?;
        let mut preload: BTreeMap<u64, Vec<(SimJob, ModelResult)>> = BTreeMap::new();
        let (persisted, corrupt_lines) = store.load_memo_counting();
        let preloaded = persisted.len();
        for entry in persisted {
            preload
                .entry(entry.bandwidth_gbps.to_bits())
                .or_default()
                .push((entry.job, entry.result));
        }
        if preloaded > 0 && !cfg.quiet {
            eprintln!("tbstc-serve: reloaded {preloaded} memoized results from disk");
        }
        let metrics = Metrics::new();
        metrics
            .memo_corrupt_lines
            .store(corrupt_lines, Ordering::Relaxed);
        Ok(State {
            queue: Arc::new(AdmissionQueue::new(cfg.queue_capacity, cfg.job_workers)),
            metrics,
            store,
            hot: ShardedLru::default(),
            engines: Mutex::new(BTreeMap::new()),
            preload: Mutex::new(preload),
            durable: DurableQueue::new(),
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            cfg,
        })
    }

    /// Locks the engine table on the request path. Poison (a panic while
    /// inserting) surfaces as [`Error::Internal`] — an HTTP 500 — rather
    /// than unwinding the whole worker.
    fn engines_checked(&self) -> Result<MutexGuard<'_, BTreeMap<u64, Arc<SweepRunner>>>, Error> {
        self.engines
            .lock()
            .map_err(|_| Error::Internal("engine table poisoned".into()))
    }

    /// Locks the engine table off the request path (metrics scrapes, the
    /// shutdown flush), recovering from poison: the map is only ever
    /// inserted into, so a panicking holder cannot leave it inconsistent,
    /// and observability must survive a wounded worker.
    fn engines_recovered(&self) -> MutexGuard<'_, BTreeMap<u64, Arc<SweepRunner>>> {
        self.engines.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Same recovery story for the unclaimed-preload table.
    fn preload_recovered(&self) -> MutexGuard<'_, BTreeMap<u64, Vec<(SimJob, ModelResult)>>> {
        self.preload.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn engine_for(&self, bandwidth_gbps: f64) -> Result<Arc<SweepRunner>, Error> {
        let bits = bandwidth_gbps.to_bits();
        let mut engines = self.engines_checked()?;
        Ok(Arc::clone(engines.entry(bits).or_insert_with(|| {
            let engine = SweepRunner::new(HwConfig::with_bandwidth_gbps(bandwidth_gbps));
            if let Some(entries) = self.preload_recovered().remove(&bits) {
                engine.preload_models(entries);
            }
            Arc::new(engine)
        })))
    }

    fn memo_totals(&self) -> (u64, u64) {
        let engines = self.engines_recovered();
        engines.values().fold((0, 0), |(h, m), e| {
            let (eh, em) = e.cache_stats();
            (h + eh, m + em)
        })
    }

    fn memo_entries(&self) -> Vec<MemoEntry> {
        let engines = self.engines_recovered();
        let mut out = Vec::with_capacity(64);
        for (&bits, engine) in engines.iter() {
            let bandwidth_gbps = f64::from_bits(bits);
            out.extend(
                engine
                    .model_memo_entries()
                    .into_iter()
                    .map(|(job, result)| MemoEntry {
                        bandwidth_gbps,
                        job,
                        result,
                    }),
            );
        }
        // Entries still waiting for an engine survive restarts too.
        for (&bits, entries) in self.preload_recovered().iter() {
            let bandwidth_gbps = f64::from_bits(bits);
            out.extend(entries.iter().cloned().map(|(job, result)| MemoEntry {
                bandwidth_gbps,
                job,
                result,
            }));
        }
        out
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || (self.cfg.watch_signals && signal::shutdown_requested())
    }

    /// Renders the `/metrics` exposition with live gauges.
    pub fn render_metrics(&self) -> String {
        let (waiting, executing) = self.queue.depth();
        let (memo_hits, memo_misses) = self.memo_totals();
        self.metrics.render(&Gauges {
            queue_depth: waiting,
            in_flight: executing,
            job_workers: self.cfg.job_workers,
            memo_hits,
            memo_misses,
            open_connections: self.connections.load(Ordering::Relaxed),
        })
    }

    fn retry_after_secs(&self) -> u64 {
        // Rough drain time for the backlog ahead of a retry: mean job
        // latency × queue rounds per worker, clamped to something polite.
        let (waiting, executing) = self.queue.depth();
        let backlog = (waiting + executing) as f64;
        let rounds = (backlog / self.cfg.job_workers.max(1) as f64).ceil();
        let mean = self.metrics.mean_latency_s(1.0);
        (mean * rounds).ceil().clamp(1.0, 60.0) as u64
    }

    /// The on-disk store backing this server.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Re-enqueues every non-terminal durable job found in the store at
    /// startup, repairing statuses whose result already landed (another
    /// process finished the job, or we crashed between the final write
    /// and the status update). Returns how many jobs were re-enqueued.
    fn resume_incomplete_jobs(&self) -> usize {
        let mut resumed = 0;
        for status in self.store.list_job_statuses() {
            if status.state.is_terminal() {
                continue;
            }
            if self.store.get(&status.id).is_some() {
                let done = status.clone().with_state(JobState::Done);
                if let Err(e) = self.store.put_job_status(&done) {
                    eprintln!("tbstc-serve: warning: cannot repair job {}: {e}", status.id);
                }
                continue;
            }
            if self.durable.submit(&status.id) {
                self.metrics.jobs_resumed.fetch_add(1, Ordering::Relaxed);
                resumed += 1;
            }
        }
        resumed
    }

    fn flush_memo(&self) {
        let entries = self.memo_entries();
        match self.store.save_memo(&entries) {
            Ok(()) => {
                if !self.cfg.quiet {
                    eprintln!(
                        "tbstc-serve: flushed {} memoized results to {}",
                        entries.len(),
                        self.store.memo_path().display()
                    );
                }
            }
            Err(e) => eprintln!("tbstc-serve: warning: memo flush failed: {e}"),
        }
    }
}

/// A handle for asking a running server to shut down gracefully.
#[derive(Debug, Clone)]
pub struct Handle {
    state: Arc<State>,
}

impl Handle {
    /// Requests a graceful shutdown: stop accepting, drain, flush.
    /// Durable jobs checkpoint and stop at the next chunk boundary;
    /// their progress persists for the next process to resume.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        self.state.durable.close();
    }

    /// The shared server state (metrics etc.).
    pub fn state(&self) -> &State {
        &self.state
    }
}

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// A server running on a background thread.
#[derive(Debug)]
pub struct Running {
    /// The bound address (useful with ephemeral ports).
    pub addr: SocketAddr,
    handle: Handle,
    thread: thread::JoinHandle<()>,
}

impl Running {
    /// The shutdown handle.
    pub fn handle(&self) -> Handle {
        self.handle.clone()
    }

    /// Requests shutdown and blocks until the drain + flush complete.
    pub fn shutdown_and_join(self) {
        self.handle.shutdown();
        let _ = self.thread.join();
    }
}

impl Server {
    /// Binds the listener and prepares state (loads the persisted memo
    /// cache).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the address cannot be bound or the cache
    /// directory cannot be created.
    pub fn bind(cfg: ServeConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::Io(format!("cannot bind {}: {e}", cfg.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Io(e.to_string()))?;
        let state = Arc::new(State::new(cfg)?);
        Ok(Server { listener, state })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, Error> {
        self.listener
            .local_addr()
            .map_err(|e| Error::Io(e.to_string()))
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> Handle {
        Handle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the event loop on this thread until shutdown, then drains
    /// in-flight jobs and flushes the memo cache.
    pub fn run(self) {
        let state = self.state;
        if !state.cfg.quiet {
            if let Ok(addr) = self.listener.local_addr() {
                eprintln!(
                    "tbstc-serve: listening on http://{addr} (queue {}, {} job workers, cache {})",
                    state.cfg.queue_capacity,
                    state.cfg.job_workers,
                    state.store.dir().display()
                );
            }
        }
        let (waker, waker_rx) = match event::waker_pair() {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("tbstc-serve: cannot create event-loop waker: {e}");
                return;
            }
        };
        let completions = Arc::new(Completions::new(waker));
        let executor: Arc<dyn BatchExecutor> = Arc::new(EngineExecutor {
            state: Arc::clone(&state),
        });
        let finish: Arc<FinishFn> = {
            let state = Arc::clone(&state);
            Arc::new(move |response: &Response, waited: Duration| {
                if response.status() == 200 {
                    state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                }
                state.metrics.observe_latency(waited.as_secs_f64());
            })
        };
        let dispatcher = Dispatcher::start(
            state.cfg.job_workers,
            Duration::from_millis(state.cfg.hold_ms),
            executor,
            Arc::clone(&completions),
            finish,
        );
        let resumed = state.resume_incomplete_jobs();
        if resumed > 0 && !state.cfg.quiet {
            eprintln!("tbstc-serve: resuming {resumed} incomplete durable job(s) from checkpoints");
        }
        let controller = {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("tbstc-serve-durable".into())
                .spawn(move || durable_controller(&state))
                .map_err(|e| eprintln!("tbstc-serve: warning: no durable controller: {e}"))
                .ok()
        };
        {
            let route_state = Arc::clone(&state);
            let mut route = |ev: RouteEvent, token: Token| -> Action {
                // A panic anywhere in routing answers 500 and keeps the
                // event loop alive.
                catch_unwind(AssertUnwindSafe(|| {
                    route_event(&route_state, &dispatcher, ev, token)
                }))
                .unwrap_or_else(|_| {
                    route_state
                        .metrics
                        .jobs_failed
                        .fetch_add(1, Ordering::Relaxed);
                    Action::Reply(
                        Response::new(500)
                            .json(error_body("internal error: request handler panicked")),
                    )
                })
            };
            let shutdown_state = Arc::clone(&state);
            event::run_loop(
                &self.listener,
                &waker_rx,
                &completions,
                &|| shutdown_state.shutting_down(),
                &mut route,
                &state.connections,
                &LoopOptions::default(),
            );
        }
        drop(self.listener);
        state.queue.close();
        state.durable.close();
        if !state.cfg.quiet {
            eprintln!("tbstc-serve: shutting down — draining in-flight jobs");
        }
        // Drain: workers finish everything already queued, then exit.
        // Durable jobs stop at the next chunk boundary with their
        // progress checkpointed; the controller joins before the memo
        // flush so its appended entries merge into the final file.
        dispatcher.close_and_join();
        state.queue.wait_idle();
        if let Some(controller) = controller {
            let _ = controller.join();
        }
        state.flush_memo();
        if !state.cfg.quiet {
            eprintln!("tbstc-serve: drained; bye");
        }
    }

    /// Spawns [`Server::run`] on a background thread.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the socket has no local address.
    pub fn spawn(self) -> Result<Running, Error> {
        let addr = self.local_addr()?;
        let handle = self.handle();
        let thread = thread::Builder::new()
            .name("tbstc-serve-events".into())
            .spawn(move || self.run())
            .map_err(|e| Error::Io(e.to_string()))?;
        Ok(Running {
            addr,
            handle,
            thread,
        })
    }
}

fn error_body(msg: &str) -> String {
    format!("{}\n", Json::obj([("error", Json::str(msg))]))
}

/// Routes one event-loop event to a response or a dispatcher handoff.
fn route_event(
    state: &Arc<State>,
    dispatcher: &Dispatcher,
    event: RouteEvent,
    token: Token,
) -> Action {
    match event {
        RouteEvent::Protocol { status, message } => {
            state.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            Action::Reply(Response::new(status).json(error_body(&message)))
        }
        RouteEvent::Request(request) => route(state, dispatcher, &request, token),
    }
}

fn route(state: &Arc<State>, dispatcher: &Dispatcher, request: &Request, token: Token) -> Action {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => {
            state.metrics.requests_jobs.fetch_add(1, Ordering::Relaxed);
            handle_job(state, dispatcher, request, token)
        }
        ("GET", "/metrics") => {
            state
                .metrics
                .requests_metrics
                .fetch_add(1, Ordering::Relaxed);
            Action::Reply(Response::new(200).text(state.render_metrics()))
        }
        ("GET", "/healthz") => {
            state.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            Action::Reply(Response::new(200).text("ok\n"))
        }
        ("GET", "/v1/archs") => {
            state.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            Action::Reply(Response::new(200).json(archs_body()))
        }
        ("GET", "/v1/jobs") => {
            state.metrics.requests_jobs.fetch_add(1, Ordering::Relaxed);
            Action::Reply(Response::new(200).json(jobs_list_body(state)))
        }
        ("GET", path)
            if path
                .strip_prefix("/v1/jobs/")
                .is_some_and(|k| !k.is_empty()) =>
        {
            state.metrics.requests_jobs.fetch_add(1, Ordering::Relaxed);
            let key = path.strip_prefix("/v1/jobs/").unwrap_or_default();
            Action::Reply(lookup_cached(state, key))
        }
        ("DELETE", path)
            if path
                .strip_prefix("/v1/jobs/")
                .is_some_and(|k| !k.is_empty()) =>
        {
            state.metrics.requests_jobs.fetch_add(1, Ordering::Relaxed);
            let key = path.strip_prefix("/v1/jobs/").unwrap_or_default();
            Action::Reply(handle_cancel(state, key))
        }
        ("POST" | "GET", _) => {
            state.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            Action::Reply(Response::new(404).json(error_body("unknown endpoint")))
        }
        _ => {
            state.metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            Action::Reply(Response::new(405).json(error_body("method not allowed")))
        }
    }
}

/// `GET /v1/jobs/{key}`: probe hot tier, then disk; a job without a
/// result yet answers its durable status document — 202 while it can
/// still make progress, 200 once terminal.
fn lookup_cached(state: &State, key: &str) -> Response {
    if let Some(body) = state.hot.get(key) {
        state.metrics.mem_hits.fetch_add(1, Ordering::Relaxed);
        return Response::new(200)
            .header("X-Cache", "hit")
            .header("X-Cache-Tier", "mem")
            .header("X-Job-Key", key.to_string())
            .json(body);
    }
    match state.store.get(key) {
        Some(body) => {
            state.metrics.disk_hits.fetch_add(1, Ordering::Relaxed);
            state.hot.put(key, &body);
            Response::new(200)
                .header("X-Cache", "hit")
                .header("X-Cache-Tier", "disk")
                .header("X-Job-Key", key.to_string())
                .json(body)
        }
        None => match state.store.get_job_status(key) {
            Some(status) => {
                let code = if status.state.is_terminal() { 200 } else { 202 };
                Response::new(code)
                    .header("X-Job-Key", key.to_string())
                    .json(format!("{}\n", status.to_json()))
            }
            None => Response::new(404).json(error_body("no cached result for this key")),
        },
    }
}

/// `GET /v1/jobs`: every durable job's status document, sorted by id.
fn jobs_list_body(state: &State) -> String {
    let jobs: Vec<Json> = state
        .store
        .list_job_statuses()
        .iter()
        .map(JobStatus::to_value)
        .collect();
    format!("{}\n", Json::obj([("jobs", Json::Arr(jobs))]))
}

/// `DELETE /v1/jobs/{key}`: cancel a durable job. A still-queued job
/// (in this process) cancels immediately (200); a running or
/// foreign-process job gets a cancel marker honored at the next chunk
/// boundary (202); terminal jobs conflict (409).
fn handle_cancel(state: &Arc<State>, key: &str) -> Response {
    if !ResultStore::valid_key(key) {
        return Response::new(400).json(error_body("malformed job key"));
    }
    match state.store.get_job_status(key) {
        Some(status) if !status.state.is_terminal() => {
            if state.durable.remove(key) {
                let cancelled = status.with_state(JobState::Cancelled);
                if let Err(e) = state.store.put_job_status(&cancelled) {
                    return Response::new(500).json(error_body(&e.to_string()));
                }
                state.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                Response::new(200)
                    .header("X-Job-Key", key.to_string())
                    .json(format!("{}\n", cancelled.to_json()))
            } else {
                // Running here, or owned by another process sharing the
                // store: mark in memory (fast path for our executor) and
                // on disk (reaches everyone).
                state.durable.request_cancel(key);
                if let Err(e) = state.store.request_cancel(key) {
                    return Response::new(500).json(error_body(&e.to_string()));
                }
                Response::new(202)
                    .header("X-Job-Key", key.to_string())
                    .json(format!("{}\n", status.to_json()))
            }
        }
        Some(status) => Response::new(409).json(error_body(&format!(
            "job is already {} and cannot be cancelled",
            status.state.name()
        ))),
        None if state.store.get(key).is_some() => {
            Response::new(409).json(error_body("job already completed"))
        }
        None => Response::new(404).json(error_body("no such job")),
    }
}

/// Renders the architecture catalog: one entry per registered
/// [`tbstc::sim::ArchModel`], with its canonical name, aliases, lane
/// count at the paper-default PE array, native scheduling policy, and
/// the full `tbstc.v1` spec document — what a client would POST back as
/// an inline `arch_spec` to reproduce the builtin.
fn archs_body() -> String {
    let cfg = HwConfig::paper_default();
    let entries: Vec<Json> = tbstc::sim::REGISTRY
        .iter()
        .map(|model| {
            let policy = model.native_schedule();
            Json::obj([
                ("name", Json::str(model.canonical_name())),
                ("display", Json::str(model.display_name())),
                (
                    "aliases",
                    Json::Arr(model.aliases().iter().map(|&a| Json::str(a)).collect()),
                ),
                ("lanes", Json::Int(model.lanes(cfg.pe) as i64)),
                ("inter_block", Json::str(format!("{:?}", policy.inter))),
                ("intra_block", Json::str(format!("{:?}", policy.intra))),
                ("spec", tbstc::archspec::spec_to_value(&model.spec())),
            ])
        })
        .collect();
    format!("{}\n", Json::obj([("archs", Json::Arr(entries))]))
}

fn handle_job(
    state: &Arc<State>,
    dispatcher: &Dispatcher,
    request: &Request,
    token: Token,
) -> Action {
    let started = Instant::now();
    let body = match std::str::from_utf8(&request.body) {
        Ok(b) => b,
        Err(_) => {
            state.metrics.jobs_bad.fetch_add(1, Ordering::Relaxed);
            return Action::Reply(Response::new(400).json(error_body("body is not utf-8")));
        }
    };
    let spec = match JobSpec::from_json(body) {
        Ok(s) => s,
        Err(e) => {
            state.metrics.jobs_bad.fetch_add(1, Ordering::Relaxed);
            return Action::Reply(Response::new(400).json(error_body(&e.to_string())));
        }
    };
    let key = spec.cache_key();

    // Tier 0: the sharded in-memory hot tier — no disk I/O at all.
    if let Some(cached) = state.hot.get(&key) {
        state.metrics.mem_hits.fetch_add(1, Ordering::Relaxed);
        state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
        state
            .metrics
            .observe_latency(started.elapsed().as_secs_f64());
        return Action::Reply(
            Response::new(200)
                .header("X-Cache", "hit")
                .header("X-Cache-Tier", "mem")
                .header("X-Job-Key", key)
                .json(cached),
        );
    }

    // Tier 1: the on-disk response cache — byte-identical across
    // restarts; promote hits into the hot tier.
    if let Some(cached) = state.store.get(&key) {
        state.metrics.disk_hits.fetch_add(1, Ordering::Relaxed);
        state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
        state.hot.put(&key, &cached);
        state
            .metrics
            .observe_latency(started.elapsed().as_secs_f64());
        return Action::Reply(
            Response::new(200)
                .header("X-Cache", "hit")
                .header("X-Cache-Tier", "disk")
                .header("X-Job-Key", key)
                .json(cached),
        );
    }

    // Long jobs go durable: persist a queued status, enqueue for the
    // checkpointed controller, answer 202 + Location for polling.
    if spec.grid_len() > state.cfg.long_job_points {
        return Action::Reply(durable_submit(state, &key, &spec));
    }

    // Tier 2: compute, under admission control, coalesced with any
    // identical in-flight spec.
    match dispatcher.submit(&state.queue, &key, spec, token, started) {
        Enqueue::Queued => Action::Pending,
        Enqueue::Coalesced => {
            state.metrics.jobs_coalesced.fetch_add(1, Ordering::Relaxed);
            Action::Pending
        }
        Enqueue::Rejected => {
            state.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let retry = state.retry_after_secs();
            Action::Reply(
                Response::new(429)
                    .header("Retry-After", retry.to_string())
                    .json(error_body(&format!(
                        "admission queue full ({} jobs); retry in ~{retry}s",
                        state.queue.capacity()
                    ))),
            )
        }
    }
}

/// Accepts a long job into the durable queue: persist `queued` (or keep
/// an existing non-terminal status — resubmits are idempotent), enqueue,
/// answer `202 Accepted` with a `Location` to poll.
fn durable_submit(state: &Arc<State>, key: &str, spec: &JobSpec) -> Response {
    let status = match state.store.get_job_status(key) {
        Some(existing) if !existing.state.is_terminal() => existing,
        _ => {
            // Fresh submission, or a re-run of a cancelled/failed job:
            // reset to queued and drop any stale cancel marks.
            let queued = JobStatus::queued(spec);
            if let Err(e) = state.store.put_job_status(&queued) {
                state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                return Response::new(500).json(error_body(&e.to_string()));
            }
            state.store.clear_cancel(key);
            state.durable.clear_cancel(key);
            queued
        }
    };
    state.durable.submit(key);
    state.metrics.jobs_accepted.fetch_add(1, Ordering::Relaxed);
    Response::new(202)
        .header("Location", format!("/v1/jobs/{key}"))
        .header("X-Job-Key", key.to_string())
        .json(format!("{}\n", status.to_json()))
}

/// The controller thread: drains the durable queue one job at a time
/// until shutdown. Each job executes in checkpointed chunks, so a
/// SIGTERM mid-sweep loses at most one chunk of work.
fn durable_controller(state: &Arc<State>) {
    while let Some(key) = state.durable.next(&|| state.shutting_down()) {
        execute_durable(state, &key);
    }
}

/// Executes (or resumes) one durable job end to end. The job flock
/// makes the claim exclusive across every process sharing the store;
/// progress persists after each chunk, so whoever claims the key next
/// recomputes only unfinished points (the finished ones are memo hits).
fn execute_durable(state: &Arc<State>, key: &str) {
    if state.shutting_down() {
        return;
    }
    let Some(status) = state.store.get_job_status(key) else {
        return;
    };
    if status.state.is_terminal() {
        return;
    }
    if state.durable.cancel_requested(key) || state.store.cancel_requested(key) {
        finish_cancel(state, key, &status);
        return;
    }
    let spec = match status.job_spec() {
        Ok(spec) => spec,
        Err(e) => {
            let failed = status.with_state(JobState::Failed {
                error: e.to_string(),
            });
            let _ = state.store.put_job_status(&failed);
            return;
        }
    };
    // Claim the job fleet-wide. Waiting is bounded by the current
    // holder's run; shutdown aborts the wait.
    let claim = match state.store.lock_job(key, &|| state.shutting_down()) {
        Ok(Some(claim)) => claim,
        Ok(None) => return,
        Err(e) => {
            eprintln!("tbstc-serve: warning: cannot claim job {key}: {e}");
            return;
        }
    };
    // The previous holder may have finished it while we waited.
    if state.store.get(key).is_some() {
        let _ = state
            .store
            .put_job_status(&status.with_state(JobState::Done));
        return;
    }
    let engine = match state.engine_for(spec.bandwidth_gbps()) {
        Ok(engine) => engine,
        Err(e) => {
            let failed = status.with_state(JobState::Failed {
                error: e.to_string(),
            });
            let _ = state.store.put_job_status(&failed);
            return;
        }
    };
    let grid = spec.grid_jobs();
    let total = grid.len() as u64;
    let bandwidth_gbps = spec.bandwidth_gbps();
    state.metrics.jobs_executed.fetch_add(1, Ordering::Relaxed);
    let _ = state.store.put_job_status(
        &status
            .clone()
            .with_state(JobState::Running { done: 0, total }),
    );
    let compute_started = Instant::now();
    let mut cancelled = false;
    let mut interrupted = false;
    let run = catch_unwind(AssertUnwindSafe(|| {
        engine.run_models_chunked(&grid, state.cfg.chunk_size, &mut |cp| {
            // Checkpoint: persist the chunk's points (memo append) and
            // the progress document before deciding whether to go on.
            let entries: Vec<MemoEntry> = cp
                .chunk_jobs
                .iter()
                .zip(cp.chunk_results)
                .map(|(&job, result)| MemoEntry {
                    bandwidth_gbps,
                    job,
                    result: result.clone(),
                })
                .collect();
            if let Err(e) = state.store.append_memo(&entries) {
                eprintln!("tbstc-serve: warning: checkpoint append failed for {key}: {e}");
            }
            state.metrics.sweep_chunks.fetch_add(1, Ordering::Relaxed);
            let running = status.clone().with_state(JobState::Running {
                done: cp.done as u64,
                total,
            });
            let _ = state.store.put_job_status(&running);
            if state.cfg.chunk_hold_ms > 0 {
                thread::sleep(Duration::from_millis(state.cfg.chunk_hold_ms));
            }
            if state.durable.cancel_requested(key) || state.store.cancel_requested(key) {
                cancelled = true;
                return ChunkControl::Stop;
            }
            if state.shutting_down() {
                interrupted = true;
                return ChunkControl::Stop;
            }
            ChunkControl::Continue
        })
    }));
    state.metrics.busy_us.fetch_add(
        compute_started.elapsed().as_micros() as u64,
        Ordering::Relaxed,
    );
    match run {
        Err(_) => {
            let failed = status.with_state(JobState::Failed {
                error: "job execution panicked".into(),
            });
            let _ = state.store.put_job_status(&failed);
        }
        Ok(None) if cancelled => finish_cancel(state, key, &status),
        Ok(None) => {
            // Shutdown between chunks (or a stop without a cause, which
            // interruption covers): the running{done,total} document and
            // the appended memo chunks are already persisted — the next
            // process resumes from there.
            debug_assert!(interrupted);
        }
        Ok(Some(_warmed)) => {
            // Every grid point is memoized now, so the canonical
            // execution below is pure assembly — byte-identical to the
            // synchronous path's body.
            let executed =
                catch_unwind(AssertUnwindSafe(|| format!("{}\n", spec.execute(&engine))));
            match executed {
                Ok(body) => {
                    if let Err(e) = state.store.put(key, &body) {
                        eprintln!("tbstc-serve: warning: cannot cache job {key}: {e}");
                    }
                    state.hot.put(key, &body);
                    state.metrics.disk_misses.fetch_add(1, Ordering::Relaxed);
                    let _ = state
                        .store
                        .put_job_status(&status.with_state(JobState::Done));
                }
                Err(_) => {
                    let failed = status.with_state(JobState::Failed {
                        error: "job execution panicked".into(),
                    });
                    let _ = state.store.put_job_status(&failed);
                }
            }
        }
    }
    drop(claim);
}

/// Marks a durable job cancelled and clears both cancel marks.
fn finish_cancel(state: &Arc<State>, key: &str, status: &JobStatus) {
    let cancelled = status.clone().with_state(JobState::Cancelled);
    if let Err(e) = state.store.put_job_status(&cancelled) {
        eprintln!("tbstc-serve: warning: cannot persist cancel of {key}: {e}");
    }
    state.store.clear_cancel(key);
    state.durable.clear_cancel(key);
    state.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
}

/// The dispatcher's executor: runs deduplicated batches on the
/// bandwidth-matched engines and persists each result.
struct EngineExecutor {
    state: Arc<State>,
}

impl BatchExecutor for EngineExecutor {
    fn execute(&self, jobs: &[QueuedJob]) -> Vec<Response> {
        self.warm_batches(jobs);
        jobs.iter().map(|job| self.run_one(job)).collect()
    }
}

impl EngineExecutor {
    /// Warms multi-job `simulate` groups through one batched
    /// `SweepRunner` pass per bandwidth, so each job's own execution
    /// below is a pure memo hit. A panic inside the warm pass is
    /// swallowed — the per-job run reports it properly.
    fn warm_batches(&self, jobs: &[QueuedJob]) {
        if jobs.len() < 2 {
            return;
        }
        let mut groups: BTreeMap<u64, Vec<SimJob>> = BTreeMap::new();
        for job in jobs {
            if let JobSpec::Simulate(s) = &job.spec {
                // Inline-spec jobs have no builtin memo key; they run
                // individually through the interpreter in `run_one`.
                let Some(arch) = s.arch.builtin() else {
                    continue;
                };
                groups
                    .entry(s.bandwidth_gbps.to_bits())
                    .or_default()
                    .push(SimJob {
                        arch,
                        model: s.model,
                        sparsity: s.sparsity,
                        seed: s.seed,
                    });
            }
        }
        for (bits, sims) in groups {
            if sims.len() < 2 {
                continue;
            }
            let Ok(engine) = self.state.engine_for(f64::from_bits(bits)) else {
                continue;
            };
            let warmed = catch_unwind(AssertUnwindSafe(|| engine.warm_models(&sims))).unwrap_or(0);
            if warmed > 0 {
                self.state
                    .metrics
                    .jobs_batched
                    .fetch_add(sims.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Executes one deduplicated job: fleet-wide claim, engine lookup,
    /// guarded execution, persistence into both cache tiers.
    fn run_one(&self, job: &QueuedJob) -> Response {
        let state = &self.state;
        // Claim the key across every process sharing the store — the
        // cross-process face of single-flight. Waiting is bounded by
        // the holder's one execution; shutdown aborts the wait.
        let claim = match state.store.lock_job(&job.key, &|| state.shutting_down()) {
            Ok(claim) => claim,
            Err(e) => return Response::new(500).json(error_body(&e.to_string())),
        };
        // Whoever held the lock may have computed this exact spec.
        if let Some(cached) = state.store.get(&job.key) {
            state.metrics.disk_hits.fetch_add(1, Ordering::Relaxed);
            state.hot.put(&job.key, &cached);
            return Response::new(200)
                .header("X-Cache", "hit")
                .header("X-Cache-Tier", "disk")
                .header("X-Job-Key", job.key.clone())
                .json(cached);
        }
        if claim.is_none() {
            // Shutdown aborted the wait and no result landed.
            return Response::new(503).json(error_body("server is shutting down"));
        }
        state.metrics.jobs_executed.fetch_add(1, Ordering::Relaxed);
        let engine = match state.engine_for(job.spec.bandwidth_gbps()) {
            Ok(engine) => engine,
            Err(e) => return Response::new(500).json(error_body(&e.to_string())),
        };
        let compute_started = Instant::now();
        // Simulation code validates its inputs, but a panic in it must
        // cost one job, not the worker: scoped-thread panics propagate
        // here at scope exit, where catch_unwind turns them into a 500.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            format!("{}\n", job.spec.execute(&engine))
        }));
        state.metrics.busy_us.fetch_add(
            compute_started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        let response_body = match executed {
            Ok(body) => body,
            Err(_) => {
                return Response::new(500)
                    .json(error_body("internal error: job execution panicked"));
            }
        };
        if let Err(e) = state.store.put(&job.key, &response_body) {
            eprintln!("tbstc-serve: warning: cannot cache job {}: {e}", job.key);
        }
        state.hot.put(&job.key, &response_body);
        state.metrics.disk_misses.fetch_add(1, Ordering::Relaxed);
        Response::new(200)
            .header("X-Cache", "miss")
            .header("X-Job-Key", job.key.clone())
            .json(response_body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tbstc-server-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_cfg(tag: &str) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: tmp_dir(tag),
            quiet: true,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let server = Server::bind(test_cfg("health")).unwrap();
        let running = server.spawn().unwrap();
        let addr = running.addr.to_string();

        let health = crate::http::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, "ok\n");

        let metrics = crate::http::request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("tbstc_requests_total"));
        assert!(metrics.body.contains("tbstc_worker_utilization"));
        assert!(metrics.body.contains("tbstc_open_connections"));

        let missing = crate::http::request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(missing.status, 404);

        let cache_dir = running.handle().state().store.dir().to_path_buf();
        running.shutdown_and_join();
        let _ = std::fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn archs_catalog_lists_registry() {
        let server = Server::bind(test_cfg("archs")).unwrap();
        let running = server.spawn().unwrap();
        let addr = running.addr.to_string();

        let resp = crate::http::request(&addr, "GET", "/v1/archs", None).unwrap();
        assert_eq!(resp.status, 200);
        let parsed = Json::parse(resp.body.trim()).unwrap();
        let archs = parsed.get("archs").and_then(Json::as_arr).unwrap();
        assert_eq!(archs.len(), tbstc::sim::REGISTRY.len());
        for (entry, model) in archs.iter().zip(tbstc::sim::REGISTRY) {
            assert_eq!(
                entry.get("name").and_then(Json::as_str),
                Some(model.canonical_name())
            );
            assert!(entry.get("lanes").and_then(Json::as_u64).unwrap() > 0);
            assert!(entry.get("inter_block").and_then(Json::as_str).is_some());
            assert!(entry.get("intra_block").and_then(Json::as_str).is_some());
            // Each entry embeds the bundled `tbstc.v1` document verbatim —
            // a client can POST it back as an inline `arch_spec`.
            let spec = entry.get("spec").expect("catalog entry carries a spec");
            let bundled = tbstc::archspec::bundled_text(model.canonical_name()).unwrap();
            assert_eq!(spec.to_string(), bundled.trim_end());
        }

        let cache_dir = running.handle().state().store.dir().to_path_buf();
        running.shutdown_and_join();
        let _ = std::fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn malformed_job_specs_get_400() {
        let server = Server::bind(test_cfg("badspec")).unwrap();
        let running = server.spawn().unwrap();
        let addr = running.addr.to_string();

        for bad in ["{nope", r#"{"type":"simulate"}"#, r#"{"type":"warp"}"#] {
            let resp = crate::http::request(&addr, "POST", "/v1/jobs", Some(bad)).unwrap();
            assert_eq!(resp.status, 400, "{bad}");
            assert!(resp.body.contains("error"));
        }

        let cache_dir = running.handle().state().store.dir().to_path_buf();
        running.shutdown_and_join();
        let _ = std::fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn keep_alive_pipelined_requests_share_one_connection() {
        use std::io::{Read as _, Write as _};
        let server = Server::bind(test_cfg("keepalive")).unwrap();
        let running = server.spawn().unwrap();
        let mut stream = std::net::TcpStream::connect(running.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // Two pipelined requests in one segment, then a third on the
        // same (kept-alive) connection.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        while String::from_utf8_lossy(&buf).matches("ok\n").count() < 2 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(
                n > 0,
                "server closed early: {}",
                String::from_utf8_lossy(&buf)
            );
            buf.extend_from_slice(&chunk[..n]);
        }
        let text = String::from_utf8_lossy(&buf);
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
        assert_eq!(text.matches("Connection: keep-alive").count(), 2, "{text}");

        // Third request on the same socket proves the connection stayed
        // usable — including after a 400 (malformed spec) below.
        stream
            .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\n{nope")
            .unwrap();
        let mut resp = Vec::new();
        while String::from_utf8_lossy(&resp)
            .matches("HTTP/1.1 400")
            .count()
            < 1
        {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed after bad spec");
            resp.extend_from_slice(&chunk[..n]);
        }
        // The 400 must NOT close the connection (application error, not
        // protocol error): a fourth request still works.
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut fourth = Vec::new();
        while String::from_utf8_lossy(&fourth).matches("ok\n").count() < 1 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed after 400 response");
            fourth.extend_from_slice(&chunk[..n]);
        }

        let cache_dir = running.handle().state().store.dir().to_path_buf();
        running.shutdown_and_join();
        let _ = std::fs::remove_dir_all(cache_dir);
    }

    #[test]
    fn oversized_request_line_gets_431_and_close() {
        use std::io::{Read as _, Write as _};
        let server = Server::bind(test_cfg("toolong")).unwrap();
        let running = server.spawn().unwrap();
        let mut stream = std::net::TcpStream::connect(running.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let long_path = "a".repeat(crate::conn::MAX_REQUEST_LINE_BYTES + 100);
        stream
            .write_all(format!("GET /{long_path} HTTP/1.1\r\n\r\n").as_bytes())
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("431"), "expected 431, got: {text}");
        assert!(text.contains("Connection: close"), "{text}");

        let cache_dir = running.handle().state().store.dir().to_path_buf();
        running.shutdown_and_join();
        let _ = std::fs::remove_dir_all(cache_dir);
    }
}
