//! Bounded in-memory hot tier above the on-disk result store.
//!
//! Sharded by the first hex nibble of the FNV-1a-128 content address —
//! [`SHARDS`] independent locks, so the event loop's cache probes and
//! the workers' inserts contend only within a shard. Each shard is a
//! small recency-stamped map with oldest-entry eviction; capacity is
//! counted in entries because result bodies are uniformly small
//! (simulate ≈ 300 B, sweep grids a few KiB — see DESIGN.md §12 for
//! the sizing argument).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Number of independent shards (first hex nibble of the key).
pub const SHARDS: usize = 16;

/// Default total entry capacity across all shards.
pub const DEFAULT_HOT_CAPACITY: usize = 2048;

#[derive(Debug, Default)]
struct Shard {
    entries: BTreeMap<String, (u64, String)>,
}

/// A sharded, bounded, recency-evicting map from content address to
/// response body.
#[derive(Debug)]
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedLru {
    /// Creates the cache with `capacity` total entries (rounded up to
    /// at least one per shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        let mut shards = Vec::with_capacity(SHARDS);
        for _ in 0..SHARDS {
            shards.push(Mutex::new(Shard::default()));
        }
        Self {
            shards,
            per_shard,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> Option<&Mutex<Shard>> {
        let nibble = key
            .as_bytes()
            .first()
            .map(|b| (*b as usize) % SHARDS)
            .unwrap_or(0);
        self.shards.get(nibble)
    }

    /// Looks up `key`, refreshing its recency stamp on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self
            .shard_of(key)?
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match shard.entries.get_mut(key) {
            Some((stamp, body)) => {
                *stamp = now;
                let body = body.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's oldest entry
    /// when at capacity.
    pub fn put(&self, key: &str, body: &str) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let Some(mutex) = self.shard_of(key) else {
            return;
        };
        let mut shard = mutex.lock().unwrap_or_else(PoisonError::into_inner);
        if !shard.entries.contains_key(key) && shard.entries.len() >= self.per_shard {
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                shard.entries.remove(&oldest);
            }
        }
        shard
            .entries
            .insert(key.to_string(), (now, body.to_string()));
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl Default for ShardedLru {
    fn default() -> Self {
        Self::new(DEFAULT_HOT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_put_hits_and_counts() {
        let lru = ShardedLru::new(64);
        assert_eq!(lru.get("aaaa"), None);
        lru.put("aaaa", "body-a");
        assert_eq!(lru.get("aaaa").as_deref(), Some("body-a"));
        let (hits, misses) = lru.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn eviction_drops_least_recently_used_within_shard() {
        // Capacity 16 → one entry per shard; same first nibble keeps
        // keys in one shard.
        let lru = ShardedLru::new(16);
        lru.put("a1", "one");
        lru.put("a2", "two");
        assert_eq!(lru.get("a1"), None, "oldest entry must be evicted");
        assert_eq!(lru.get("a2").as_deref(), Some("two"));
    }

    #[test]
    fn recency_refresh_protects_hot_entries() {
        let lru = ShardedLru::new(32); // two per shard
        lru.put("a1", "one");
        lru.put("a2", "two");
        assert!(lru.get("a1").is_some()); // refresh a1
        lru.put("a3", "three"); // evicts a2, not a1
        assert!(lru.get("a1").is_some());
        assert_eq!(lru.get("a2"), None);
        assert!(lru.get("a3").is_some());
    }

    #[test]
    fn keys_spread_across_shards() {
        let lru = ShardedLru::new(160);
        for nibble in "0123456789abcdef".chars() {
            lru.put(&format!("{nibble}key"), "v");
        }
        assert_eq!(lru.len(), 16);
    }
}
