//! Component inventories: area/power of each architecture's datapath.
//!
//! The paper's Fig. 6 compares the per-PE datapaths of NVIDIA STC, RM-STC
//! and TB-STC; Table III breaks TB-STC down into the DVPE array, codec
//! unit and MBD unit. Every architecture here is an inventory of the unit
//! costs in [`crate::units`] with the structural counts from §VII-A1:
//! 8 DVPE arrays × (2 × 8) DVPEs × 8 FP16 multipliers.

use crate::units;

/// Area and (peak) power of one named component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentCost {
    /// Component name as it appears in Table III.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power at 1 GHz full activity, mW.
    pub power_mw: f64,
}

/// A datapath's full component inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathCosts {
    /// Architecture name.
    pub name: &'static str,
    /// Component list.
    pub components: Vec<ComponentCost>,
}

impl DatapathCosts {
    /// Total area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total peak power, mW.
    pub fn total_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentCost> {
        self.components.iter().find(|c| c.name == name)
    }
}

/// Structural counts of the evaluated configuration (paper §VII-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeArrayShape {
    /// Number of DVPE arrays.
    pub arrays: usize,
    /// DVPEs per array (2 × 8 in the paper).
    pub dvpes_per_array: usize,
    /// FP16 multipliers per DVPE.
    pub mults_per_dvpe: usize,
}

impl PeArrayShape {
    /// The paper's configuration: 8 arrays × 16 DVPEs × 8 multipliers.
    pub fn paper_default() -> Self {
        PeArrayShape {
            arrays: 8,
            dvpes_per_array: 16,
            mults_per_dvpe: 8,
        }
    }

    /// Total DVPE count.
    pub fn dvpes(&self) -> usize {
        self.arrays * self.dvpes_per_array
    }

    /// Total multiplier count.
    pub fn mults(&self) -> usize {
        self.dvpes() * self.mults_per_dvpe
    }
}

const UM2_PER_MM2: f64 = 1e6;
const UW_PER_MW: f64 = 1e3;

/// The TB-STC DVPE array: multipliers + reduction nodes + alternate units.
pub fn dvpe_array(shape: PeArrayShape) -> ComponentCost {
    let dvpes = shape.dvpes() as f64;
    let mults = shape.mults() as f64;
    let nodes = (shape.mults_per_dvpe - 1) as f64; // binary reduction tree
    let area = mults * units::FP16_MULT_AREA_UM2
        + dvpes * (nodes * units::REDUCTION_NODE_AREA_UM2 + units::ALTERNATE_UNIT_AREA_UM2);
    let power = mults * units::FP16_MULT_POWER_UW
        + dvpes * (nodes * units::REDUCTION_NODE_POWER_UW + units::ALTERNATE_UNIT_POWER_UW);
    ComponentCost {
        name: "DVPE Array",
        area_mm2: area / UM2_PER_MM2,
        power_mw: power / UW_PER_MW,
    }
}

/// The adaptive codec unit: 8 queues × 16 entries × 2.5 bytes, a merger
/// network, and the output multiplexers.
pub fn codec_unit() -> ComponentCost {
    let queue_bytes = 8.0 * 16.0 * 2.5;
    let muxes = 16.0;
    let area = queue_bytes * units::QUEUE_BYTE_AREA_UM2
        + units::MERGER_AREA_UM2
        + muxes * units::MUX8_AREA_UM2;
    let power = queue_bytes * units::QUEUE_BYTE_POWER_UW
        + units::MERGER_POWER_UW
        + muxes * units::MUX8_POWER_UW;
    ComponentCost {
        name: "Codec Unit",
        area_mm2: area / UM2_PER_MM2,
        power_mw: power / UW_PER_MW,
    }
}

/// The Matrix-B distribution unit: 16 8-to-1 MUXes + 4 8×8 transpose units
/// (paper §VII-A1).
pub fn mbd_unit() -> ComponentCost {
    let area = 16.0 * units::MUX8_AREA_UM2 + 4.0 * units::TRANSPOSE8_AREA_UM2;
    let power = 16.0 * units::MUX8_POWER_UW + 4.0 * units::TRANSPOSE8_POWER_UW;
    ComponentCost {
        name: "MBD Unit",
        area_mm2: area / UM2_PER_MM2,
        power_mw: power / UW_PER_MW,
    }
}

/// The plain dense Tensor Core datapath (no sparsity support).
pub fn tensor_core(shape: PeArrayShape) -> DatapathCosts {
    let mults = shape.mults() as f64;
    let dvpes = shape.dvpes() as f64;
    let nodes = (shape.mults_per_dvpe - 1) as f64;
    // Fixed adder tree: same adders, no configurable bypass or alternate.
    let area =
        mults * units::FP16_MULT_AREA_UM2 + dvpes * nodes * units::REDUCTION_NODE_AREA_UM2 * 0.8;
    let power =
        mults * units::FP16_MULT_POWER_UW + dvpes * nodes * units::REDUCTION_NODE_POWER_UW * 0.8;
    DatapathCosts {
        name: "TC",
        components: vec![ComponentCost {
            name: "VPE Array",
            area_mm2: area / UM2_PER_MM2,
            power_mw: power / UW_PER_MW,
        }],
    }
}

/// NVIDIA STC: Tensor Core plus the 2:4 input multiplexers (paper Fig. 6(a)
/// — "whose additional overhead is very small").
pub fn nvidia_stc(shape: PeArrayShape) -> DatapathCosts {
    let mut dp = tensor_core(shape);
    let mux_count = shape.mults() as f64; // one select mux per lane
    dp.name = "STC";
    dp.components.push(ComponentCost {
        name: "Select MUXes",
        area_mm2: mux_count * units::MUX8_AREA_UM2 * 0.5 / UM2_PER_MM2, // 4-to-1
        power_mw: mux_count * units::MUX8_POWER_UW * 0.5 / UW_PER_MW,
    });
    dp
}

/// VEGETA-style row-wise N:M datapath: per-lane muxes plus per-row ratio
/// control.
pub fn vegeta(shape: PeArrayShape) -> DatapathCosts {
    let mut dp = nvidia_stc(shape);
    dp.name = "VEGETA";
    dp.components.push(ComponentCost {
        name: "Row-ratio control",
        area_mm2: shape.dvpes() as f64 * 220.0 / UM2_PER_MM2,
        power_mw: shape.dvpes() as f64 * 14.0 / UW_PER_MW,
    });
    dp
}

/// HighLight-style hierarchical datapath: tile-level gating on top of the
/// N:M muxes.
pub fn highlight(shape: PeArrayShape) -> DatapathCosts {
    let mut dp = nvidia_stc(shape);
    dp.name = "HighLight";
    dp.components.push(ComponentCost {
        name: "Hierarchical gating",
        area_mm2: shape.dvpes() as f64 * 300.0 / UM2_PER_MM2,
        power_mw: shape.dvpes() as f64 * 18.0 / UW_PER_MW,
    });
    dp
}

/// RM-STC: Tensor Core plus the gather and union modules that handle
/// unstructured sparsity (paper Fig. 6(b) — "whose irregularity greatly
/// burdens the hardware").
pub fn rm_stc(shape: PeArrayShape) -> DatapathCosts {
    let mut dp = tensor_core(shape);
    let lanes = shape.mults() as f64;
    dp.name = "RM-STC";
    dp.components.push(ComponentCost {
        name: "Gather module",
        area_mm2: lanes * units::GATHER_LANE_AREA_UM2 / UM2_PER_MM2,
        power_mw: lanes * units::GATHER_LANE_POWER_UW / UW_PER_MW,
    });
    dp.components.push(ComponentCost {
        name: "Union module",
        area_mm2: lanes * units::UNION_LANE_AREA_UM2 / UM2_PER_MM2,
        power_mw: lanes * units::UNION_LANE_POWER_UW / UW_PER_MW,
    });
    dp
}

/// TB-STC: the DVPE array + codec + MBD (paper Fig. 6(c) / Table III).
pub fn tb_stc(shape: PeArrayShape) -> DatapathCosts {
    DatapathCosts {
        name: "TB-STC",
        components: vec![dvpe_array(shape), codec_unit(), mbd_unit()],
    }
}

/// The DVPE array with SIGMA's element-level FAN instead of the TB-STC
/// reduction network (ablation, paper §VII-E2).
pub fn dvpe_with_fan(shape: PeArrayShape) -> DatapathCosts {
    let mults = shape.mults() as f64;
    let base = mults * units::FP16_MULT_AREA_UM2;
    let base_p = mults * units::FP16_MULT_POWER_UW;
    // FAN: ~2 nodes per multiplier (forwarding adders + links).
    let fan_nodes = mults * 2.0;
    DatapathCosts {
        name: "DVPE+FAN",
        components: vec![
            ComponentCost {
                name: "Multiplier lanes",
                area_mm2: base / UM2_PER_MM2,
                power_mw: base_p / UW_PER_MW,
            },
            ComponentCost {
                name: "FAN",
                area_mm2: fan_nodes * units::FAN_NODE_AREA_UM2 / UM2_PER_MM2,
                power_mw: fan_nodes * units::FAN_NODE_POWER_UW / UW_PER_MW,
            },
            codec_unit(),
            mbd_unit(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> PeArrayShape {
        PeArrayShape::paper_default()
    }

    #[test]
    fn paper_shape_counts() {
        let s = shape();
        assert_eq!(s.dvpes(), 128);
        assert_eq!(s.mults(), 1024);
    }

    #[test]
    fn dvpe_array_matches_table3() {
        let c = dvpe_array(shape());
        assert!((c.area_mm2 - 1.43).abs() < 0.01, "area {}", c.area_mm2);
        assert!((c.power_mw - 197.71).abs() < 4.0, "power {}", c.power_mw);
    }

    #[test]
    fn codec_matches_table3() {
        let c = codec_unit();
        assert!((c.area_mm2 - 0.03).abs() < 0.005, "area {}", c.area_mm2);
        assert!((c.power_mw - 2.19).abs() < 0.3, "power {}", c.power_mw);
    }

    #[test]
    fn mbd_matches_table3() {
        let c = mbd_unit();
        assert!((c.area_mm2 - 0.01).abs() < 0.002, "area {}", c.area_mm2);
        assert!((c.power_mw - 0.69).abs() < 0.1, "power {}", c.power_mw);
    }

    #[test]
    fn reduction_network_is_0_08_mm2() {
        // Paper: "TB-STC adds a reduction network (total of 0.08 mm² area
        // including alternate unit) within the DVPE array".
        let s = shape();
        let add_ons = s.dvpes() as f64
            * ((s.mults_per_dvpe - 1) as f64 * crate::units::REDUCTION_NODE_AREA_UM2
                + crate::units::ALTERNATE_UNIT_AREA_UM2)
            / 1e6;
        assert!((add_ons - 0.08).abs() < 0.005, "{add_ons}");
    }

    #[test]
    fn stc_overhead_is_small() {
        let tc = tensor_core(shape()).total_area_mm2();
        let stc = nvidia_stc(shape()).total_area_mm2();
        assert!((stc - tc) / tc < 0.12, "STC adds only muxes");
    }

    #[test]
    fn rm_stc_burdened_by_gather_union() {
        // Fig. 6(d): RM-STC power clearly exceeds TB-STC power.
        let rm = rm_stc(shape()).total_power_mw();
        let tb = tb_stc(shape()).total_power_mw();
        assert!(rm > 1.5 * tb, "RM-STC {rm} vs TB-STC {tb}");
    }

    #[test]
    fn tb_stc_area_below_rm_stc() {
        // Paper: TB-STC integration overhead 1.57% < RM-STC ~1.8%.
        assert!(tb_stc(shape()).total_area_mm2() < rm_stc(shape()).total_area_mm2());
    }

    #[test]
    fn fan_costs_more_than_tb_stc_reduction() {
        let fan = dvpe_with_fan(shape());
        let tb = tb_stc(shape());
        assert!(fan.total_power_mw() > tb.total_power_mw());
    }

    #[test]
    fn component_lookup() {
        let tb = tb_stc(shape());
        assert!(tb.component("Codec Unit").is_some());
        assert!(tb.component("Nonexistent").is_none());
    }
}
