//! Analytical area, power and energy models for the TB-STC reproduction.
//!
//! The paper's hardware-overhead numbers come from RTL synthesis (Synopsys
//! DC), Sparseloop, CACTI 7 and DRAMPower, all scaled to 7 nm / 1 GHz.
//! This crate substitutes an analytical model:
//!
//! * [`units`] — per-unit costs (FP16 multiplier, reduction node, queue
//!   byte, MUX leg, SRAM) at 7 nm / 1 GHz,
//! * [`components`] — component inventories for TB-STC and every baseline
//!   datapath (TC, STC, VEGETA, HighLight, RM-STC, SIGMA-FAN), built from
//!   the unit costs,
//! * [`table3`] — regenerates the paper's Table III area/power breakdown,
//! * [`scaling`] — DeepScaleTool-style technology scaling factors,
//! * [`edp`] — energy and Energy-Delay-Product accounting used by the
//!   simulator.
//!
//! # Examples
//!
//! ```
//! use tbstc_energy::table3::tb_stc_breakdown;
//!
//! let t = tb_stc_breakdown();
//! // Paper Table III: 1.47 mm², 200.59 mW.
//! assert!((t.total_area_mm2() - 1.47).abs() < 0.03);
//! assert!((t.total_power_mw() - 200.59).abs() < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod edp;
pub mod scaling;
pub mod table3;
pub mod units;

pub use components::{ComponentCost, DatapathCosts};
pub use edp::{EdpPoint, EnergyBreakdown};
