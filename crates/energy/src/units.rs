//! Per-unit area and power costs at 7 nm / 1 GHz.
//!
//! These constants play the role of the synthesized cell library: every
//! component model in [`crate::components`] is a weighted sum of them. The
//! values are calibrated so that the TB-STC inventory reproduces the
//! paper's Table III (1.47 mm² / 200.59 mW with a 97/2/1 split between the
//! DVPE array, codec and MBD units) while staying in the plausible range
//! for 7 nm standard-cell implementations.

/// Area of one FP16 multiplier lane including its input registers, µm².
pub const FP16_MULT_AREA_UM2: f64 = 1318.0;
/// Dynamic + leakage power of one FP16 multiplier lane at 1 GHz full
/// utilization, µW.
pub const FP16_MULT_POWER_UW: f64 = 180.0;

/// Area of one reduction node (FP16 adder + transmit bypass), µm².
pub const REDUCTION_NODE_AREA_UM2: f64 = 70.0;
/// Power of one reduction node, µW.
pub const REDUCTION_NODE_POWER_UW: f64 = 9.0;

/// Area of one alternate unit (output buffer + merge mux) per DVPE, µm².
pub const ALTERNATE_UNIT_AREA_UM2: f64 = 135.0;
/// Power of one alternate unit, µW.
pub const ALTERNATE_UNIT_POWER_UW: f64 = 18.0;

/// Area of one queue byte (register + control share) in the codec, µm².
pub const QUEUE_BYTE_AREA_UM2: f64 = 55.0;
/// Power of one queue byte, µW.
pub const QUEUE_BYTE_POWER_UW: f64 = 4.0;

/// Area of the codec merger network (per codec instance), µm².
pub const MERGER_AREA_UM2: f64 = 9000.0;
/// Power of the merger network, µW.
pub const MERGER_POWER_UW: f64 = 700.0;

/// Area of one 8-to-1 multiplexer (16-bit datapath), µm².
pub const MUX8_AREA_UM2: f64 = 260.0;
/// Power of one 8-to-1 multiplexer, µW.
pub const MUX8_POWER_UW: f64 = 19.0;

/// Area of one 8×8 transpose unit (register array + routing), µm².
pub const TRANSPOSE8_AREA_UM2: f64 = 1460.0;
/// Power of one transpose unit, µW.
pub const TRANSPOSE8_POWER_UW: f64 = 95.0;

/// Area of RM-STC's gather module per PE lane (CAM-like match logic), µm².
pub const GATHER_LANE_AREA_UM2: f64 = 700.0;
/// Power of the gather module per lane, µW.
pub const GATHER_LANE_POWER_UW: f64 = 95.0;

/// Area of RM-STC's union module per PE lane, µm².
pub const UNION_LANE_AREA_UM2: f64 = 500.0;
/// Power of the union module per lane, µW.
pub const UNION_LANE_POWER_UW: f64 = 70.0;

/// Area of one SIGMA FAN (forwarding adder network) node, µm².
///
/// FAN is element-granular, so its node count scales with multiplier count
/// and its per-node cost exceeds a plain reduction node (paper §VII-E2).
pub const FAN_NODE_AREA_UM2: f64 = 210.0;
/// Power of one FAN node, µW (element-granular forwarding keeps long
/// wires and comparators switching every cycle).
pub const FAN_NODE_POWER_UW: f64 = 70.0;

/// SRAM macro density at 7 nm, mm² per KiB (CACTI-class).
pub const SRAM_AREA_MM2_PER_KIB: f64 = 0.0008;
/// SRAM read energy, pJ per byte.
pub const SRAM_READ_PJ_PER_BYTE: f64 = 0.8;
/// SRAM leakage, µW per KiB.
pub const SRAM_LEAKAGE_UW_PER_KIB: f64 = 2.0;

/// Energy of one FP16 multiply-accumulate at 7 nm, pJ.
pub const FP16_MAC_PJ: f64 = 0.8;
/// Register-file energy per byte moved, pJ.
pub const REGFILE_PJ_PER_BYTE: f64 = 0.15;

/// NVIDIA A100 constants used by the paper's 1.57 % area argument.
pub mod a100 {
    /// A100 die area, mm².
    pub const DIE_AREA_MM2: f64 = 826.0;
    /// Tensor-core-equivalent count the paper scales by.
    pub const TENSOR_CORE_EQUIV: f64 = 108.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_costs_are_positive() {
        for v in [
            FP16_MULT_AREA_UM2,
            FP16_MULT_POWER_UW,
            REDUCTION_NODE_AREA_UM2,
            QUEUE_BYTE_AREA_UM2,
            MUX8_AREA_UM2,
            TRANSPOSE8_AREA_UM2,
            FP16_MAC_PJ,
            SRAM_AREA_MM2_PER_KIB,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn mac_energy_plausible_for_7nm() {
        // FP16 MAC at 7 nm is a fraction of a pJ to ~1 pJ.
        assert!((0.1..2.0).contains(&FP16_MAC_PJ));
    }

    #[test]
    fn gather_union_exceed_plain_reduction() {
        // The reason RM-STC's unstructured support burdens the hardware
        // (paper Fig. 6(d)).
        const { assert!(GATHER_LANE_POWER_UW + UNION_LANE_POWER_UW > 10.0 * REDUCTION_NODE_POWER_UW) }
    }
}
