//! Energy and Energy-Delay-Product accounting (Sparseloop-lite).
//!
//! The simulator produces counters (MACs, buffer bytes, cycles, DRAM
//! energy); this module turns them into the energy and EDP numbers the
//! paper's figures plot. Following Sparseloop's methodology, energy is a
//! sum of per-access energies plus component power integrated over time.

use crate::units;

/// The raw activity counters of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// FP16 multiply-accumulates executed.
    pub macs: u64,
    /// Bytes moved through the on-chip buffer / register files.
    pub buffer_bytes: u64,
    /// Execution cycles at 1 GHz.
    pub cycles: u64,
    /// Datapath peak power (mW) integrated over the run — pass the
    /// architecture's total from [`crate::components`].
    pub datapath_power_mw: f64,
    /// Fraction of cycles the datapath was actually active (clock gating);
    /// idle cycles burn 20 % of peak.
    pub active_fraction: f64,
    /// DRAM energy from the DRAM model, picojoules.
    pub dram_energy_pj: f64,
    /// Per-MAC energy multiplier over the plain FP16 MAC (index-matching
    /// overhead of unstructured datapaths; 0.0 is treated as 1.0 so that
    /// `Default` stays sane).
    pub mac_energy_scale: f64,
}

impl EnergyBreakdown {
    /// Dynamic compute energy, pJ.
    pub fn compute_pj(&self) -> f64 {
        let scale = if self.mac_energy_scale <= 0.0 {
            1.0
        } else {
            self.mac_energy_scale
        };
        self.macs as f64 * units::FP16_MAC_PJ * scale
    }

    /// On-chip data-movement energy, pJ.
    pub fn buffer_pj(&self) -> f64 {
        self.buffer_bytes as f64 * units::SRAM_READ_PJ_PER_BYTE
            + self.buffer_bytes as f64 * units::REGFILE_PJ_PER_BYTE
    }

    /// Static + clock energy of the datapath over the run, pJ.
    ///
    /// `power · time`, with idle cycles discounted to 20 % of peak.
    pub fn datapath_pj(&self) -> f64 {
        let active = self.active_fraction.clamp(0.0, 1.0);
        let effective = active + (1.0 - active) * 0.2;
        // mW × cycles at 1 GHz = µW·µs = pJ × 1000: 1 mW for 1 ns = 1 pJ.
        self.datapath_power_mw * effective * self.cycles as f64
    }

    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj() + self.buffer_pj() + self.datapath_pj() + self.dram_energy_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }
}

/// A `(delay, energy)` point with EDP helpers — one run of one
/// architecture on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdpPoint {
    /// Execution cycles.
    pub cycles: u64,
    /// Total energy, pJ.
    pub energy_pj: f64,
}

impl EdpPoint {
    /// Energy-Delay Product in pJ·cycles.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.cycles as f64
    }

    /// Speedup of `self` relative to `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &EdpPoint) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// EDP improvement of `self` relative to `baseline` (>1 means better).
    pub fn edp_gain_over(&self, baseline: &EdpPoint) -> f64 {
        baseline.edp() / self.edp()
    }

    /// EDP normalized to a baseline (baseline = 1.0; smaller is better).
    pub fn normalized_edp(&self, baseline: &EdpPoint) -> f64 {
        self.edp() / baseline.edp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> EnergyBreakdown {
        EnergyBreakdown {
            macs: 1_000_000,
            buffer_bytes: 4_000_000,
            cycles: 10_000,
            datapath_power_mw: 200.0,
            active_fraction: 0.8,
            dram_energy_pj: 5e6,
            mac_energy_scale: 1.0,
        }
    }

    #[test]
    fn energy_components_are_positive_and_sum() {
        let b = breakdown();
        let total = b.total_pj();
        assert!(total > 0.0);
        assert!(
            (total - (b.compute_pj() + b.buffer_pj() + b.datapath_pj() + b.dram_energy_pj)).abs()
                < 1e-6
        );
    }

    #[test]
    fn compute_energy_matches_mac_count() {
        let b = breakdown();
        assert!((b.compute_pj() - 1_000_000.0 * units::FP16_MAC_PJ).abs() < 1e-6);
    }

    #[test]
    fn idle_cycles_cost_less() {
        let mut busy = breakdown();
        busy.active_fraction = 1.0;
        let mut idle = breakdown();
        idle.active_fraction = 0.0;
        assert!(idle.datapath_pj() < busy.datapath_pj());
        assert!(idle.datapath_pj() > 0.0, "leakage never reaches zero");
    }

    #[test]
    fn edp_combines_energy_and_delay() {
        let fast = EdpPoint {
            cycles: 100,
            energy_pj: 1000.0,
        };
        let slow = EdpPoint {
            cycles: 200,
            energy_pj: 1000.0,
        };
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(fast.edp_gain_over(&slow), 2.0);
        assert_eq!(slow.normalized_edp(&fast), 2.0);
    }

    #[test]
    fn equal_speed_lower_power_wins_edp() {
        // The RM-STC vs TB-STC situation (paper §VII-C1): similar speedup,
        // different energy, so TB-STC wins EDP.
        let tb = EdpPoint {
            cycles: 100,
            energy_pj: 1000.0,
        };
        let rm = EdpPoint {
            cycles: 94,
            energy_pj: 1750.0,
        };
        assert!(tb.edp_gain_over(&rm) > 1.5);
        assert!(rm.speedup_over(&tb) > 1.0);
    }

    #[test]
    fn active_fraction_is_clamped() {
        let mut b = breakdown();
        b.active_fraction = 3.0;
        let at_one = {
            let mut c = breakdown();
            c.active_fraction = 1.0;
            c.datapath_pj()
        };
        assert_eq!(b.datapath_pj(), at_one);
    }
}
