//! Regenerates the paper's Table III (area and power breakdown) and the
//! §VII-C4 integration-overhead arithmetic.

use crate::components::{tb_stc, DatapathCosts, PeArrayShape};
use crate::units::a100;

/// The TB-STC breakdown at the paper's configuration.
///
/// # Examples
///
/// ```
/// use tbstc_energy::table3::tb_stc_breakdown;
///
/// let t = tb_stc_breakdown();
/// let dvpe = t.component("DVPE Array").unwrap();
/// // DVPE array dominates (97.28 % of area in the paper).
/// assert!(dvpe.area_mm2 / t.total_area_mm2() > 0.95);
/// ```
pub fn tb_stc_breakdown() -> DatapathCosts {
    tb_stc(PeArrayShape::paper_default())
}

/// One row of the printed Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Component name.
    pub component: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Share of total area.
    pub area_share: f64,
    /// Power in mW.
    pub power_mw: f64,
    /// Share of total power.
    pub power_share: f64,
}

/// Produces the Table III rows (components then Total).
pub fn table3_rows() -> Vec<Table3Row> {
    let dp = tb_stc_breakdown();
    let ta = dp.total_area_mm2();
    let tp = dp.total_power_mw();
    let mut rows: Vec<Table3Row> = dp
        .components
        .iter()
        .map(|c| Table3Row {
            component: c.name.to_string(),
            area_mm2: c.area_mm2,
            area_share: c.area_mm2 / ta,
            power_mw: c.power_mw,
            power_share: c.power_mw / tp,
        })
        .collect();
    rows.push(Table3Row {
        component: "Total".to_string(),
        area_mm2: ta,
        area_share: 1.0,
        power_mw: tp,
        power_share: 1.0,
    });
    rows
}

/// The paper's integration argument: TB-STC equals 1/108 of an A100's
/// tensor cores; the *added* units (reduction network + codec + MBD,
/// ≈0.12 mm²) scaled by 108 give the extra die area.
///
/// Returns `(added_mm2_total, fraction_of_a100_die)` — the paper reports
/// (12.96 mm², 1.57 %).
pub fn a100_integration_overhead() -> (f64, f64) {
    let dp = tb_stc_breakdown();
    let codec = dp.component("Codec Unit").map_or(0.0, |c| c.area_mm2);
    let mbd = dp.component("MBD Unit").map_or(0.0, |c| c.area_mm2);
    // Reduction network + alternate units inside the DVPE array (0.08 mm²).
    let shape = PeArrayShape::paper_default();
    let reduction = shape.dvpes() as f64
        * ((shape.mults_per_dvpe - 1) as f64 * crate::units::REDUCTION_NODE_AREA_UM2
            + crate::units::ALTERNATE_UNIT_AREA_UM2)
        / 1e6;
    let added_per_core = codec + mbd + reduction;
    let total = added_per_core * a100::TENSOR_CORE_EQUIV;
    (total, total / a100::DIE_AREA_MM2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let t = tb_stc_breakdown();
        assert!(
            (t.total_area_mm2() - 1.47).abs() < 0.03,
            "{}",
            t.total_area_mm2()
        );
        assert!(
            (t.total_power_mw() - 200.59).abs() < 4.0,
            "{}",
            t.total_power_mw()
        );
    }

    #[test]
    fn shares_match_paper_structure() {
        let rows = table3_rows();
        let dvpe = rows.iter().find(|r| r.component == "DVPE Array").unwrap();
        assert!(
            (dvpe.area_share - 0.9728).abs() < 0.01,
            "{}",
            dvpe.area_share
        );
        assert!(
            (dvpe.power_share - 0.9857).abs() < 0.01,
            "{}",
            dvpe.power_share
        );
        let codec = rows.iter().find(|r| r.component == "Codec Unit").unwrap();
        assert!((codec.area_share - 0.0204).abs() < 0.01);
    }

    #[test]
    fn total_row_is_last_and_consistent() {
        let rows = table3_rows();
        let total = rows.last().unwrap();
        assert_eq!(total.component, "Total");
        let sum: f64 = rows[..rows.len() - 1].iter().map(|r| r.area_mm2).sum();
        assert!((sum - total.area_mm2).abs() < 1e-9);
    }

    #[test]
    fn a100_overhead_matches_paper() {
        // Paper: 0.12 × 108 = 12.96 mm², 1.57% of 826 mm².
        let (added, frac) = a100_integration_overhead();
        assert!((added - 12.96).abs() < 0.7, "{added}");
        assert!((frac - 0.0157).abs() < 0.001, "{frac}");
    }
}
