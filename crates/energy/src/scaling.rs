//! Technology scaling (DeepScaleTool / Stillmaker-Baas style).
//!
//! The paper scales all synthesized components to 7 nm "according to
//! [53], [58]". This module provides the same service: factors to convert
//! area, power and delay between process nodes, from a table fitted to the
//! published scaling equations for standard-cell logic.

/// A process node supported by the scaling table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// 45 nm planar.
    N45,
    /// 32 nm planar.
    N32,
    /// 22 nm planar/early FinFET.
    N22,
    /// 16 nm FinFET.
    N16,
    /// 10 nm FinFET.
    N10,
    /// 7 nm FinFET (the paper's target).
    N7,
}

impl Node {
    /// All nodes, oldest first.
    pub const ALL: [Node; 6] = [
        Node::N45,
        Node::N32,
        Node::N22,
        Node::N16,
        Node::N10,
        Node::N7,
    ];

    /// Nominal feature size in nm.
    pub fn nm(self) -> f64 {
        match self {
            Node::N45 => 45.0,
            Node::N32 => 32.0,
            Node::N22 => 22.0,
            Node::N16 => 16.0,
            Node::N10 => 10.0,
            Node::N7 => 7.0,
        }
    }

    /// Relative logic density (area per gate) normalized to 45 nm = 1.0.
    ///
    /// Fitted to Stillmaker-Baas: real density gains lag the ideal
    /// `(s1/s2)²` because of FinFET design rules.
    fn area_per_gate(self) -> f64 {
        match self {
            Node::N45 => 1.0,
            Node::N32 => 0.53,
            Node::N22 => 0.27,
            Node::N16 => 0.16,
            Node::N10 => 0.095,
            Node::N7 => 0.06,
        }
    }

    /// Relative energy per operation normalized to 45 nm = 1.0.
    fn energy_per_op(self) -> f64 {
        match self {
            Node::N45 => 1.0,
            Node::N32 => 0.62,
            Node::N22 => 0.41,
            Node::N16 => 0.28,
            Node::N10 => 0.21,
            Node::N7 => 0.16,
        }
    }
}

/// Multiplier converting an area at `from` into the equivalent at `to`.
///
/// # Examples
///
/// ```
/// use tbstc_energy::scaling::{area_factor, Node};
///
/// // Shrinking 45 nm -> 7 nm reduces area by ~16x.
/// let f = area_factor(Node::N45, Node::N7);
/// assert!(f < 0.1);
/// ```
pub fn area_factor(from: Node, to: Node) -> f64 {
    to.area_per_gate() / from.area_per_gate()
}

/// Multiplier converting energy-per-op at `from` into `to`.
pub fn energy_factor(from: Node, to: Node) -> f64 {
    to.energy_per_op() / from.energy_per_op()
}

/// Multiplier converting power at equal clock frequency.
///
/// At a fixed frequency, power scales like energy per op.
pub fn power_factor(from: Node, to: Node) -> f64 {
    energy_factor(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scaling_is_one() {
        for n in Node::ALL {
            assert_eq!(area_factor(n, n), 1.0);
            assert_eq!(energy_factor(n, n), 1.0);
        }
    }

    #[test]
    fn scaling_is_monotone_with_node() {
        for w in Node::ALL.windows(2) {
            assert!(area_factor(w[0], w[1]) < 1.0, "{:?} -> {:?}", w[0], w[1]);
            assert!(energy_factor(w[0], w[1]) < 1.0);
        }
    }

    #[test]
    fn factors_compose() {
        let direct = area_factor(Node::N45, Node::N7);
        let via16 = area_factor(Node::N45, Node::N16) * area_factor(Node::N16, Node::N7);
        assert!((direct - via16).abs() < 1e-12);
    }

    #[test]
    fn scaling_lags_ideal_shrink() {
        // Real area shrink 45->7 is worse than the ideal (45/7)^2 ≈ 41x.
        let real = 1.0 / area_factor(Node::N45, Node::N7);
        let ideal = (45.0f64 / 7.0).powi(2);
        assert!(real < ideal, "real {real} < ideal {ideal}");
        assert!(real > 10.0, "still a large shrink: {real}");
    }

    #[test]
    fn upscaling_inverts_downscaling() {
        let down = energy_factor(Node::N16, Node::N7);
        let up = energy_factor(Node::N7, Node::N16);
        assert!((down * up - 1.0).abs() < 1e-12);
    }
}
