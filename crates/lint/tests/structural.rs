//! Fixture tests for the structural (workspace-level) analyses:
//! `lock-order` cycle detection, `panic-reachability` classification,
//! and the SARIF rendering golden.

use tbstc_lint::{lint_texts, render_sarif, Finding, LintReport, Severity};

fn rule<'a>(findings: &'a [Finding], name: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == name).collect()
}

// --- lock-order ---------------------------------------------------------

/// The seeded two-lock cycle: `jobs.rs` takes queue then cancels,
/// `sweep.rs` takes cancels then queue via a shared impl type.
const CYCLE_A: &str = "\
impl Jobs {
    fn enqueue(&self) {
        let q = self.queue.lock();
        let c = self.cancels.lock();
        drop(c);
        drop(q);
    }
}
";
const CYCLE_B: &str = "\
impl Jobs {
    fn sweep(&self) {
        let c = self.cancels.lock();
        let q = self.queue.lock();
        drop(q);
        drop(c);
    }
}
";

#[test]
fn lock_order_detects_the_seeded_two_lock_cycle_naming_both_sites() {
    let findings = lint_texts(
        &[
            ("crates/serve/src/jobs.rs", CYCLE_A),
            ("crates/serve/src/sweep.rs", CYCLE_B),
        ],
        Some(&["lock-order".to_string()]),
    );
    let hits = rule(&findings, "lock-order");
    assert_eq!(hits.len(), 1, "{findings:?}");
    let f = hits[0];
    assert_eq!(f.severity, Severity::Error);
    // The cycle path names both locks…
    assert!(
        f.message
            .contains("Jobs.queue -> Jobs.cancels -> Jobs.queue")
            || f.message
                .contains("Jobs.cancels -> Jobs.queue -> Jobs.cancels"),
        "{}",
        f.message
    );
    // …and both acquisition sites, with file:line each.
    assert!(
        f.message.contains("crates/serve/src/jobs.rs:4"),
        "{}",
        f.message
    );
    assert!(
        f.message.contains("crates/serve/src/sweep.rs:4"),
        "{}",
        f.message
    );
    assert!(f.message.contains("deadlock"), "{}", f.message);
}

#[test]
fn lock_order_accepts_a_consistent_global_order() {
    let consistent = "\
impl Jobs {
    fn a(&self) { let q = self.queue.lock(); let c = self.cancels.lock(); }
    fn b(&self) { let q = self.queue.lock(); let c = self.cancels.lock(); }
}
";
    let findings = lint_texts(
        &[("crates/serve/src/jobs.rs", consistent)],
        Some(&["lock-order".to_string()]),
    );
    assert!(rule(&findings, "lock-order").is_empty(), "{findings:?}");
}

#[test]
fn lock_order_sees_interprocedural_cycles_and_flocks() {
    // holder() takes the flock store lock, then calls deep(), which
    // takes a mutex; elsewhere the mutex is held while the store lock
    // is taken. Cycle spans a call edge and two lock kinds.
    let a = "\
impl Engine {
    fn holder(&self) {
        let g = self.store.lock(\"store\", &|| false);
        self.deep();
    }
    fn deep(&self) {
        let g = self.m.lock();
    }
}
";
    let b = "\
impl Engine {
    fn other(&self) {
        let g = self.m.lock();
        let s = self.store.lock(\"store\", &|| false);
    }
}
";
    let findings = lint_texts(
        &[
            ("crates/serve/src/store.rs", a),
            ("crates/serve/src/jobs.rs", b),
        ],
        Some(&["lock-order".to_string()]),
    );
    let hits = rule(&findings, "lock-order");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(
        hits[0].message.contains("flock:store"),
        "{}",
        hits[0].message
    );
    assert!(
        hits[0].message.contains("via call to `deep`"),
        "{}",
        hits[0].message
    );
}

#[test]
fn lock_order_suppression_is_honored() {
    let b_suppressed = "\
impl Jobs {
    fn sweep(&self) {
        let c = self.cancels.lock();
        // tbstc-lint: allow(lock-order) — sweep runs single-threaded at boot
        let q = self.queue.lock();
    }
}
";
    let findings = lint_texts(
        &[
            ("crates/serve/src/jobs.rs", CYCLE_A),
            ("crates/serve/src/sweep.rs", b_suppressed),
        ],
        Some(&["lock-order".to_string()]),
    );
    // The cycle's witness edge in sweep.rs carries the allow; the other
    // direction alone is acyclic.
    assert!(rule(&findings, "lock-order").is_empty(), "{findings:?}");
}

// --- panic-reachability -------------------------------------------------

const EVENT_ROOT: &str = "\
fn run_loop() {
    dispatch();
}
";

#[test]
fn panic_reachability_escalates_reachable_sites_and_spares_unreachable() {
    let worker = "\
pub fn dispatch() {
    decode();
}
fn decode() {
    let v: Option<u32> = None;
    v.unwrap();
}
fn cold_path() {
    let v: Option<u32> = None;
    v.expect(\"never on the request path\");
}
";
    let findings = lint_texts(
        &[
            ("crates/serve/src/event.rs", EVENT_ROOT),
            ("crates/formats/src/codec.rs", worker),
        ],
        None,
    );
    let reach = rule(&findings, "panic-reachability");
    assert_eq!(reach.len(), 1, "{findings:?}");
    assert_eq!(reach[0].path, "crates/formats/src/codec.rs");
    assert_eq!(reach[0].line, 6);
    assert_eq!(reach[0].severity, Severity::Error);
    // The message shows the call chain from the request path.
    assert!(
        reach[0].message.contains("run_loop -> dispatch -> decode"),
        "{}",
        reach[0].message
    );
    // The unreachable site keeps its panic-surface warning only.
    let surface = rule(&findings, "panic-surface");
    assert!(
        surface.iter().any(|f| f.line == 10),
        "cold_path keeps its warning: {findings:?}"
    );
    assert!(reach.iter().all(|f| f.line != 10));
}

#[test]
fn panic_reachability_honors_panic_surface_suppressions() {
    let worker = "\
pub fn dispatch() {
    let v: Option<u32> = None;
    // tbstc-lint: allow(panic-surface) — input validated at the boundary
    v.unwrap();
}
";
    let findings = lint_texts(
        &[
            ("crates/serve/src/event.rs", EVENT_ROOT),
            ("crates/formats/src/codec.rs", worker),
        ],
        None,
    );
    assert!(
        rule(&findings, "panic-reachability").is_empty(),
        "{findings:?}"
    );
    assert!(rule(&findings, "panic-surface").is_empty());
}

#[test]
fn panic_reachability_needs_a_request_path_root() {
    // No event.rs/conn.rs in the set: nothing is reachable.
    let worker = "pub fn dispatch() { x.unwrap(); }\n";
    let findings = lint_texts(&[("crates/formats/src/codec.rs", worker)], None);
    assert!(rule(&findings, "panic-reachability").is_empty());
}

// --- SARIF golden -------------------------------------------------------

#[test]
fn sarif_output_matches_the_golden_fixture() {
    let report = LintReport {
        findings: vec![
            Finding {
                rule: "lock-order",
                severity: Severity::Error,
                path: "crates/serve/src/jobs.rs".to_string(),
                line: 4,
                col: 22,
                message: "lock-order cycle Jobs.cancels -> Jobs.queue -> Jobs.cancels \
                          risks deadlock"
                    .to_string(),
            },
            Finding {
                rule: "determinism",
                severity: Severity::Warning,
                path: "crates/core/src/spec.rs".to_string(),
                line: 12,
                col: 9,
                message: "HashMap iteration order is nondeterministic; use BTreeMap".to_string(),
            },
        ],
        baselined: vec![Finding {
            rule: "panic-surface",
            severity: Severity::Warning,
            path: "crates/formats/src/ddc.rs".to_string(),
            line: 7,
            col: 15,
            message: ".expect() can panic".to_string(),
        }],
        suppressed: 3,
        files_scanned: 3,
        stale_baseline: Vec::new(),
        cache_hits: 0,
        cache_misses: 3,
    };
    let got = render_sarif(&report);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint.sarif");
    let want = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(got, want, "SARIF drifted from tests/golden/lint.sarif");
}

#[test]
fn sarif_shape_is_2_1_0() {
    let report = LintReport::default();
    let s = render_sarif(&report);
    assert!(s.contains("\"version\":\"2.1.0\""));
    assert!(s.contains("sarif-schema-2.1.0.json"));
    assert!(s.contains("\"tool\":{\"driver\":{\"name\":\"tbstc-lint\""));
    // All twelve rules are declared in the driver metadata.
    for rule in [
        "panic-surface",
        "determinism",
        "lock-discipline",
        "arch-dispatch",
        "crate-hygiene",
        "unsafe-audit",
        "hot-path-alloc",
        "blocking-in-event-loop",
        "spec-coverage",
        "store-lock-discipline",
        "lock-order",
        "panic-reachability",
    ] {
        assert!(s.contains(&format!("\"id\":\"{rule}\"")), "{rule} missing");
    }
    assert!(s.contains("\"results\":[]"));
}
